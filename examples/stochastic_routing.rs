//! High-resolution routing on completed weights — the paper's
//! motivating scenario (§I): a traveller with a deadline should pick the
//! path with the highest on-time arrival probability, which can differ
//! from the path with the lowest *average* travel time. GCWC makes this
//! possible on edges that have no current traffic data at all.
//!
//! ```sh
//! cargo run --release --example stochastic_routing
//! ```

use gcwc::{build_samples, CompletionModel, GcwcModel, ModelConfig, TaskKind};
use gcwc_routing::{choose_by_on_time_probability, edge_costs, k_shortest_paths};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

fn main() {
    // A city grid with simulated taxi traffic.
    let net = generators::city_grid(5, 5);
    let graph = gcwc_graph::EdgeGraph::from_road_network(&net);
    let instance = gcwc_traffic::NetworkInstance {
        net: net.clone(),
        graph: graph.clone(),
        popularity: vec![1.0; net.num_edges()],
    };
    let spec = HistogramSpec::hist8();
    let sim = SimConfig { days: 2, intervals_per_day: 48, ..Default::default() };
    let data = simulate(&instance, spec, &sim);

    // Only 40% of edges have data in the queried interval; complete the
    // rest with GCWC.
    let dataset = data.to_dataset(0.6, 5, 3);
    let train_idx: Vec<usize> = (0..dataset.len() - 4).collect();
    let samples = build_samples(&dataset, &train_idx, TaskKind::Estimation, 0);
    let mut model = GcwcModel::new(&graph, 8, ModelConfig::ci_hist().with_epochs(15), 1);
    println!("training GCWC on the city grid ({} edges)...", net.num_edges());
    model.fit(&samples);

    // Query: evening peak (17:30 = interval 35 of 48) on the last day —
    // the moment reliability matters most.
    let query_idx = (0..dataset.len())
        .rev()
        .find(|&i| dataset.snapshots[i].context.time_of_day == 35)
        .expect("peak interval exists");
    let query = build_samples(&dataset, &[query_idx], TaskKind::Estimation, 0);
    let completed = model.predict(&query[0]);
    let covered = query[0].context.row_flags.iter().filter(|&&f| f > 0.0).count();
    println!(
        "interval {}: {covered}/{} edges had data; GCWC completed the rest",
        dataset.snapshots[query_idx].context.time_of_day,
        net.num_edges()
    );

    // Candidate routes corner-to-corner, by expected time.
    let costs = edge_costs(&net, &completed, &spec);
    let (from, to) = (0, net.num_vertices() - 1);
    let candidates = k_shortest_paths(&net, &costs, from, to, 4);
    println!("\n{} candidate routes from v{from} to v{to}:", candidates.len());

    let resolution = 5.0; // seconds
    for (i, p) in candidates.iter().enumerate() {
        let dist = p.travel_time(&net, &completed, &spec, resolution);
        println!(
            "  route {i}: {} edges, {:.0} m, mean {:.0}s, p50 {:.0}s, p95 {:.0}s",
            p.len(),
            p.length(&net),
            dist.mean(),
            dist.quantile(0.5),
            dist.quantile(0.95),
        );
    }

    // The deadline sits between the candidates' typical times: the
    // mean-fastest route is not necessarily the most reliable one.
    let fastest_mean = candidates
        .iter()
        .map(|p| p.travel_time(&net, &completed, &spec, resolution).mean())
        .fold(f64::INFINITY, f64::min);
    let deadline = fastest_mean * 1.15;
    println!("\ndeadline: {deadline:.0}s");
    for (i, p) in candidates.iter().enumerate() {
        let dist = p.travel_time(&net, &completed, &spec, resolution);
        println!("  route {i}: on-time probability {:.3}", dist.on_time_probability(deadline));
    }
    let best =
        choose_by_on_time_probability(&candidates, &net, &completed, &spec, deadline, resolution);
    let best_mean_idx = candidates
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let ma = a.travel_time(&net, &completed, &spec, resolution).mean();
            let mb = b.travel_time(&net, &completed, &spec, resolution).mean();
            ma.partial_cmp(&mb).unwrap()
        })
        .map(|(i, _)| i)
        .unwrap();
    println!("\nmean-based routing picks route {best_mean_idx}; probability-based routing picks route {best}");
    if best != best_mean_idx {
        println!("-> they disagree: exactly the paper's P1/P2 introduction example.");
    } else {
        println!("-> they agree here; with tighter deadlines or riskier edges they diverge.");
    }
}
