//! Serving quickstart: train briefly, checkpoint, serve over TCP, and
//! query a completed weight matrix for a (time-of-day, day-of-week)
//! context.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! # Serve every shard as a 2-replica group (K=2 sharded GCWC):
//! cargo run --release --example serve_quickstart -- --replicas=2
//! ```
//!
//! With `--replicas=N` (N >= 2) the quickstart partitions the network
//! into two shards, trains a sharded GCWC, and builds each shard as an
//! N-replica group — every replica independently loaded from the same
//! checkpoint, requests routed by rendezvous hashing. The served
//! responses are bit-identical either way at N = 1, and any healthy
//! replica of a group answers with the same bits as any other.

use gcwc::{
    build_samples, AGcwcModel, CompletionModel, GcwcModel, ModelConfig, ShardedModel, TaskKind,
};
use gcwc_graph::PartitionSet;
use gcwc_serve::{
    AnyModel, BinClient, Engine, EngineConfig, ModelRegistry, Server, ServerConfig, TcpClient,
};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};
use std::sync::Arc;

fn main() {
    let replicas: usize = std::env::args()
        .find_map(|a| a.strip_prefix("--replicas=").map(|n| n.parse().expect("--replicas=N")))
        .unwrap_or(1);
    // 1. A small network with simulated traffic, trained briefly — the
    //    goal here is the serving path, not model quality.
    let hw = generators::highway_tollgate(42);
    let sim = SimConfig { days: 3, intervals_per_day: 96, ..Default::default() };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    let dataset = data.to_dataset(0.6, 5, 7);
    let train_idx: Vec<usize> = (0..dataset.len() - 8).collect();
    let samples = build_samples(&dataset, &train_idx, TaskKind::Estimation, 0);

    let dir = std::env::temp_dir().join("gcwc_serve_quickstart");
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let hw = Arc::new(hw);

    // 2.+3. Train, checkpoint, and build the model registry — either a
    //    single A-GCWC, or (with `--replicas=N`) a K=2 sharded GCWC
    //    with an N-replica group per shard, each replica independently
    //    loaded from its shard's checkpoint.
    let registry = if replicas > 1 {
        let cfg = ModelConfig::hw_hist().with_epochs(5);
        let partition = Arc::new(PartitionSet::build(&hw.graph, 2));
        let mut sharded = ShardedModel::gcwc_on(Arc::clone(&partition), 8, cfg.clone(), 1);
        println!("training sharded GCWC (K=2, {replicas} replicas per shard)...");
        sharded.fit_shards(&samples);
        let (_, shards) = sharded.into_shards();
        let factories = (0..partition.num_partitions())
            .map(|k| {
                let graph = partition.partition(k).graph().clone();
                let cfg = cfg.clone();
                let f: Box<dyn Fn() -> AnyModel + Send + Sync> =
                    Box::new(move || AnyModel::Gcwc(GcwcModel::new(&graph, 8, cfg.clone(), 0)));
                f
            })
            .collect();
        let registry = Arc::new(ModelRegistry::sharded_replicated(factories, &partition, replicas));
        for (k, shard) in shards.iter().enumerate() {
            let ckpt = dir.join(format!("gcwc.shard{k}.ckpt"));
            shard.save(&ckpt).expect("save checkpoint");
            registry.load_shard(k, &ckpt).expect("load checkpoint");
            println!("checkpoint: {} (replicated x{replicas})", ckpt.display());
        }
        registry
    } else {
        let cfg = ModelConfig::hw_hist().with_epochs(5);
        let mut model = AGcwcModel::new(&hw.graph, 8, 96, cfg.clone(), 1);
        println!("training A-GCWC ({} parameters)...", model.num_params());
        model.fit(&samples);

        // The checkpoint file starts with a `gcwc-checkpoint v1 <arch>`
        // header, so the server can verify it loads the right
        // architecture.
        let ckpt = dir.join("agcwc.ckpt");
        model.save(&ckpt).expect("save checkpoint");
        println!("checkpoint: {} ({})", ckpt.display(), model.arch_string());

        let factory_hw = Arc::clone(&hw);
        let registry = Arc::new(ModelRegistry::new(Box::new(move || {
            AnyModel::AGcwc(AGcwcModel::new(
                &factory_hw.graph,
                8,
                96,
                ModelConfig::hw_hist().with_epochs(5),
                0,
            ))
        })));
        let generation = registry.load(&ckpt).expect("load checkpoint");
        println!("registry loaded generation {generation}");
        registry
    };

    let engine = Arc::new(Engine::new(registry, EngineConfig::default()));
    let mut server = Server::start_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig { text_port: Some(0), ..Default::default() },
    )
    .expect("bind server");
    println!("serving binary on {}", server.addr());
    println!("serving text debug on {}", server.text_addr().expect("text port"));

    // 4. Query over TCP: ask for the completed weight matrix of a
    //    held-out evening-peak snapshot (17:30 on day 0). The observed
    //    matrix travels as raw f64 bit patterns on the binary port, so
    //    the response is bit-identical to an in-process forward pass.
    let test_idx = vec![(0..dataset.len())
        .rev()
        .find(|&i| dataset.snapshots[i].context.time_of_day == 70)
        .expect("peak interval exists")];
    let test = build_samples(&dataset, &test_idx, TaskKind::Estimation, 0);
    let sample = &test[0];

    let mut client = BinClient::connect(server.addr()).expect("connect");
    let response = client
        .complete(&sample.input, sample.context.time_of_day, sample.context.day_of_week)
        .expect("complete");
    println!(
        "\ncompleted {}x{} matrix (cache hit: {}, generation {})",
        response.output.rows(),
        response.output.cols(),
        response.cache_hit,
        response.generation
    );

    // The same request again is answered from the completion cache.
    let again = client
        .complete(&sample.input, sample.context.time_of_day, sample.context.day_of_week)
        .expect("complete (cached)");
    println!("repeat request cache hit: {}", again.cache_hit);

    // 5. Inspect an edge that had no traffic data in this interval: the
    //    served row is its completed speed histogram.
    let missing_edge = (0..sample.input.rows())
        .find(|&e| sample.context.row_flags[e] == 0.0)
        .expect("some edge is missing at rm = 0.6");
    println!("\nedge e{missing_edge} had no traffic data in this interval;");
    println!("served speed histogram (buckets of 5 m/s, 0-40 m/s):");
    print!(
        "{}",
        gcwc_traffic::viz::histogram_bars(
            response.output.row(missing_edge),
            &HistogramSpec::hist8(),
            50
        )
    );

    println!("\nserver stats: {:?}", client.stats().expect("stats"));
    client.quit().expect("quit");

    // 6. The text debug port serves the same engine with the
    //    newline-delimited protocol — handy with netcat.
    let mut debug = TcpClient::connect(server.text_addr().expect("text port")).expect("connect");
    println!("text debug ping: {}", debug.ping().expect("ping"));
    debug.quit().expect("quit");

    server.stop();
    engine.shutdown();
}
