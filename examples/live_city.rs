//! Live loop quickstart: stream probe-vehicle records into the ingest
//! pipeline, watch slots seal into weight matrices, and see the served
//! model refresh itself — warm-start fine-tune, validate, atomic
//! hot-swap — while completions keep flowing.
//!
//! ```sh
//! cargo run --release --example live_city
//! ```

use gcwc::{GcwcModel, ModelConfig, ShardedModel};
use gcwc_ingest::{
    Aggregator, Intake, Pipeline, RecordLog, RefreshConfig, RefreshDriver, RefreshOutcome,
    SpeedRecord, WindowConfig,
};
use gcwc_serve::{AnyModel, Engine, EngineConfig, IngestStats, ModelRegistry};
use gcwc_traffic::{generators, HistogramSpec};
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const SLOT_SECS: u64 = 900; // the paper's 15-minute intervals
const M: usize = 4;

fn main() {
    // 1. A synthetic city and the serving stack: registry + engine.
    //    `workers: 0` keeps the example single-threaded and
    //    deterministic; a real deployment runs worker threads.
    let city = generators::city_network_sized(3, 96);
    let graph = city.graph.clone();
    let n = graph.num_nodes();
    let cfg = ModelConfig::ci_hist().with_epochs(1);
    let seed = 42u64;

    let registry = Arc::new(ModelRegistry::new(Box::new({
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || AnyModel::Gcwc(GcwcModel::new(&graph, M, cfg.clone(), seed))
    })));
    let engine = Engine::new(
        Arc::clone(&registry),
        EngineConfig { workers: 0, cache_capacity: 256, ..Default::default() },
    );
    let stats = Arc::new(IngestStats::new());
    engine.attach_ingest(Arc::clone(&stats));

    // 2. The ingest pipeline: a crash-safe record log plus a sliding
    //    window that folds records into per-slot weight matrices.
    let dir = std::env::temp_dir().join("gcwc_live_city");
    let _ = std::fs::remove_dir_all(&dir);
    let window = WindowConfig {
        num_edges: n,
        spec: HistogramSpec::hist4(),
        slot_secs: SLOT_SECS,
        slots_per_day: 96,
        grace_secs: SLOT_SECS,
        min_records: 2,
        retain_slots: 64,
    };
    let mut pipe = Pipeline::new(
        RecordLog::open(&dir.join("log"), 4096).expect("open record log"),
        Aggregator::new(window),
    )
    .with_stats(Arc::clone(&stats));

    // 3. The refresh driver: fine-tunes the current checkpoint on
    //    freshly sealed slots, validates on a holdout, and hot-swaps
    //    the registry only when the candidate passes.
    let mk = {
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || ShardedModel::gcwc(&graph, M, cfg.clone(), seed, 1)
    };
    let mut rcfg = RefreshConfig::new(dir.join("ckpt"));
    rcfg.holdout = 2;
    rcfg.min_fresh_slots = 4;
    let mut driver = RefreshDriver::new(rcfg, Box::new(mk), Arc::clone(&registry))
        .expect("open refresh state")
        .with_stats(Arc::clone(&stats));

    // 4. Stream two batches of probe records. Producers push through
    //    the bounded intake queue (blocking when full — backpressure,
    //    never data loss); the consumer drains into the pipeline.
    let intake = Intake::new(1024);
    let handle = intake.handle();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for batch in 0..2u64 {
        for slot in batch * 8..(batch + 1) * 8 {
            for edge in 0..n as u32 {
                for _ in 0..6 {
                    handle
                        .send(SpeedRecord {
                            edge,
                            timestamp: slot * SLOT_SECS + rng.random_range(0u64..SLOT_SECS),
                            speed: rng.random_range(0.5f64..30.0),
                        })
                        .expect("intake open");
                }
            }
            intake.drain(|r| {
                pipe.ingest(r).expect("ingest");
            });
            pipe.seal_ready().expect("seal");
        }
        pipe.seal_all().expect("seal tail");

        // Refresh on everything sealed so far. The first pass
        // bootstraps generation 1; the second warm-starts from it.
        let sealed = pipe.take_sealed();
        match driver.refresh(&sealed).expect("refresh") {
            RefreshOutcome::Applied {
                registry_generation,
                checkpoint_generation,
                prev_loss,
                cand_loss,
                trained_slots,
            } => println!(
                "batch {batch}: refreshed to checkpoint g{checkpoint_generation} \
                 (registry generation {registry_generation}, {trained_slots} fresh slots, \
                 holdout loss {prev_loss:.4} -> {cand_loss:.4})"
            ),
            RefreshOutcome::RolledBack { prev_loss, cand_loss } => println!(
                "batch {batch}: candidate regressed ({prev_loss:.4} -> {cand_loss:.4}), \
                 kept the previous generation"
            ),
            RefreshOutcome::NotReady { fresh_slots, needed } => {
                println!("batch {batch}: only {fresh_slots}/{needed} fresh slots, waiting")
            }
        }

        // 5. Completions keep flowing against whatever generation is
        //    installed; a swap invalidates the cache atomically.
        let mut client = engine.client();
        let mut buf = client.input_buffer();
        for v in buf.as_mut_slice() {
            *v = 0.25;
        }
        client.send(buf, 17, 0).expect("send");
        engine.process_queued();
        let c = client.recv().expect("recv");
        println!(
            "  completion: {}x{} matrix, generation {}, cache hit {}",
            c.output.rows(),
            c.output.cols(),
            c.generation,
            c.cache_hit
        );
    }

    // 6. The ingest counters the serving stats report alongside the
    //    request/cache counters (also on the wire via `stats`).
    let [records, sealed, late, applied, rolled_back, age] = stats.snapshot();
    println!(
        "\ningest stats: {records} records, {sealed} slots sealed, {late} late dropped, \
         {applied} refreshes applied, {rolled_back} rolled back, generation age {age}"
    );

    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
