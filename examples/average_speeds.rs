//! The AVG functionality (paper §VI-A.3, Tables XII & XIII): estimating
//! deterministic average speeds instead of distributions — softmax head
//! swapped for sigmoid, KL loss for masked MSE, evaluated by MAPE.
//!
//! ```sh
//! cargo run --release --example average_speeds
//! ```

use gcwc::{build_samples, CompletionModel, GcwcModel, ModelConfig, TaskKind, MAX_SPEED};
use gcwc_metrics::MapeAccumulator;
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

fn main() {
    let hw = generators::highway_tollgate(21);
    let sim = SimConfig { days: 3, intervals_per_day: 48, ..Default::default() };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    let dataset = data.to_dataset(0.7, 5, 5);

    let split = dataset.len() * 4 / 5;
    let train = build_samples(&dataset, &(0..split).collect::<Vec<_>>(), TaskKind::Average, 0);
    let test =
        build_samples(&dataset, &(split..dataset.len()).collect::<Vec<_>>(), TaskKind::Average, 0);

    // Same encoder, sigmoid head (OutputKind::Average).
    let cfg = ModelConfig::hw_avg().with_epochs(25);
    let mut model = GcwcModel::new(&hw.graph, 8, cfg, 2);
    println!("training GCWC-AVG ({} parameters) at rm = 0.7...", model.num_params());
    model.fit(&train);

    let mut mape = MapeAccumulator::new();
    for s in &test {
        let pred = model.predict(s); // n × 1, normalised speeds
        let snap = &dataset.snapshots[s.snapshot_index];
        for e in 0..dataset.num_edges {
            if let Some(y) = snap.avg_truth[e] {
                mape.add(y, pred[(e, 0)] * MAX_SPEED);
            }
        }
    }
    println!("MAPE over {} test cells: {:.1}%", mape.count(), mape.value_percent().unwrap());

    // Show one completed interval.
    let s = &test[0];
    let pred = model.predict(s);
    let snap = &dataset.snapshots[s.snapshot_index];
    println!("\n{:<6} {:>10} {:>10} {:>9}", "edge", "estimated", "truth", "had data");
    for e in 0..8 {
        let est = pred[(e, 0)] * MAX_SPEED;
        let truth = snap.avg_truth[e].map_or("-".to_owned(), |y| format!("{y:.1}"));
        let observed = if s.context.row_flags[e] > 0.0 { "yes" } else { "no" };
        println!("e{e:<5} {est:>9.1} {truth:>10} {observed:>9}");
    }
}
