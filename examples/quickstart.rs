//! Quickstart: complete the missing stochastic weights of a highway
//! network with GCWC.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gcwc::{build_samples, CompletionModel, GcwcModel, ModelConfig, TaskKind};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

fn main() {
    // 1. A road network: the 24-link highway tollgate stand-in, and its
    //    edge graph (paper §III-A).
    let hw = generators::highway_tollgate(42);
    println!(
        "network: {} directed links, edge graph with {} nodes",
        hw.net.num_edges(),
        hw.graph.num_nodes()
    );

    // 2. Simulated traffic: 3 days at 15-minute resolution, speed
    //    histograms with 8 buckets of 5 m/s (HIST-8).
    let sim = SimConfig { days: 3, intervals_per_day: 96, ..Default::default() };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    println!("simulated {} speed records", data.total_records());

    // 3. The stochastic-weight-completion setting: remove 60% of the
    //    edges from every ground-truth matrix (rm = 0.6, §VI-A.2).
    let dataset = data.to_dataset(0.6, 5, 7);
    let train_idx: Vec<usize> = (0..dataset.len() - 8).collect();
    let samples = build_samples(&dataset, &train_idx, TaskKind::Estimation, 0);

    // 4. Train GCWC (Table III architecture for HW).
    let cfg = ModelConfig::hw_hist().with_epochs(25);
    let mut model = GcwcModel::new(&hw.graph, 8, cfg, 1);
    println!("training GCWC ({} parameters)...", model.num_params());
    model.fit(&samples);
    let losses = &model.last_report().epoch_losses;
    println!("KL loss: {:.3} -> {:.3}", losses[0], losses.last().unwrap());

    // 5. Complete a held-out matrix (17:30, evening peak) and inspect an
    //    edge that had no data.
    let test_idx = vec![(0..dataset.len())
        .rev()
        .find(|&i| dataset.snapshots[i].context.time_of_day == 70)
        .expect("peak interval exists")];
    let test = build_samples(&dataset, &test_idx, TaskKind::Estimation, 0);
    let sample = &test[0];
    let completed = model.predict(sample);

    let missing_edge = (0..24)
        .find(|&e| sample.context.row_flags[e] == 0.0)
        .expect("some edge is missing at rm = 0.6");
    println!("\nedge e{missing_edge} had no traffic data in this interval;");
    println!("completed speed histogram (buckets of 5 m/s, 0-40 m/s):");
    print!(
        "{}",
        gcwc_traffic::viz::histogram_bars(completed.row(missing_edge), &HistogramSpec::hist8(), 50)
    );
    let truth = &dataset.snapshots[test_idx[0]].truth;
    if let Some(gt) = truth.row(missing_edge) {
        let kl = gcwc_metrics::kl_divergence(gt, completed.row(missing_edge), 1e-6);
        println!("KL divergence from the held-out ground truth: {kl:.3}");
    }
}
