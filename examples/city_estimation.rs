//! City-scale estimation: GCWC vs the Historical Average and the LSM
//! state of the art on the 172-edge city network (the CI setting of the
//! paper, Tables V & VII).
//!
//! ```sh
//! cargo run --release --example city_estimation
//! ```

use gcwc::{build_samples, CompletionModel, GcwcModel, ModelConfig, TaskKind};
use gcwc_baselines::{HaModel, LsmConfig, LsmModel};
use gcwc_metrics::{FlrAccumulator, MklrAccumulator};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

fn main() {
    let ci = generators::city_network(7);
    println!("city network: {} edges (densest connected subnetwork)", ci.num_edges());
    let sim = SimConfig { days: 2, intervals_per_day: 48, ..Default::default() };
    let data = simulate(&ci, HistogramSpec::hist8(), &sim);

    let rm = 0.6;
    let dataset = data.to_dataset(rm, 5, 3);
    let split = dataset.len() * 4 / 5;
    let train_idx: Vec<usize> = (0..split).collect();
    let test_idx: Vec<usize> = (split..dataset.len()).collect();
    let train = build_samples(&dataset, &train_idx, TaskKind::Estimation, 0);
    let test = build_samples(&dataset, &test_idx, TaskKind::Estimation, 0);
    println!("rm = {rm}: {} training and {} test matrices", train.len(), test.len());

    // Three methods behind the same CompletionModel interface.
    let mut models: Vec<Box<dyn CompletionModel>> = vec![
        Box::new(HaModel::new()),
        Box::new(LsmModel::new(
            ci.graph.clone(),
            gcwc::OutputKind::Histogram,
            LsmConfig::default(),
        )),
        Box::new(GcwcModel::new(&ci.graph, 8, ModelConfig::ci_hist().with_epochs(20), 1)),
    ];

    let ha_ref = data.historical_average(&train_idx);
    let uniform = vec![0.125; 8];
    println!("\n{:<6} {:>8} {:>8}", "method", "MKLR", "FLR");
    for model in &mut models {
        model.fit(&train);
        let mut mklr = MklrAccumulator::new();
        let mut flr = FlrAccumulator::new();
        for s in &test {
            let pred = model.predict(s);
            let truth = &dataset.snapshots[s.snapshot_index].truth;
            for e in 0..dataset.num_edges {
                if let Some(gt) = truth.row(e) {
                    let r = ha_ref[e].as_deref().unwrap_or(&uniform);
                    mklr.add(gt, pred.row(e), r);
                    flr.add(data.records_at(s.snapshot_index, e), pred.row(e), r, &data.spec);
                }
            }
        }
        println!(
            "{:<6} {:>8.3} {:>8.3}",
            model.name(),
            mklr.value().unwrap_or(f64::NAN),
            flr.value().unwrap_or(f64::NAN)
        );
    }
    println!("\n(MKLR < 1 beats the historical average; FLR > 0.5 explains the");
    println!(" observed speeds better than it. The paper's Tables V/VII shape:");
    println!(" GCWC well below 1.0, LSM above it.)");
}
