//! Next-interval prediction with the context-aware A-GCWC (the paper's
//! Prediction functionality, Tables VIII & X) — including a look at how
//! the time-of-day context shifts the completed distributions.
//!
//! ```sh
//! cargo run --release --example highway_prediction
//! ```

use gcwc::{build_samples, AGcwcModel, CompletionModel, ModelConfig, TaskKind};
use gcwc_metrics::MklrAccumulator;
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

fn main() {
    let hw = generators::highway_tollgate(11);
    let ipd = 96;
    let sim = SimConfig { days: 4, intervals_per_day: ipd, ..Default::default() };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    let dataset = data.to_dataset(0.6, 5, 9);

    // Time-ordered split; prediction labels come from the next interval.
    let split = dataset.len() * 4 / 5;
    let train = build_samples(&dataset, &(0..split).collect::<Vec<_>>(), TaskKind::Prediction, 0);
    let test = build_samples(
        &dataset,
        &(split..dataset.len()).collect::<Vec<_>>(),
        TaskKind::Prediction,
        0,
    );

    let cfg = ModelConfig::hw_hist().with_epochs(20);
    let mut model = AGcwcModel::new(&hw.graph, 8, ipd, cfg, 3);
    println!("training A-GCWC ({} parameters) for prediction...", model.num_params());
    model.fit(&train);

    // Evaluate MKLR against the next interval's ground truth.
    let ha = data.historical_average(&(0..split).collect::<Vec<_>>());
    let uniform = vec![0.125; 8];
    let mut mklr = MklrAccumulator::new();
    for s in &test {
        let target = s.snapshot_index + 1;
        if target >= dataset.len() {
            continue;
        }
        let pred = model.predict(s);
        let truth = &dataset.snapshots[target].truth;
        for e in 0..24 {
            if let Some(gt) = truth.row(e) {
                mklr.add(gt, pred.row(e), ha[e].as_deref().unwrap_or(&uniform));
            }
        }
    }
    println!(
        "prediction MKLR vs HA: {:.3}  (< 1 beats the historical average)",
        mklr.value().unwrap()
    );

    // Context sensitivity: the same input matrix completed under a
    // morning-peak context vs a free-flowing night context.
    let sample = &test[0];
    let mut night = sample.clone();
    night.context.time_of_day = 12; // 3:00
    let mut peak = sample.clone();
    peak.context.time_of_day = 32; // 8:00
    let p_night = model.predict(&night);
    let p_peak = model.predict(&peak);
    let e = (0..24).find(|&e| sample.context.row_flags[e] == 0.0).unwrap_or(0);
    let mean =
        |h: &[f64]| -> f64 { h.iter().enumerate().map(|(b, p)| p * (b as f64 * 5.0 + 2.5)).sum() };
    println!("\nedge e{e} (no data in the input), completed mean speed:");
    println!("  3:00 context -> {:>5.1} m/s", mean(p_night.row(e)));
    println!("  8:00 context -> {:>5.1} m/s", mean(p_peak.row(e)));
    println!("(the Bayesian context module shifts completions toward the congestion");
    println!(" pattern of the queried time of day)");
}
