//! Property-based integration tests over the public API.

use gcwc::{build_samples, CompletionModel, GcwcModel, ModelConfig, TaskKind};
use gcwc_graph::{ChebyshevBasis, EdgeGraph, GraphHierarchy, PolyBasis, PoolingMap};
use gcwc_linalg::{CsrMatrix, Matrix};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig, WeightMatrix};
use proptest::prelude::*;

/// Arbitrary small connected path adjacency.
fn path_adjacency(n: usize) -> CsrMatrix {
    CsrMatrix::from_triplets(n, n, (0..n - 1).flat_map(|i| [(i, i + 1, 1.0), (i + 1, i, 1.0)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Chebyshev expansion is linear: T(αx) = αT(x).
    #[test]
    fn chebyshev_is_linear(alpha in -3.0f64..3.0, n in 3usize..10, k in 2usize..6) {
        let basis = ChebyshevBasis::from_adjacency(&path_adjacency(n), k);
        let x = Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f64 * 0.3 - 1.0);
        let fx = basis.forward(&x);
        let fax = basis.forward(&x.scale(alpha));
        for (a, b) in fx.iter().zip(&fax) {
            prop_assert!(a.scale(alpha).approx_eq(b, 1e-9));
        }
    }

    /// Graph pooling then "un-pooling" preserves column maxima.
    #[test]
    fn pooling_preserves_column_max(n in 4usize..12, c in 1usize..4) {
        let x = Matrix::from_fn(n, c, |i, j| ((i * 7 + j * 13) % 19) as f64);
        let h = GraphHierarchy::build(&path_adjacency(n), 1);
        let map = PoolingMap::from_hierarchy(&h, 0, 1);
        let (pooled, _) = map.max_forward(&x);
        for j in 0..c {
            let max_in = (0..n).map(|i| x[(i, j)]).fold(f64::NEG_INFINITY, f64::max);
            let max_out = (0..pooled.rows()).map(|i| pooled[(i, j)]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(max_in, max_out);
        }
    }

    /// The removal protocol removes exactly ⌊n·rm⌋ rows and never
    /// invents coverage.
    #[test]
    fn removal_protocol_is_exact(rm in 0.0f64..1.0, seed in 0u64..500) {
        let n = 20;
        let rows = (0..n).map(|i| {
            (i % 3 != 0).then(|| vec![0.5, 0.5])
        }).collect::<Vec<_>>();
        let w = WeightMatrix::from_rows(rows, 2);
        let mut rng = gcwc_linalg::rng::seeded(seed);
        let removed = w.remove_random(rm, &mut rng);
        for e in 0..n {
            if removed.is_covered(e) {
                prop_assert!(w.is_covered(e), "coverage must not appear");
            }
        }
        // The removed set is drawn from all edges, so coverage drops by
        // at most ⌊n·rm⌋ and survives at least max(0, covered − ⌊n·rm⌋).
        let k = (n as f64 * rm).floor() as usize;
        prop_assert!(removed.num_covered() + k >= w.num_covered());
    }

    /// Model predictions are valid histograms for arbitrary seeds.
    #[test]
    fn predictions_valid_for_any_seed(seed in 0u64..100) {
        let hw = generators::highway_tollgate(seed);
        let sim = SimConfig { days: 1, intervals_per_day: 6, seed, ..Default::default() };
        let data = simulate(&hw, HistogramSpec::hist4(), &sim);
        let ds = data.to_dataset(0.5, 5, seed);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let mut model = GcwcModel::new(&hw.graph, 4, ModelConfig::hw_hist().with_epochs(1), seed);
        model.fit(&samples[..3]);
        let pred = model.predict(&samples[4]);
        for e in 0..24 {
            let s: f64 = pred.row(e).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8);
            prop_assert!(pred.row(e).iter().all(|&p| p >= 0.0));
        }
    }

    /// Edge graphs are always symmetric and loop-free regardless of the
    /// generator seed.
    #[test]
    fn edge_graphs_are_symmetric(seed in 0u64..200) {
        let ci = generators::city_network_sized(seed, 40);
        let a = ci.graph.adjacency_dense();
        prop_assert_eq!(a.clone(), a.transpose());
        for i in 0..a.rows() {
            prop_assert_eq!(a[(i, i)], 0.0);
        }
    }
}

/// Laplacian spectra of every generated network stay within the scaled
/// bound after rescaling (non-proptest: heavier).
#[test]
fn scaled_laplacian_bound_on_generated_networks() {
    for seed in [1u64, 7, 42] {
        let hw = generators::highway_tollgate(seed);
        let basis = ChebyshevBasis::from_adjacency(hw.graph.adjacency(), 3);
        let lt = basis.scaled_laplacian();
        let lmax = gcwc_linalg::eigen::largest_eigenvalue(lt, 1000, 1e-9);
        assert!(lmax <= 1.0 + 1e-6, "seed {seed}: λmax(L̃) = {lmax}");
    }
}

/// Hierarchies over the city network cover every node exactly once at
/// every level.
#[test]
fn city_hierarchy_partitions() {
    let ci = generators::city_network(3);
    let h = GraphHierarchy::build(ci.graph.adjacency(), 3);
    for level in 1..=3 {
        let composed = h.compose(0, level);
        let mut all: Vec<usize> = composed.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..172).collect::<Vec<_>>(), "level {level}");
    }
}

/// An edge graph built from a road network agrees with one built from
/// its own adjacency matrix.
#[test]
fn edge_graph_roundtrip_through_adjacency() {
    let hw = generators::highway_tollgate(1);
    let rebuilt = EdgeGraph::from_adjacency(hw.graph.adjacency().clone());
    assert_eq!(rebuilt.adjacency_dense(), hw.graph.adjacency_dense());
    for i in 0..rebuilt.num_nodes() {
        assert_eq!(rebuilt.neighbors(i), hw.graph.neighbors(i));
    }
}
