//! Serial/parallel equivalence suite.
//!
//! The parallel kernels in `gcwc-linalg` promise *bit-identical* output
//! for every thread count: each output row is computed by the exact
//! serial per-row loop, only the rows are partitioned across workers.
//! These properties pin that contract down for random shapes and thread
//! counts, comparing `f64::to_bits` — not an epsilon.

use gcwc_graph::{ChebyshevBasis, PolyBasis};
use gcwc_linalg::parallel::with_threads;
use gcwc_linalg::{CsrMatrix, Matrix};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Asserts bitwise equality of two matrices.
fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.shape(), b.shape(), "{} shape", what);
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{} diverged: {} vs {}", what, x, y);
    }
    Ok(())
}

/// Strategy: a random dense matrix with the given shape.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: a random (dense, sparse-pattern) pair sharing one shape —
/// roughly half of the sparse entries are zeroed.
fn matrix_pair(
    dims: (usize, usize, usize),
) -> impl Strategy<Value = (Matrix, Matrix, usize, usize, usize)> {
    let (rows, k, cols) = dims;
    (matrix(rows, k), matrix(k, cols)).prop_map(move |(a, b)| (a, b, rows, k, cols))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense matmul is bit-identical for every thread count, both via
    /// the explicit `matmul_with` and via the ambient override.
    #[test]
    fn matmul_matches_serial(
        pair in (1usize..40, 1usize..40, 1usize..40).prop_flat_map(matrix_pair),
    ) {
        let (a, b, ..) = pair;
        let serial = a.matmul_with(&b, 1);
        for t in THREAD_COUNTS {
            assert_bits_eq(&a.matmul_with(&b, t), &serial, "matmul_with")?;
            let ambient = with_threads(t, || a.matmul(&b));
            assert_bits_eq(&ambient, &serial, "matmul ambient")?;
        }
    }

    /// CSR × dense is bit-identical for every thread count, including
    /// rows that are entirely zero (empty CSR rows).
    #[test]
    fn matmul_dense_matches_serial(
        pair in (1usize..40, 1usize..40, 1usize..40).prop_flat_map(matrix_pair),
        keep in 0.0f64..1.0,
    ) {
        let (a, b, rows, k, _) = pair;
        // Sparsify deterministically from the dense sample.
        let mut sparse = a.clone();
        for i in 0..rows {
            for j in 0..k {
                if ((i * 31 + j * 17) % 97) as f64 / 97.0 > keep {
                    sparse[(i, j)] = 0.0;
                }
            }
        }
        let csr = CsrMatrix::from_dense(&sparse);
        let serial = csr.matmul_dense_with(&b, 1);
        for t in THREAD_COUNTS {
            assert_bits_eq(&csr.matmul_dense_with(&b, t), &serial, "matmul_dense_with")?;
            let ambient = with_threads(t, || csr.matmul_dense(&b));
            assert_bits_eq(&ambient, &serial, "matmul_dense ambient")?;
        }
    }

    /// The Chebyshev expansion — a chain of sparse products — is
    /// bit-identical for every thread count.
    #[test]
    fn chebyshev_forward_matches_serial(
        n in 2usize..24,
        c in 1usize..6,
        k in 1usize..6,
        scale in 0.1f64..2.0,
    ) {
        let adj = CsrMatrix::from_triplets(
            n,
            n,
            (0..n - 1).flat_map(|i| [(i, i + 1, scale), (i + 1, i, scale)]),
        );
        let basis = ChebyshevBasis::from_adjacency(&adj, k);
        let x = Matrix::from_fn(n, c, |i, j| ((i * 13 + j * 7) % 11) as f64 * 0.2 - 1.0);
        let serial = with_threads(1, || basis.forward(&x));
        for t in THREAD_COUNTS {
            let parallel = with_threads(t, || basis.forward(&x));
            prop_assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_bits_eq(p, s, "chebyshev term")?;
            }
        }
    }

    /// Elementwise map/zip and the fixed-block reductions are invariant
    /// under the ambient thread count.
    #[test]
    fn map_zip_sum_match_serial(
        pair in (1usize..30, 1usize..30, 1usize..30).prop_flat_map(matrix_pair),
    ) {
        let (a, _, rows, k, _) = pair;
        let b = Matrix::from_fn(rows, k, |i, j| (i as f64 - j as f64) * 0.25);
        let serial_map = with_threads(1, || a.map(|v| v * 1.5 - 0.25));
        let serial_zip = with_threads(1, || a.zip_with(&b, |x, y| x * y + 0.5));
        let serial_sum = with_threads(1, || a.sum());
        let serial_norm = with_threads(1, || a.frobenius_norm());
        for t in THREAD_COUNTS {
            assert_bits_eq(&with_threads(t, || a.map(|v| v * 1.5 - 0.25)), &serial_map, "map")?;
            assert_bits_eq(
                &with_threads(t, || a.zip_with(&b, |x, y| x * y + 0.5)),
                &serial_zip,
                "zip_with",
            )?;
            prop_assert_eq!(with_threads(t, || a.sum()).to_bits(), serial_sum.to_bits());
            prop_assert_eq!(
                with_threads(t, || a.frobenius_norm()).to_bits(),
                serial_norm.to_bits()
            );
        }
    }
}

/// The proptest shapes above mostly sit below the kernels' minimum-work
/// threshold; this fixed large case is guaranteed to cross it, so the
/// scoped-thread row-partitioned path really runs.
#[test]
fn large_matmul_exercises_parallel_path_bitwise() {
    let a = Matrix::from_fn(96, 96, |i, j| ((i * 7 + j * 3) % 13) as f64 * 0.17 - 0.5);
    let b = Matrix::from_fn(96, 96, |i, j| ((i + 11 * j) % 17) as f64 * 0.09 - 0.3);
    let work = a.rows() * a.cols() * b.cols();
    assert!(work >= gcwc_linalg::parallel::MIN_PARALLEL_WORK, "case must cross the work threshold");
    let serial = a.matmul_with(&b, 1);
    for t in [2, 4, 8] {
        let par = a.matmul_with(&b, t);
        for (x, y) in par.as_slice().iter().zip(serial.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// End-to-end training determinism: the same seed must produce
/// bit-identical epoch losses and a byte-identical final `ParamStore`
/// checkpoint for every thread count — whether the count comes from
/// `ModelConfig::with_threads` or from the ambient `GCWC_THREADS` /
/// global resolution chain.
#[test]
fn training_is_thread_count_invariant_end_to_end() {
    use gcwc::{build_samples, CompletionModel, GcwcModel, ModelConfig, TaskKind};
    use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

    let hw = generators::highway_tollgate(1);
    let sim = SimConfig {
        days: 1,
        intervals_per_day: 12,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(0.5, 5, 3);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);

    let run = |threads: usize, tag: &str| -> (Vec<u64>, Vec<u8>) {
        let cfg = ModelConfig::hw_hist().with_epochs(3).with_threads(threads);
        let mut model = GcwcModel::new(&hw.graph, 8, cfg, 7);
        model.fit(&samples);
        let losses: Vec<u64> =
            model.last_report().epoch_losses.iter().map(|l| l.to_bits()).collect();
        let path = std::path::Path::new("target").join(format!("det-ckpt-{tag}.bin"));
        model.save(&path).expect("checkpoint write");
        let bytes = std::fs::read(&path).expect("checkpoint read");
        let _ = std::fs::remove_file(&path);
        (losses, bytes)
    };

    let (serial_losses, serial_store) = run(1, "serial");
    assert_eq!(serial_losses.len(), 3);
    for t in [2, 4, 8] {
        let (losses, store) = run(t, &format!("t{t}"));
        assert_eq!(losses, serial_losses, "epoch losses diverged at {t} threads");
        assert_eq!(store, serial_store, "final ParamStore diverged at {t} threads");
    }

    // threads = 0 defers to the ambient chain (GCWC_THREADS env var /
    // set_global_threads / available parallelism); pin the global so
    // the test is reproducible, then restore lazy resolution.
    gcwc_linalg::parallel::set_global_threads(3);
    let (losses, store) = run(0, "ambient");
    gcwc_linalg::parallel::set_global_threads(0);
    assert_eq!(losses, serial_losses, "epoch losses diverged under ambient threads");
    assert_eq!(store, serial_store, "final ParamStore diverged under ambient threads");
}

/// Same guarantee for the sparse kernel at a size that engages workers.
#[test]
fn large_chebyshev_exercises_parallel_path_bitwise() {
    let n = 400;
    let adj =
        CsrMatrix::from_triplets(n, n, (0..n - 1).flat_map(|i| [(i, i + 1, 1.0), (i + 1, i, 1.0)]));
    let basis = ChebyshevBasis::from_adjacency(&adj, 4);
    let x = Matrix::from_fn(n, 48, |i, j| ((i * 5 + j) % 23) as f64 * 0.04 - 0.4);
    let serial = with_threads(1, || basis.forward(&x));
    for t in [2, 4, 8] {
        let parallel = with_threads(t, || basis.forward(&x));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            for (x_s, x_p) in s.as_slice().iter().zip(p.as_slice()) {
                assert_eq!(x_s.to_bits(), x_p.to_bits());
            }
        }
    }
}
