//! End-to-end integration tests spanning all crates: network generation
//! → traffic simulation → dataset construction → model training →
//! completion → metric evaluation.

use gcwc::{build_samples, CompletionModel, GcwcModel, ModelConfig, TaskKind};
use gcwc_baselines::HaModel;
use gcwc_metrics::{kl_divergence, FlrAccumulator, MklrAccumulator};
use gcwc_traffic::{generators, histogram::is_valid_histogram, simulate, HistogramSpec, SimConfig};

fn highway_dataset(
    days: usize,
    ipd: usize,
    rm: f64,
) -> (gcwc_traffic::NetworkInstance, gcwc_traffic::TrafficData, gcwc_traffic::Dataset) {
    let hw = generators::highway_tollgate(5);
    let sim =
        SimConfig { days, intervals_per_day: ipd, records_per_interval: 9.0, ..Default::default() };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(rm, 5, 13);
    (hw, data, ds)
}

#[test]
fn full_estimation_pipeline_beats_uniform() {
    let (hw, data, ds) = highway_dataset(2, 24, 0.5);
    let split = ds.len() * 3 / 4;
    let train_idx: Vec<usize> = (0..split).collect();
    let test_idx: Vec<usize> = (split..ds.len()).collect();
    let train = build_samples(&ds, &train_idx, TaskKind::Estimation, 0);
    let test = build_samples(&ds, &test_idx, TaskKind::Estimation, 0);

    let mut model = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(15), 1);
    model.fit(&train);

    // Against the *uniform* reference the trained model must clearly win.
    let uniform = vec![0.125; 8];
    let mut mklr = MklrAccumulator::new();
    for s in &test {
        let pred = model.predict(s);
        let truth = &ds.snapshots[s.snapshot_index].truth;
        for e in 0..ds.num_edges {
            if let Some(gt) = truth.row(e) {
                mklr.add(gt, pred.row(e), &uniform);
            }
        }
    }
    let v = mklr.value().expect("evaluated cells exist");
    assert!(v < 0.8, "trained GCWC must beat the uniform reference, got {v}");
    // Metric consistency: HA's own histogram beats uniform too, so FLR
    // of the model against HA stays in [0, 1].
    let ha = data.historical_average(&train_idx);
    let mut flr = FlrAccumulator::new();
    for s in &test {
        let pred = model.predict(s);
        for e in 0..ds.num_edges {
            if let Some(r) = &ha[e] {
                flr.add(data.records_at(s.snapshot_index, e), pred.row(e), r, &data.spec);
            }
        }
    }
    let f = flr.value().expect("cells");
    assert!((0.0..=1.0).contains(&f));
}

#[test]
fn completed_matrices_are_always_valid() {
    let (hw, _, ds) = highway_dataset(1, 16, 0.7);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
    let mut model = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(2), 2);
    model.fit(&samples[..6]);
    for s in &samples {
        let pred = model.predict(s);
        assert_eq!(pred.shape(), (24, 8));
        for e in 0..24 {
            assert!(is_valid_histogram(pred.row(e), 1e-9), "row {e} is not a distribution");
        }
    }
}

#[test]
fn ha_baseline_agrees_with_record_level_reference() {
    // The HA CompletionModel (mean of label histograms) and the
    // record-level HA from TrafficData must be close when coverage is
    // dense: same records, different aggregation weighting.
    let (_, data, ds) = highway_dataset(2, 12, 0.0);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
    let mut ha_model = HaModel::new();
    ha_model.fit(&samples);
    let pred = ha_model.predict(&samples[0]);
    let reference = data.historical_average(&idx);
    let mut compared = 0;
    for e in 0..ds.num_edges {
        if let Some(r) = &reference[e] {
            let kl = kl_divergence(r, pred.row(e), 1e-6);
            assert!(kl < 0.25, "edge {e}: HA variants diverge (KL {kl})");
            compared += 1;
        }
    }
    assert!(compared > 0);
}

#[test]
fn prediction_task_trains_and_predicts_next_interval() {
    let (hw, _, ds) = highway_dataset(2, 16, 0.6);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Prediction, 0);
    assert_eq!(samples.len(), ds.len() - 1);
    let mut model = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(4), 3);
    model.fit(&samples[..16]);
    let s = &samples[20];
    let pred = model.predict(s);
    // Compare against the *next* interval's truth — the pipeline's whole
    // point; just verify the plumbing produces finite KL there.
    let truth = &ds.snapshots[s.snapshot_index + 1].truth;
    let mut seen = 0;
    for e in 0..24 {
        if let Some(gt) = truth.row(e) {
            assert!(kl_divergence(gt, pred.row(e), 1e-6).is_finite());
            seen += 1;
        }
    }
    assert!(seen > 0, "some evaluated edges must exist");
}

#[test]
fn rm_sweep_degrades_gracefully() {
    // Completion difficulty rises with the removal ratio: the number of
    // covered input rows must fall monotonically (data-level sanity for
    // the rm sweeps of Tables IV–XIII).
    let hw = generators::highway_tollgate(5);
    let sim = SimConfig {
        days: 1,
        intervals_per_day: 8,
        records_per_interval: 20.0,
        ..Default::default()
    };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    let mut last = usize::MAX;
    for rm in [0.0, 0.5, 0.8] {
        let ds = data.to_dataset(rm, 5, 7);
        let covered: usize = ds.snapshots.iter().map(|s| s.input.num_covered()).sum();
        assert!(covered <= last, "coverage must shrink as rm grows");
        last = covered;
    }
}

#[test]
fn checkpoint_roundtrip_preserves_predictions() {
    let (hw, _, ds) = highway_dataset(1, 12, 0.5);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
    let mut model = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(3), 4);
    model.fit(&samples[..6]);
    let expected = model.predict(&samples[7]);

    let dir = std::env::temp_dir().join("gcwc_e2e_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gcwc.ckpt");
    model.save(&path).unwrap();

    // A freshly initialised model restores to identical behaviour.
    let mut restored = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(3), 999);
    assert_ne!(restored.predict(&samples[7]), expected, "fresh model differs");
    restored.load(&path).unwrap();
    assert_eq!(restored.predict(&samples[7]), expected, "checkpoint restores predictions");
    std::fs::remove_file(&path).ok();
}
