//! Fused/in-place vs. out-of-place equivalence suite.
//!
//! Every fused or `_into` kernel added for the zero-allocation hot path
//! promises *bit-identical* output to the out-of-place composition it
//! replaces — same per-element expression, same rounding order, same
//! thread partitioning. These properties pin that contract down for
//! random shapes, comparing `f64::to_bits` — not an epsilon — and they
//! write every `_into` destination through a stale NaN-filled buffer
//! first, so a kernel that merely *accumulates* instead of overwriting
//! fails loudly.
//!
//! Each property also runs under `GCWC_THREADS ∈ {1, 4}` (via
//! `with_threads`), extending the serial/parallel contract of
//! `parallel_equivalence.rs` to the fused paths.

use gcwc_graph::{ChebyshevBasis, PolyBasis, RandomWalkBasis};
use gcwc_linalg::parallel::with_threads;
use gcwc_linalg::{BufferPool, CsrMatrix, Matrix};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Asserts bitwise equality of two matrices.
fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.shape(), b.shape(), "{} shape", what);
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{} diverged: {} vs {}", what, x, y);
    }
    Ok(())
}

/// A stale destination buffer: NaN everywhere, so any element the
/// kernel fails to overwrite poisons the comparison.
fn stale(rows: usize, cols: usize) -> Matrix {
    Matrix::filled(rows, cols, f64::NAN)
}

/// Strategy: a random dense matrix with the given shape.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Deterministically zeroes ~half the entries and converts to CSR, so
/// empty rows and short rows both occur.
fn sparsify(m: &Matrix, keep: f64) -> CsrMatrix {
    let mut s = m.clone();
    for i in 0..s.rows() {
        for j in 0..s.cols() {
            if ((i * 31 + j * 17) % 97) as f64 / 97.0 > keep {
                s[(i, j)] = 0.0;
            }
        }
    }
    CsrMatrix::from_dense(&s)
}

/// Strategy: square sparse matrix + conforming dense operands
/// `(A : n×n, x : n×c, y : n×c)`.
fn sparse_triple() -> impl Strategy<Value = (CsrMatrix, Matrix, Matrix)> {
    (1usize..24, 1usize..40, 0.2f64..0.9).prop_flat_map(|(n, c, keep)| {
        (matrix(n, n), matrix(n, c), matrix(n, c))
            .prop_map(move |(a, x, y)| (sparsify(&a, keep), x, y))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `matmul_into` through a stale buffer matches `matmul`.
    #[test]
    fn matmul_into_matches_out_of_place(
        (a, b) in (1usize..24, 1usize..24, 1usize..24)
            .prop_flat_map(|(r, k, c)| (matrix(r, k), matrix(k, c))),
    ) {
        for t in THREAD_COUNTS {
            with_threads(t, || {
                let legacy = a.matmul(&b);
                let mut out = stale(a.rows(), b.cols());
                a.matmul_into(&b, &mut out);
                assert_bits_eq(&out, &legacy, "matmul_into")
            })?;
        }
    }

    /// Fused transposed products `A·Bᵀ` and `Aᵀ·B` through stale
    /// buffers match transpose-then-multiply, including exact-zero
    /// entries (both kernels skip the same terms the plain kernel
    /// skips).
    #[test]
    fn matmul_nt_tn_match_transpose_composition(
        (a, b, d) in (1usize..24, 1usize..24, 1usize..24)
            .prop_flat_map(|(r, k, c)| (matrix(r, k), matrix(c, k), matrix(r, c))),
        zero_every in 2usize..7,
    ) {
        // Plant exact zeros so the skip paths are exercised.
        let a = Matrix::from_fn(a.rows(), a.cols(), |i, j| {
            if (i + j) % zero_every == 0 { 0.0 } else { a[(i, j)] }
        });
        for t in THREAD_COUNTS {
            with_threads(t, || {
                let legacy = a.matmul(&b.transpose());
                let mut out = stale(a.rows(), b.rows());
                a.matmul_nt_into(&b, &mut out);
                assert_bits_eq(&out, &legacy, "matmul_nt_into")?;

                let legacy = a.transpose().matmul(&d);
                let mut out = stale(a.cols(), d.cols());
                a.matmul_tn_into(&d, &mut out);
                assert_bits_eq(&out, &legacy, "matmul_tn_into")
            })?;
        }
    }

    /// `map_into` and `zip_into` through stale buffers match `map` and
    /// the element-wise composition.
    #[test]
    fn map_and_zip_into_match_out_of_place(
        (a, b) in (1usize..24, 1usize..24).prop_flat_map(|(r, c)| (matrix(r, c), matrix(r, c))),
    ) {
        for t in THREAD_COUNTS {
            with_threads(t, || {
                let legacy = a.map(|v| v.tanh());
                let mut out = stale(a.rows(), a.cols());
                a.map_into(&mut out, |v| v.tanh());
                assert_bits_eq(&out, &legacy, "map_into")?;

                let legacy = Matrix::from_fn(a.rows(), a.cols(), |i, j| {
                    a[(i, j)] * b[(i, j)] + a[(i, j)]
                });
                let mut out = stale(a.rows(), a.cols());
                a.zip_into(&b, &mut out, |x, y| x * y + x);
                assert_bits_eq(&out, &legacy, "zip_into")
            })?;
        }
    }

    /// `transpose_into`, `copy_from`, `add_assign`, and `scale_assign`
    /// match their out-of-place counterparts.
    #[test]
    fn elementwise_into_match_out_of_place(
        (a, b) in (1usize..24, 1usize..24).prop_flat_map(|(r, c)| (matrix(r, c), matrix(r, c))),
        s in -2.0f64..2.0,
    ) {
        let legacy = a.transpose();
        let mut out = stale(a.cols(), a.rows());
        a.transpose_into(&mut out);
        assert_bits_eq(&out, &legacy, "transpose_into")?;

        let mut out = stale(a.rows(), a.cols());
        out.copy_from(&a);
        assert_bits_eq(&out, &a, "copy_from")?;

        let legacy = &a + &b;
        let mut out = a.clone();
        out.add_assign(&b);
        assert_bits_eq(&out, &legacy, "add_assign")?;

        let legacy = a.scale(s);
        let mut out = a.clone();
        out.scale_assign(s);
        assert_bits_eq(&out, &legacy, "scale_assign")?;
    }

    /// `matmul_dense_into` through a stale buffer matches
    /// `matmul_dense`, including empty CSR rows.
    #[test]
    fn csr_matmul_dense_into_matches_out_of_place((a, x, _) in sparse_triple()) {
        for t in THREAD_COUNTS {
            with_threads(t, || {
                let legacy = a.matmul_dense(&x);
                let mut out = stale(a.rows(), x.cols());
                a.matmul_dense_into(&x, &mut out);
                assert_bits_eq(&out, &legacy, "matmul_dense_into")
            })?;
        }
    }

    /// Fused `axpby` matches the three-pass composition
    /// `α·(A·x) + β·y`.
    #[test]
    fn axpby_matches_composition(
        (a, x, y) in sparse_triple(),
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
    ) {
        for t in THREAD_COUNTS {
            with_threads(t, || {
                let legacy = &a.matmul_dense(&x).scale(alpha) + &y.scale(beta);
                let mut out = y.clone();
                a.axpby(alpha, &x, beta, &mut out);
                assert_bits_eq(&out, &legacy, "axpby")
            })?;
        }
    }

    /// Fused `cheb_step_into` through a stale buffer matches the
    /// three-pass composition `2·(A·x) − prev`.
    #[test]
    fn cheb_step_into_matches_composition((a, x, prev) in sparse_triple()) {
        for t in THREAD_COUNTS {
            with_threads(t, || {
                let legacy = &a.matmul_dense(&x).scale(2.0) - &prev;
                let mut out = stale(a.rows(), x.cols());
                a.cheb_step_into(&x, &prev, &mut out);
                assert_bits_eq(&out, &legacy, "cheb_step_into")
            })?;
        }
    }

    /// Fused `clenshaw_step` matches the composition
    /// `(b + s·(A·x)) − c2` for both scales the adjoint uses.
    #[test]
    fn clenshaw_step_matches_composition(
        (a, x, b) in sparse_triple(),
        c2 in (1usize..24, 1usize..40).prop_flat_map(|(r, c)| matrix(r, c)),
    ) {
        // Reshape c2 to match (proptest draws it independently).
        let c2 = Matrix::from_fn(a.rows(), x.cols(), |i, j| {
            c2[(i % c2.rows(), j % c2.cols())]
        });
        for s in [1.0, 2.0] {
            for t in THREAD_COUNTS {
                with_threads(t, || {
                    let legacy = &(&b + &a.matmul_dense(&x).scale(s)) - &c2;
                    let mut out = c2.clone();
                    a.clenshaw_step(&b, &x, s, &mut out);
                    assert_bits_eq(&out, &legacy, "clenshaw_step")
                })?;
            }
        }
    }

    /// Pooled Chebyshev forward (fused recurrence into pooled stale
    /// buffers) matches the tap-by-tap out-of-place recurrence.
    #[test]
    fn cheb_forward_pooled_matches_composition(
        (a, x, _) in sparse_triple(),
        k in 1usize..6,
    ) {
        let basis = ChebyshevBasis::from_adjacency(&a, k);
        let lt = basis.scaled_laplacian().clone();
        for t in THREAD_COUNTS {
            with_threads(t, || {
                // Out-of-place recurrence: T₀x = x, T₁x = L̃x,
                // T_k x = 2·L̃·T_{k−1}x − T_{k−2}x.
                let mut legacy: Vec<Matrix> = vec![x.clone()];
                if k >= 2 {
                    legacy.push(lt.matmul_dense(&x));
                }
                for i in 2..k {
                    let next = &lt.matmul_dense(&legacy[i - 1]).scale(2.0) - &legacy[i - 2];
                    legacy.push(next);
                }

                // Pooled path twice through the same pool, so the second
                // round reuses stale parked buffers.
                let mut pool = BufferPool::new();
                for round in 0..2 {
                    let mut taps = Vec::new();
                    basis.forward_pooled(&x, &mut pool, &mut taps);
                    prop_assert_eq!(taps.len(), k, "tap count");
                    for (i, (tap, want)) in taps.iter().zip(&legacy).enumerate() {
                        assert_bits_eq(tap, want, &format!("cheb tap {i} round {round}"))?;
                    }
                    for m in taps {
                        pool.give(m);
                    }
                }
                Ok(())
            })?;
        }
    }

    /// Pooled Chebyshev adjoint (fused Clenshaw) matches the
    /// out-of-place Clenshaw composition.
    #[test]
    fn cheb_adjoint_pooled_matches_composition(
        (a, x, _) in sparse_triple(),
        k in 1usize..6,
    ) {
        let basis = ChebyshevBasis::from_adjacency(&a, k);
        let lt = basis.scaled_laplacian().clone();
        // Cotangents: reuse x reshaped per tap with distinct values.
        let b: Vec<Matrix> = (0..k)
            .map(|i| x.map(|v| v + i as f64 * 0.125))
            .collect();
        for t in THREAD_COUNTS {
            with_threads(t, || {
                // Out-of-place Clenshaw mirror of adjoint_combine_pooled:
                // c_k = b_k + 2·L̃·c_{k+1} − c_{k+2}; result with s = 1.
                let legacy = if k == 1 {
                    b[0].clone()
                } else {
                    let (n, c) = b[0].shape();
                    let mut c_next = Matrix::zeros(n, c);
                    let mut c_next2 = Matrix::zeros(n, c);
                    for i in (1..k).rev() {
                        let new = &(&b[i] + &lt.matmul_dense(&c_next).scale(2.0)) - &c_next2;
                        c_next2 = std::mem::replace(&mut c_next, new);
                    }
                    &(&b[0] + &lt.matmul_dense(&c_next).scale(1.0)) - &c_next2
                };

                let mut pool = BufferPool::new();
                for round in 0..2 {
                    let out = basis.adjoint_combine_pooled(&b, &mut pool);
                    assert_bits_eq(&out, &legacy, &format!("cheb adjoint round {round}"))?;
                    assert_bits_eq(&basis.adjoint_combine(&b), &legacy, "cheb adjoint legacy")?;
                    pool.give(out);
                }
                Ok(())
            })?;
        }
    }

    /// Pooled random-walk forward/adjoint match the power-by-power
    /// out-of-place composition.
    #[test]
    fn random_walk_pooled_matches_composition(
        (a, x, _) in sparse_triple(),
        k in 1usize..6,
    ) {
        let basis = RandomWalkBasis::from_adjacency(&a, k);
        let p = basis.walk_matrix().clone();
        let pt = p.transpose();
        let b: Vec<Matrix> = (0..k)
            .map(|i| x.map(|v| v - i as f64 * 0.25))
            .collect();
        for t in THREAD_COUNTS {
            with_threads(t, || {
                // Forward: P⁰x … P^{K−1}x.
                let mut legacy: Vec<Matrix> = vec![x.clone()];
                for i in 1..k {
                    legacy.push(p.matmul_dense(&legacy[i - 1]));
                }
                let mut pool = BufferPool::new();
                let mut taps = Vec::new();
                basis.forward_pooled(&x, &mut pool, &mut taps);
                prop_assert_eq!(taps.len(), k, "tap count");
                for (i, (tap, want)) in taps.iter().zip(&legacy).enumerate() {
                    assert_bits_eq(tap, want, &format!("walk tap {i}"))?;
                }
                for m in taps {
                    pool.give(m);
                }

                // Adjoint Horner: s = b_{K−1}; s = Pᵀs + b_k.
                let mut want = b[k - 1].clone();
                for i in (0..k - 1).rev() {
                    want = &pt.matmul_dense(&want) + &b[i];
                }
                let out = basis.adjoint_combine_pooled(&b, &mut pool);
                assert_bits_eq(&out, &want, "walk adjoint")?;
                Ok(())
            })?;
        }
    }
}
