//! The tape-free inference path must be **bit-identical** to the tape
//! forward used by `predict` — the serving layer depends on this to
//! return cached / batched completions indistinguishable from direct
//! single-request evaluation.

use gcwc::{
    build_samples, AGcwcModel, CompletionModel, GcwcModel, InferRequest, InferWorkspace,
    ModelConfig, TaskKind, TrainSample,
};
use gcwc_linalg::Matrix;
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

fn tiny_samples(task: TaskKind) -> (gcwc_traffic::NetworkInstance, Vec<TrainSample>) {
    let hw = generators::highway_tollgate(1);
    let cfg = SimConfig {
        days: 2,
        intervals_per_day: 16,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(&hw, HistogramSpec::hist8(), &cfg);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, task, 0);
    (hw, samples)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn gcwc_hist_infer_matches_predict_bitwise() {
    let (hw, samples) = tiny_samples(TaskKind::Estimation);
    let cfg = ModelConfig::hw_hist().with_epochs(2);
    let mut model = GcwcModel::new(&hw.graph, 8, cfg, 42);
    model.fit(&samples[..8]);
    let mut ws = InferWorkspace::new();
    for s in &samples[..6] {
        let expected = model.predict(s);
        let got = model.infer(&mut ws, &s.input);
        assert_eq!(bits(&expected), bits(&got));
        ws.give(got);
    }
}

#[test]
fn gcwc_avg_infer_matches_predict_bitwise() {
    let (hw, samples) = tiny_samples(TaskKind::Average);
    let cfg = ModelConfig::hw_avg().with_epochs(2);
    let mut model = GcwcModel::new(&hw.graph, 8, cfg, 7);
    model.fit(&samples[..8]);
    let mut ws = InferWorkspace::new();
    for s in &samples[..4] {
        let expected = model.predict(s);
        let got = model.infer(&mut ws, &s.input);
        assert_eq!(bits(&expected), bits(&got));
        ws.give(got);
    }
}

#[test]
fn gcwc_batched_infer_matches_single_requests_bitwise() {
    let (hw, samples) = tiny_samples(TaskKind::Estimation);
    let cfg = ModelConfig::hw_hist().with_epochs(2);
    let mut model = GcwcModel::new(&hw.graph, 8, cfg, 3);
    model.fit(&samples[..8]);
    let mut ws = InferWorkspace::new();
    let batch = &samples[..5];
    let mut outs: Vec<Matrix> =
        (0..batch.len()).map(|_| ws.take(model.num_edges(), model.output_cols())).collect();
    model.infer_into(
        &mut ws,
        batch.len(),
        |r| InferRequest {
            input: &batch[r].input,
            time_of_day: batch[r].context.time_of_day,
            day_of_week: batch[r].context.day_of_week,
            row_flags: &batch[r].context.row_flags,
        },
        &mut outs,
    );
    for (s, out) in batch.iter().zip(&outs) {
        let single = model.infer(&mut ws, &s.input);
        assert_eq!(bits(&single), bits(out), "batched != single");
        assert_eq!(bits(&model.predict(s)), bits(out), "batched != tape");
        ws.give(single);
    }
    for out in outs {
        ws.give(out);
    }
}

#[test]
fn agcwc_hist_infer_matches_predict_bitwise() {
    let (hw, samples) = tiny_samples(TaskKind::Estimation);
    let cfg = ModelConfig::hw_hist().with_epochs(2);
    let mut model = AGcwcModel::new(&hw.graph, 8, 16, cfg, 42);
    model.fit(&samples[..8]);
    let mut ws = InferWorkspace::new();
    for s in &samples[..6] {
        let expected = model.predict(s);
        let got = model.infer(
            &mut ws,
            &s.input,
            s.context.time_of_day,
            s.context.day_of_week,
            &s.context.row_flags,
        );
        assert_eq!(bits(&expected), bits(&got));
        ws.give(got);
    }
}

#[test]
fn agcwc_avg_infer_matches_predict_bitwise() {
    let (hw, samples) = tiny_samples(TaskKind::Average);
    let cfg = ModelConfig::hw_avg().with_epochs(2);
    let mut model = AGcwcModel::new(&hw.graph, 8, 16, cfg, 9);
    model.fit(&samples[..8]);
    let mut ws = InferWorkspace::new();
    for s in &samples[..4] {
        let expected = model.predict(s);
        let got = model.infer(
            &mut ws,
            &s.input,
            s.context.time_of_day,
            s.context.day_of_week,
            &s.context.row_flags,
        );
        assert_eq!(bits(&expected), bits(&got));
        ws.give(got);
    }
}

#[test]
fn agcwc_context_mask_subsets_match_bitwise() {
    let (hw, samples) = tiny_samples(TaskKind::Estimation);
    for mask in [
        [false, false, false],
        [true, false, false],
        [false, true, false],
        [false, false, true],
        [true, true, false],
    ] {
        let mut cfg = ModelConfig::hw_hist().with_epochs(1);
        cfg.context_mask = mask;
        let mut model = AGcwcModel::new(&hw.graph, 8, 16, cfg, 4);
        model.fit(&samples[..6]);
        let mut ws = InferWorkspace::new();
        let s = &samples[1];
        let expected = model.predict(s);
        let got = model.infer(
            &mut ws,
            &s.input,
            s.context.time_of_day,
            s.context.day_of_week,
            &s.context.row_flags,
        );
        assert_eq!(bits(&expected), bits(&got), "mask {mask:?}");
        ws.give(got);
    }
}

#[test]
fn agcwc_batched_infer_matches_single_requests_bitwise() {
    let (hw, samples) = tiny_samples(TaskKind::Estimation);
    let cfg = ModelConfig::hw_hist().with_epochs(2);
    let mut model = AGcwcModel::new(&hw.graph, 8, 16, cfg, 5);
    model.fit(&samples[..8]);
    let mut ws = InferWorkspace::new();
    let batch = &samples[..5];
    let mut outs: Vec<Matrix> =
        (0..batch.len()).map(|_| ws.take(model.num_edges(), model.output_cols())).collect();
    model.infer_into(
        &mut ws,
        batch.len(),
        |r| InferRequest {
            input: &batch[r].input,
            time_of_day: batch[r].context.time_of_day,
            day_of_week: batch[r].context.day_of_week,
            row_flags: &batch[r].context.row_flags,
        },
        &mut outs,
    );
    for (s, out) in batch.iter().zip(&outs) {
        assert_eq!(bits(&model.predict(s)), bits(out), "batched != tape");
    }
    for out in outs {
        ws.give(out);
    }
}
