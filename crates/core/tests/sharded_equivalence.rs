//! The load-bearing sharding invariant, end to end:
//!
//! * **K = 1 is bit-identical to the unsharded pipeline** — same
//!   initialisation, same training trajectory, same checkpoint bytes,
//!   same predictions (`to_bits`-level), for both GCWC and A-GCWC.
//! * **K > 1 stays close on boundary edges** — rows whose 1-hop
//!   neighbourhood crosses a partition cut see a truncated receptive
//!   field; their completions must remain valid histograms within a
//!   stated tolerance of the unsharded model's.

use gcwc::{
    build_samples, CompletionModel, GcwcModel, ModelConfig, ShardedModel, TaskKind, TrainSample,
};
use gcwc_linalg::Matrix;
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

fn samples_for(
    instance: &gcwc_traffic::NetworkInstance,
    intervals_per_day: usize,
) -> Vec<TrainSample> {
    let cfg =
        SimConfig { days: 2, intervals_per_day, records_per_interval: 10.0, ..Default::default() };
    let data = simulate(instance, HistogramSpec::hist8(), &cfg);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    build_samples(&ds, &idx, TaskKind::Estimation, 0)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn k1_gcwc_training_and_checkpoints_are_bit_identical() {
    let hw = generators::highway_tollgate(1);
    let samples = samples_for(&hw, 16);
    let cfg = ModelConfig::hw_hist().with_epochs(3);

    let mut flat = GcwcModel::new(&hw.graph, 8, cfg.clone(), 42);
    let mut sharded = ShardedModel::gcwc(&hw.graph, 8, cfg, 42, 1);
    flat.fit(&samples[..8]);
    sharded.fit_shards(&samples[..8]);

    // Predictions after N training steps are bit-identical.
    for s in &samples[..4] {
        assert_eq!(bits(&flat.predict(s)), bits(&sharded.predict_global(s)));
    }

    // Checkpoint files are byte-identical: the single shard's graph is
    // a clone of the global graph, so even the arch header matches.
    let dir = std::env::temp_dir().join("gcwc_sharded_equiv");
    std::fs::create_dir_all(&dir).unwrap();
    let flat_path = dir.join("flat.ckpt");
    flat.save(&flat_path).unwrap();
    let shard_paths = sharded.save_shards(&dir, "k1").unwrap();
    assert_eq!(shard_paths.len(), 1);
    let flat_bytes = std::fs::read(&flat_path).unwrap();
    let shard_bytes = std::fs::read(&shard_paths[0]).unwrap();
    assert_eq!(flat_bytes, shard_bytes, "K=1 checkpoint must be byte-identical");
    std::fs::remove_file(&flat_path).ok();
    std::fs::remove_file(&shard_paths[0]).ok();
}

#[test]
fn k1_agcwc_training_is_bit_identical() {
    let hw = generators::highway_tollgate(1);
    let samples = samples_for(&hw, 16);
    let cfg = ModelConfig::hw_hist().with_epochs(2);

    let mut flat = gcwc::AGcwcModel::new(&hw.graph, 8, 16, cfg.clone(), 7);
    let mut sharded = ShardedModel::agcwc(&hw.graph, 8, 16, cfg, 7, 1);
    flat.fit(&samples[..8]);
    sharded.fit_shards(&samples[..8]);
    for s in &samples[..4] {
        assert_eq!(bits(&flat.predict(s)), bits(&sharded.predict_global(s)));
    }
}

#[test]
fn k4_boundary_rows_stay_within_tolerance() {
    let city = generators::city_network_sized(3, 96);
    let samples = samples_for(&city, 8);
    let cfg = ModelConfig::ci_hist().with_epochs(8);

    let mut flat = GcwcModel::new(&city.graph, 8, cfg.clone(), 21);
    let mut sharded = ShardedModel::gcwc(&city.graph, 8, cfg, 21, 4);
    flat.fit(&samples[..8]);
    sharded.fit_shards(&samples[..8]);

    let boundary = sharded.partition_set().boundary_nodes();
    assert!(!boundary.is_empty(), "K=4 on the city must cut some edges");

    let mut far = 0usize;
    let mut total = 0.0f64;
    let mut count = 0usize;
    for s in &samples[..4] {
        let a = flat.predict(s);
        let b = sharded.predict_global(s);
        for &i in &boundary {
            // Valid histogram on every boundary row...
            let sum: f64 = b.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} not a distribution");
            // ...and within total-variation tolerance of the
            // unsharded completion despite the truncated halo.
            let tv = 0.5 * a.row(i).iter().zip(b.row(i)).map(|(x, y)| (x - y).abs()).sum::<f64>();
            if tv > 0.5 {
                far += 1;
            }
            total += tv;
            count += 1;
        }
    }
    let mean = total / count as f64;
    let far_frac = far as f64 / count as f64;
    // Stated tolerance: boundary completions of two independently
    // initialised trainings agree to 0.25 mean TV, with at most 10% of
    // boundary rows beyond 0.5 TV — the truncated halo perturbs
    // individual rows, it does not derail the completion.
    assert!(mean < 0.25, "mean boundary TV distance {mean} exceeds tolerance");
    assert!(far_frac <= 0.10, "{far}/{count} boundary rows beyond 0.5 TV");
}
