//! Delta-repair bit-equivalence at the model level, K ∈ {1, 2, 4}:
//! a sharded model trained on the pre-delta graph, repaired with
//! [`GraphDelta`], and retrained *only on its repaired shards* must
//! predict `to_bits`-identically to a fresh model built directly on
//! the post-delta graph (same ownership, same seed) and trained on the
//! same samples — while keeping the surviving shards' parameters (and
//! partition `Arc`s) untouched.

use std::sync::Arc;

use gcwc::{
    build_samples, shard_seed, GcwcModel, ModelConfig, ShardedModel, TaskKind, TrainSample,
};
use gcwc_graph::{GraphDelta, PartitionSet};
use gcwc_linalg::Matrix;
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn samples_for(instance: &gcwc_traffic::NetworkInstance) -> Vec<TrainSample> {
    let cfg = SimConfig {
        days: 2,
        intervals_per_day: 8,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(instance, HistogramSpec::hist8(), &cfg);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    build_samples(&ds, &idx, TaskKind::Estimation, 0)
}

/// A link interior to one partition's owned block — the most localized
/// delta possible — falling back to any existing link.
fn pick_link(ps: &PartitionSet, graph: &gcwc_graph::EdgeGraph) -> (usize, usize) {
    for u in 0..graph.num_nodes() {
        for &v in graph.neighbors(u) {
            if u < v && ps.owner_of(u) == ps.owner_of(v) && !ps.is_boundary(u) {
                return (u, v);
            }
        }
    }
    for u in 0..graph.num_nodes() {
        if let Some(&v) = graph.neighbors(u).iter().find(|&&v| v > u) {
            return (u, v);
        }
    }
    panic!("graph has no links");
}

#[test]
fn repaired_model_matches_fresh_postdelta_model() {
    let city = generators::city_network_sized(2, 64);
    let samples = samples_for(&city);
    let cfg = ModelConfig::ci_hist().with_epochs(2);
    let seed = 42u64;

    for k in [1usize, 2, 4] {
        // Model A: train on the pre-delta graph, absorb the delta,
        // retrain only the repaired shards.
        let pre = Arc::new(PartitionSet::build(&city.graph, k));
        let mut repaired_model = ShardedModel::gcwc_on(Arc::clone(&pre), 8, cfg.clone(), seed);
        repaired_model.fit_shards(&samples[..6]);

        let link = pick_link(&pre, &city.graph);
        let delta = GraphDelta { added_edges: vec![], removed_edges: vec![link] };
        let (new_graph, repaired) = repaired_model
            .apply_delta(&city.graph, &delta, |b, p| {
                GcwcModel::new(p.graph(), 8, cfg.clone(), shard_seed(seed, b))
            })
            .unwrap();
        assert!(!repaired.is_empty(), "K={k}: the delta must repair at least one shard");
        if k > 1 {
            assert!(
                repaired.len() < k,
                "K={k}: a localized delta must repair strictly fewer than all shards"
            );
        }
        repaired_model.fit_shards_subset(&repaired, &samples[..6]).unwrap();

        // Model B: built directly on the post-delta graph with the
        // same ownership and seed, trained from scratch.
        let owners = repaired_model.partition_set().owners().to_vec();
        let post = Arc::new(PartitionSet::from_owner_of(&new_graph, owners, k));
        let mut fresh_model = ShardedModel::gcwc_on(post, 8, cfg.clone(), seed);
        fresh_model.fit_shards(&samples[..6]);

        for s in &samples[..3] {
            assert_eq!(
                bits(&repaired_model.predict_global(s)),
                bits(&fresh_model.predict_global(s)),
                "K={k}: repaired model diverged from fresh post-delta model"
            );
        }

        // Surviving shards kept their partition Arcs.
        for b in 0..k {
            let kept =
                Arc::ptr_eq(&pre.partitions()[b], &repaired_model.partition_set().partitions()[b]);
            assert_eq!(kept, !repaired.contains(&b), "K={k} partition {b}");
        }
    }
}
