//! Checkpoint-and-resume continuity: a training run stopped at an
//! epoch boundary and resumed from its persisted [`gcwc::TrainState`]
//! must reproduce the uninterrupted run **bit for bit** — the same
//! final parameters, the same epoch losses, and byte-identical final
//! state and model checkpoint files. The state carries the master RNG's
//! raw words and the in-place shuffle order, so the resumed run draws
//! the exact random stream the killed run would have drawn.
//!
//! With the `failpoints` feature, a `panic`-armed
//! `train.checkpoint.save` site simulates the process dying mid-run
//! (the unwind aborts training after some epochs were already
//! persisted); resuming afterwards must still land on the identical
//! final checkpoint.

use std::path::{Path, PathBuf};

use gcwc::train::{CheckpointPlan, TrainControl};
use gcwc::{build_samples, GcwcModel, ModelConfig, ShardedModel, TaskKind, TrainSample};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

fn samples_for(instance: &gcwc_traffic::NetworkInstance) -> Vec<TrainSample> {
    let cfg = SimConfig {
        days: 2,
        intervals_per_day: 16,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(instance, HistogramSpec::hist8(), &cfg);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    build_samples(&ds, &idx, TaskKind::Estimation, 0)
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn checkpoint_bytes(model: &GcwcModel, dir: &Path, name: &str) -> Vec<u8> {
    let path = dir.join(name);
    model.save(&path).unwrap();
    std::fs::read(&path).unwrap()
}

fn plan(path: PathBuf) -> TrainControl {
    TrainControl {
        checkpoint: Some(CheckpointPlan { path, every_epochs: 2, resume: true }),
        ..TrainControl::default()
    }
}

#[test]
fn resumed_training_is_bit_identical_to_uninterrupted() {
    let hw = generators::highway_tollgate(1);
    let samples = samples_for(&hw);
    let samples = &samples[..8];
    let dir = fresh_dir("gcwc_train_resume_full");

    // Reference: one uninterrupted 6-epoch run.
    let mut full = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(6), 42);
    full.try_fit(samples, &plan(dir.join("full.trainstate"))).unwrap();
    let full_ckpt = checkpoint_bytes(&full, &dir, "full.ckpt");
    let full_state = std::fs::read(dir.join("full.trainstate")).unwrap();

    // "Killed" run: train 4 of 6 epochs (the state file lands at the
    // epoch-4 boundary), then a fresh process-equivalent model resumes
    // from that state and finishes the remaining 2 epochs.
    let mut first = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(4), 42);
    first.try_fit(samples, &plan(dir.join("split.trainstate"))).unwrap();
    let mut second = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(6), 42);
    second.try_fit(samples, &plan(dir.join("split.trainstate"))).unwrap();

    assert_eq!(
        full.last_report().epoch_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        second.last_report().epoch_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        "epoch losses must survive the kill/resume boundary bit-exactly"
    );
    let split_ckpt = checkpoint_bytes(&second, &dir, "split.ckpt");
    assert_eq!(full_ckpt, split_ckpt, "resumed model checkpoint must be byte-identical");
    let split_state = std::fs::read(dir.join("split.trainstate")).unwrap();
    assert_eq!(full_state, split_state, "final training state must be byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn completed_state_resumes_to_a_noop() {
    let hw = generators::highway_tollgate(1);
    let samples = samples_for(&hw);
    let samples = &samples[..8];
    let dir = fresh_dir("gcwc_train_resume_noop");

    let mut model = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(3), 42);
    model.try_fit(samples, &plan(dir.join("run.trainstate"))).unwrap();
    let ckpt = checkpoint_bytes(&model, &dir, "run.ckpt");

    // Re-running with the same epoch budget must restore and return
    // without training further.
    let mut again = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(3), 42);
    again.try_fit(samples, &plan(dir.join("run.trainstate"))).unwrap();
    assert_eq!(again.last_report().epoch_losses.len(), 3);
    assert_eq!(ckpt, checkpoint_bytes(&again, &dir, "again.ckpt"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_state_is_rejected_with_a_typed_error() {
    let hw = generators::highway_tollgate(1);
    let samples = samples_for(&hw);
    let dir = fresh_dir("gcwc_train_resume_reject");
    let state_path = dir.join("run.trainstate");

    let mut model = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(2), 42);
    model.try_fit(&samples[..8], &plan(state_path.clone())).unwrap();

    // Same architecture, different sample count: the shuffle order in
    // the state no longer applies, so resume must refuse rather than
    // silently train on a mismatched permutation.
    let mut other = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(4), 42);
    let err = other.try_fit(&samples[..6], &plan(state_path)).unwrap_err();
    assert!(
        matches!(err, gcwc::TrainError::Checkpoint(_)),
        "expected a checkpoint mismatch, got {err:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_training_resumes_bit_identically_per_shard() {
    let hw = generators::highway_tollgate(1);
    let samples = samples_for(&hw);
    let samples = &samples[..8];
    let dir_full = fresh_dir("gcwc_shard_resume_full");
    let dir_split = fresh_dir("gcwc_shard_resume_split");

    let mut full = ShardedModel::gcwc(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(6), 42, 2);
    full.fit_shards_resumable(samples, &dir_full, "run", 2, true).unwrap();
    let full_paths = full.save_shards(&dir_full, "model").unwrap();

    let mut first = ShardedModel::gcwc(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(4), 42, 2);
    first.fit_shards_resumable(samples, &dir_split, "run", 2, true).unwrap();
    let mut second = ShardedModel::gcwc(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(6), 42, 2);
    second.fit_shards_resumable(samples, &dir_split, "run", 2, true).unwrap();
    let split_paths = second.save_shards(&dir_split, "model").unwrap();

    for (a, b) in full_paths.iter().zip(&split_paths) {
        assert_eq!(
            std::fs::read(a).unwrap(),
            std::fs::read(b).unwrap(),
            "shard checkpoint {a:?} differs after resume"
        );
    }
    std::fs::remove_dir_all(&dir_full).ok();
    std::fs::remove_dir_all(&dir_split).ok();
}

/// The process "dies" mid-run: a `panic`-armed checkpoint-save site
/// unwinds out of training after two epochs were persisted; resuming
/// from the surviving state file must still produce the uninterrupted
/// run's exact final checkpoint.
#[cfg(feature = "failpoints")]
#[test]
fn killed_run_resumes_to_identical_final_checkpoint() {
    let hw = generators::highway_tollgate(1);
    let samples = samples_for(&hw);
    let samples = &samples[..8];
    let dir = fresh_dir("gcwc_train_resume_kill");

    let mut full = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(6), 42);
    full.try_fit(samples, &plan(dir.join("full.trainstate"))).unwrap();
    let full_ckpt = checkpoint_bytes(&full, &dir, "full.ckpt");

    // every_epochs = 2 saves at epochs 2, 4, 6; the second save (epoch
    // 4) panics mid-write-path, killing the run with epoch 2's state on
    // disk.
    gcwc_failpoint::configure(gcwc::train::failsite::CHECKPOINT_SAVE, "1*off->panic").unwrap();
    let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut m = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(6), 42);
        m.try_fit(samples, &plan(dir.join("kill.trainstate"))).unwrap();
    }));
    gcwc_failpoint::remove(gcwc::train::failsite::CHECKPOINT_SAVE);
    assert!(killed.is_err(), "the armed failpoint must kill the run");

    let mut resumed = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist().with_epochs(6), 42);
    resumed.try_fit(samples, &plan(dir.join("kill.trainstate"))).unwrap();
    assert_eq!(full_ckpt, checkpoint_bytes(&resumed, &dir, "kill.ckpt"));
    std::fs::remove_dir_all(&dir).ok();
}
