//! Model configurations reproducing the paper's Table III.
//!
//! The notation `C{K}×1_{f}-P{p}-…-FC{n}` maps to a sequence of
//! [`ConvLayer`]s (Chebyshev order `K`, `f` filters, pooling size `p`)
//! followed by a per-bucket fully connected decoder to `n` outputs.

use gcwc_nn::OptimConfig;

/// One graph-convolution + pooling stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvLayer {
    /// Chebyshev order `K` (the `C{K}×1` part).
    pub cheb_order: usize,
    /// Number of filters `f`.
    pub filters: usize,
    /// Graph pooling size after the convolution (must be a power of two;
    /// 1 disables pooling).
    pub pool: usize,
}

/// Output head: speed histograms (softmax) or average speeds (sigmoid).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputKind {
    /// HIST functionality: `n × m` histogram matrix, row-wise softmax,
    /// KL loss (Eq. 3).
    Histogram,
    /// AVG functionality: `n × 1` normalised speeds, sigmoid, masked MSE.
    Average,
}

/// The CP-CNN context sub-network of A-GCWC (§V-B3):
/// `C2×2_4-P2-C2×2_8-P2-FC1` in Table III.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpCnnConfig {
    /// Filters in the first 2×2 convolution.
    pub filters1: usize,
    /// Filters in the second 2×2 convolution.
    pub filters2: usize,
}

impl Default for CpCnnConfig {
    fn default() -> Self {
        Self { filters1: 4, filters2: 8 }
    }
}

/// Full model configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelConfig {
    /// Graph convolution stack.
    pub conv_layers: Vec<ConvLayer>,
    /// Output head.
    pub output: OutputKind,
    /// Optimiser settings (LR / Decay / Regul columns of Table III).
    pub optim: OptimConfig,
    /// Dropout probability on the penultimate representation.
    pub dropout: f64,
    /// Denoising augmentation: probability of re-masking an observed
    /// input row during training (the row stays in the loss mask), which
    /// is what turns the auto-encoder (§IV-A) into a *completion* model —
    /// without it the decoder is never supervised on rows absent from
    /// its input.
    pub row_dropout: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (20 in the paper's timing experiments).
    pub batch_size: usize,
    /// Context embedding dimensionality β (A-GCWC; 4 in the paper).
    pub context_dim: usize,
    /// CP-CNN architecture (A-GCWC).
    pub cp_cnn: CpCnnConfig,
    /// Which contexts A-GCWC uses: `[time, day, row-flag]`. All enabled
    /// in the paper; subsets drive the context ablation benches.
    pub context_mask: [bool; 3],
    /// Worker threads for the data-parallel training loop. `0` resolves
    /// the ambient count (`GCWC_THREADS` env override, else available
    /// parallelism); `1` forces the exact serial path. Results are
    /// bit-identical for every value.
    pub threads: usize,
}

impl ModelConfig {
    /// GCWC for the HW dataset, HIST type:
    /// `C8×1_16-P4-C8×1_16-P2-FC24` with Table III's hyper-parameters.
    pub fn hw_hist() -> Self {
        Self {
            conv_layers: vec![
                ConvLayer { cheb_order: 8, filters: 16, pool: 4 },
                ConvLayer { cheb_order: 8, filters: 16, pool: 2 },
            ],
            output: OutputKind::Histogram,
            optim: OptimConfig {
                learning_rate: 5.0e-3,
                lr_decay: 0.995,
                weight_decay: 0.001,
                grad_clip: 5.0,
            },
            dropout: 0.17,
            row_dropout: 0.25,
            epochs: 30,
            batch_size: 20,
            context_dim: 4,
            cp_cnn: CpCnnConfig::default(),
            context_mask: [true; 3],
            threads: 0,
        }
    }

    /// GCWC for the CI dataset, HIST type:
    /// `C8×1_8-P2-C4×1_8-P2-FC172`.
    pub fn ci_hist() -> Self {
        Self {
            conv_layers: vec![
                ConvLayer { cheb_order: 8, filters: 8, pool: 2 },
                ConvLayer { cheb_order: 4, filters: 8, pool: 2 },
            ],
            output: OutputKind::Histogram,
            optim: OptimConfig {
                learning_rate: 3.0e-3,
                lr_decay: 0.995,
                weight_decay: 0.002,
                grad_clip: 5.0,
            },
            dropout: 0.13,
            row_dropout: 0.25,
            epochs: 30,
            batch_size: 20,
            context_dim: 4,
            cp_cnn: CpCnnConfig::default(),
            context_mask: [true; 3],
            threads: 0,
        }
    }

    /// GCWC for HW, AVG type (same encoder, sigmoid head).
    pub fn hw_avg() -> Self {
        Self { output: OutputKind::Average, ..Self::hw_hist() }
    }

    /// GCWC for CI, AVG type.
    pub fn ci_avg() -> Self {
        Self { output: OutputKind::Average, ..Self::ci_hist() }
    }

    /// Scales down epochs for quick runs (the experiment harness's fast
    /// profile); keeps everything else.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Pins the training worker thread count (`0` = ambient, `1` =
    /// serial); keeps everything else.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Table III-style architecture signature of the conv stack + head,
    /// e.g. `C8x1_16-P4-C8x1_16-P2-hist`. Whitespace-free, so it can be
    /// embedded in a checkpoint header's architecture token.
    pub fn arch_signature(&self) -> String {
        let mut s = String::new();
        for l in &self.conv_layers {
            s.push_str(&format!("C{}x1_{}-", l.cheb_order, l.filters));
            if l.pool > 1 {
                s.push_str(&format!("P{}-", l.pool));
            }
        }
        s.push_str(match self.output {
            OutputKind::Histogram => "hist",
            OutputKind::Average => "avg",
        });
        s
    }

    /// Total pooling factor of the conv stack.
    pub fn total_pool(&self) -> usize {
        self.conv_layers.iter().map(|l| l.pool).product()
    }

    /// Number of coarsening levels needed (`log2` of each pool size).
    pub fn coarsen_levels(&self) -> usize {
        self.conv_layers.iter().map(|l| log2_exact(l.pool)).sum()
    }
}

/// `log2` for exact powers of two (re-exported from `gcwc-graph`, the
/// single definition shared with [`gcwc_graph::ConvPlan`]).
pub use gcwc_graph::log2_exact;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_architectures() {
        let hw = ModelConfig::hw_hist();
        assert_eq!(hw.conv_layers.len(), 2);
        assert_eq!(hw.conv_layers[0].cheb_order, 8);
        assert_eq!(hw.conv_layers[0].filters, 16);
        assert_eq!(hw.total_pool(), 8);
        assert_eq!(hw.coarsen_levels(), 3);

        let ci = ModelConfig::ci_hist();
        assert_eq!(ci.conv_layers[1].cheb_order, 4);
        assert_eq!(ci.total_pool(), 4);
        assert_eq!(ci.coarsen_levels(), 2);
    }

    #[test]
    fn avg_variants_change_head_only() {
        let hist = ModelConfig::hw_hist();
        let avg = ModelConfig::hw_avg();
        assert_eq!(avg.output, OutputKind::Average);
        assert_eq!(avg.conv_layers, hist.conv_layers);
        assert_eq!(avg.optim.learning_rate, hist.optim.learning_rate);
    }

    #[test]
    fn log2_exact_values() {
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(2), 1);
        assert_eq!(log2_exact(4), 2);
        assert_eq!(log2_exact(8), 3);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_rejects_non_powers() {
        log2_exact(6);
    }

    #[test]
    fn with_epochs_overrides() {
        assert_eq!(ModelConfig::ci_hist().with_epochs(3).epochs, 3);
    }
}
