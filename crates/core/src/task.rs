//! Task definitions: training samples, the three functionalities of
//! §VI-A.3 (Estimation / Prediction / Average), and the common model
//! interface shared by GCWC, A-GCWC and all baselines.

use gcwc_linalg::Matrix;
use gcwc_traffic::{Context, Dataset};

/// The functionality being evaluated (§VI-A.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Complete `Ŵ@Ti` from `W@Ti` (label = the input matrix itself).
    Estimation,
    /// Predict `Ŵ@T(i+1)` from `W@Ti` (label = next interval's matrix at
    /// the same removal ratio).
    Prediction,
    /// Estimate deterministic average speeds (sigmoid head, `n × 1`).
    Average,
}

/// One training/evaluation sample.
#[derive(Clone, Debug)]
pub struct TrainSample {
    /// Index of the snapshot the *input* matrix comes from (evaluation
    /// targets derive from this: same index for estimation, `+1` for
    /// prediction).
    pub snapshot_index: usize,
    /// Incomplete input matrix `W` (`n × m`).
    pub input: Matrix,
    /// Label matrix: `n × m` histograms, or `n × 1` normalised speeds
    /// for [`TaskKind::Average`].
    pub label: Matrix,
    /// Row mask: `1.0` where the label row carries data (the `I_i` of
    /// Eq. 3).
    pub label_mask: Vec<f64>,
    /// Context of the input matrix.
    pub context: Context,
    /// Preceding input matrices, oldest first (used by the DR baseline;
    /// zero matrices pad the start of the timeline).
    pub history: Vec<Matrix>,
}

/// Maximum representable speed (m/s); average speeds are normalised by
/// this before the sigmoid head.
pub const MAX_SPEED: f64 = 40.0;

/// Denoising augmentation: zeroes each covered input row with
/// probability `p`, returning the corrupted matrix and the row flags of
/// the *corrupted* input (what the model actually observes).
pub fn corrupt_input(
    input: &Matrix,
    row_flags: &[f64],
    p: f64,
    rng: &mut rand::rngs::StdRng,
) -> (Matrix, Vec<f64>) {
    use rand::Rng;
    let mut out = input.clone();
    let mut flags = row_flags.to_vec();
    if p <= 0.0 {
        return (out, flags);
    }
    for e in 0..out.rows() {
        if flags[e] > 0.0 && rng.random::<f64>() < p {
            out.row_mut(e).fill(0.0);
            flags[e] = 0.0;
        }
    }
    (out, flags)
}

/// [`corrupt_input`] staged in pooled buffers: the corrupted matrix and
/// flag vector come from `pool` (return them with `give`/`give_vec`
/// when done). Consumes the RNG stream identically and produces
/// bit-identical contents.
pub fn corrupt_input_pooled(
    input: &Matrix,
    row_flags: &[f64],
    p: f64,
    rng: &mut rand::rngs::StdRng,
    pool: &mut gcwc_linalg::BufferPool,
) -> (Matrix, Vec<f64>) {
    use rand::Rng;
    let mut out = pool.take_raw(input.rows(), input.cols());
    out.copy_from(input);
    let mut flags = pool.take_vec(row_flags.len());
    flags.copy_from_slice(row_flags);
    if p <= 0.0 {
        return (out, flags);
    }
    for e in 0..out.rows() {
        if flags[e] > 0.0 && rng.random::<f64>() < p {
            out.row_mut(e).fill(0.0);
            flags[e] = 0.0;
        }
    }
    (out, flags)
}

/// The uniform interface every completion method implements.
pub trait CompletionModel {
    /// Display name (table column header).
    fn name(&self) -> String;

    /// Fits the model on training samples.
    fn fit(&mut self, samples: &[TrainSample]);

    /// Produces the completed matrix for a sample's input and context:
    /// `n × m` row-stochastic histograms, or `n × 1` normalised speeds
    /// for average models. Must not read `sample.label`.
    fn predict(&self, sample: &TrainSample) -> Matrix;

    /// Number of trainable scalars (Table III's `#Para`); 0 for
    /// non-parametric methods.
    fn num_params(&self) -> usize {
        0
    }
}

/// Builds samples for the given snapshot indices of a dataset.
///
/// * `Estimation`: label = the input matrix itself, masked to its own
///   covered rows ("unsupervised" training, §IV-A).
/// * `Prediction`: label = the *next* snapshot's input matrix (ground
///   truth at `T(k+1)` with the same removal ratio applied, §VI-A.3);
///   the last snapshot yields no sample.
/// * `Average`: label = ground-truth mean speeds (normalised by
///   [`MAX_SPEED`]) on rows covered by the input.
pub fn build_samples(
    dataset: &Dataset,
    indices: &[usize],
    task: TaskKind,
    history_len: usize,
) -> Vec<TrainSample> {
    let n = dataset.num_edges;
    let m = dataset.spec.buckets;
    let mut samples = Vec::with_capacity(indices.len());
    for &i in indices {
        let snap = &dataset.snapshots[i];
        let history = (0..history_len)
            .map(|back| {
                let offset = history_len - back; // oldest first
                if i >= offset {
                    dataset.snapshots[i - offset].input.matrix().clone()
                } else {
                    Matrix::zeros(n, m)
                }
            })
            .collect();
        let (label, label_mask) = match task {
            TaskKind::Estimation => (snap.input.matrix().clone(), snap.input.row_flags()),
            TaskKind::Prediction => {
                let Some(next) = dataset.prediction_label(i) else { continue };
                (next.input.matrix().clone(), next.input.row_flags())
            }
            TaskKind::Average => {
                let mut label = Matrix::zeros(n, 1);
                let mut mask = vec![0.0; n];
                for e in 0..n {
                    if let Some(v) = snap.avg_truth[e] {
                        if snap.input.is_covered(e) {
                            label[(e, 0)] = v / MAX_SPEED;
                            mask[e] = 1.0;
                        }
                    }
                }
                (label, mask)
            }
        };
        samples.push(TrainSample {
            snapshot_index: i,
            input: snap.input.matrix().clone(),
            label,
            label_mask,
            context: snap.context.clone(),
            history,
        });
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

    fn dataset() -> Dataset {
        let hw = generators::highway_tollgate(1);
        let cfg = SimConfig { days: 1, intervals_per_day: 10, ..Default::default() };
        let data = simulate(&hw, HistogramSpec::hist8(), &cfg);
        data.to_dataset(0.5, 5, 7)
    }

    #[test]
    fn estimation_labels_are_inputs() {
        let ds = dataset();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        assert_eq!(samples.len(), ds.len());
        for (s, snap) in samples.iter().zip(&ds.snapshots) {
            assert_eq!(&s.label, snap.input.matrix());
            assert_eq!(s.label_mask, snap.input.row_flags());
        }
    }

    #[test]
    fn prediction_labels_shift_by_one() {
        let ds = dataset();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Prediction, 0);
        // The last snapshot has no next-interval label.
        assert_eq!(samples.len(), ds.len() - 1);
        assert_eq!(&samples[0].label, ds.snapshots[1].input.matrix());
    }

    #[test]
    fn average_labels_are_normalised() {
        let ds = dataset();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Average, 0);
        for s in &samples {
            assert_eq!(s.label.cols(), 1);
            for e in 0..s.label.rows() {
                let v = s.label[(e, 0)];
                assert!((0.0..=1.0).contains(&v), "normalised speed {v}");
                if s.label_mask[e] == 0.0 {
                    assert_eq!(v, 0.0);
                }
            }
        }
    }

    #[test]
    fn history_is_oldest_first_with_zero_padding() {
        let ds = dataset();
        let idx = vec![0usize, 2];
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 2);
        // Snapshot 0: no predecessors -> both history entries zero.
        assert_eq!(samples[0].history.len(), 2);
        assert_eq!(samples[0].history[0].sum(), 0.0);
        assert_eq!(samples[0].history[1].sum(), 0.0);
        // Snapshot 2: history = [input@0, input@1].
        assert_eq!(&samples[1].history[0], ds.snapshots[0].input.matrix());
        assert_eq!(&samples[1].history[1], ds.snapshots[1].input.matrix());
    }
}
