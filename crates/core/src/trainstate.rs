//! Mid-run training state persistence for checkpoint-and-resume.
//!
//! A [`TrainState`] captures everything `run_training_guarded` needs to
//! continue a run exactly where it stopped: the parameter values, the
//! Adam moments and counters, the master RNG's raw state, the current
//! shuffle order, and the epoch losses recorded so far. The format is
//! the same dependency-free text-plus-hex style as `gcwc_nn::persist`
//! (lossless IEEE-754 round trip), so a run killed between epochs and
//! restarted with `resume` reproduces the uninterrupted run bit for
//! bit.
//!
//! Files are written atomically: the state is serialised to a `.tmp`
//! sibling and renamed over the target, so a crash mid-write leaves
//! either the previous complete state or none at all — never a torn
//! file.

use std::path::Path;

use gcwc_linalg::Matrix;
use gcwc_nn::{AdamState, ParamStore, PersistError};

/// Leading keyword of the training-state header line.
const HEADER: &str = "gcwc-trainstate";

/// Current training-state format version.
pub const FORMAT_VERSION: u32 = 1;

/// A complete snapshot of an in-progress training run at an epoch
/// boundary.
#[derive(Clone, Debug, Default)]
pub struct TrainState {
    /// Epochs fully completed (the resume point).
    pub epochs_done: usize,
    /// Master RNG state at the epoch boundary.
    pub rng_state: [u64; 4],
    /// Sample shuffle order as of the epoch boundary (the next epoch's
    /// shuffle permutes this order in place, so it must round-trip).
    pub order: Vec<usize>,
    /// Mean per-sample loss of each completed epoch.
    pub epoch_losses: Vec<f64>,
    /// Adam step/epoch counters and moment estimates.
    pub adam: AdamState,
    /// Parameter values, in store order.
    pub params: Vec<(String, Matrix)>,
}

impl TrainState {
    /// Serialises the state to the text format.
    pub fn to_text(&self) -> String {
        let mut out = format!("{HEADER} v{FORMAT_VERSION}\n");
        out.push_str(&format!(
            "run {} rng {:016x} {:016x} {:016x} {:016x}\n",
            self.epochs_done,
            self.rng_state[0],
            self.rng_state[1],
            self.rng_state[2],
            self.rng_state[3]
        ));
        out.push_str(&format!("order {}\n", self.order.len()));
        push_usizes(&mut out, &self.order);
        out.push_str(&format!("losses {}\n", self.epoch_losses.len()));
        push_hex(&mut out, &self.epoch_losses);
        out.push_str(&format!("adam {} {}\n", self.adam.t, self.adam.epoch));
        out.push_str(&format!("params {}\n", self.params.len()));
        for (i, (name, value)) in self.params.iter().enumerate() {
            let m = &self.adam.m[i];
            let v = &self.adam.v[i];
            out.push_str(&format!("param {name} {} {}\n", value.rows(), value.cols()));
            push_hex(&mut out, value.as_slice());
            push_hex(&mut out, m.as_slice());
            push_hex(&mut out, v.as_slice());
        }
        out
    }

    /// Parses state text written by [`TrainState::to_text`].
    pub fn from_text(content: &str) -> Result<Self, PersistError> {
        let mut tok = content.split_whitespace();
        expect(&mut tok, HEADER)?;
        let version = next(&mut tok, "format version")?;
        let number: u32 = version
            .strip_prefix('v')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| PersistError::Format(format!("bad format version '{version}'")))?;
        if number == 0 || number > FORMAT_VERSION {
            return Err(PersistError::Format(format!(
                "unsupported training-state version {number} (max supported {FORMAT_VERSION})"
            )));
        }
        expect(&mut tok, "run")?;
        let epochs_done = parse_num(&mut tok, "epochs done")?;
        expect(&mut tok, "rng")?;
        let mut rng_state = [0u64; 4];
        for slot in &mut rng_state {
            *slot = parse_u64_hex(&mut tok, "rng state word")?;
        }
        expect(&mut tok, "order")?;
        let order_len: usize = parse_num(&mut tok, "order length")?;
        let mut order = Vec::with_capacity(order_len);
        for _ in 0..order_len {
            order.push(parse_num(&mut tok, "order entry")?);
        }
        expect(&mut tok, "losses")?;
        let losses_len: usize = parse_num(&mut tok, "loss count")?;
        let mut epoch_losses = Vec::with_capacity(losses_len);
        for _ in 0..losses_len {
            epoch_losses.push(f64::from_bits(parse_u64_hex(&mut tok, "epoch loss")?));
        }
        expect(&mut tok, "adam")?;
        let t: u64 = parse_num(&mut tok, "adam step counter")?;
        let epoch: u32 = parse_num(&mut tok, "adam epoch counter")?;
        expect(&mut tok, "params")?;
        let param_count: usize = parse_num(&mut tok, "parameter count")?;
        let mut params = Vec::with_capacity(param_count);
        let mut adam = AdamState { t, epoch, m: Vec::new(), v: Vec::new() };
        for _ in 0..param_count {
            expect(&mut tok, "param")?;
            let name = next(&mut tok, "parameter name")?.to_owned();
            let rows: usize = parse_num(&mut tok, "row count")?;
            let cols: usize = parse_num(&mut tok, "column count")?;
            params.push((name, parse_matrix(&mut tok, rows, cols)?));
            adam.m.push(parse_matrix(&mut tok, rows, cols)?);
            adam.v.push(parse_matrix(&mut tok, rows, cols)?);
        }
        if tok.next().is_some() {
            return Err(PersistError::Format("trailing tokens after training state".into()));
        }
        Ok(Self { epochs_done, rng_state, order, epoch_losses, adam, params })
    }

    /// Writes the state atomically: serialise to `<path>.tmp`, then
    /// rename over `path`.
    pub fn save_atomic(&self, path: &Path) -> Result<(), PersistError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a state file.
    pub fn load(path: &Path) -> Result<Self, PersistError> {
        Self::from_text(&std::fs::read_to_string(path)?)
    }

    /// Validates that the state belongs to `store`'s parameter set and
    /// a run over `num_samples` samples for `total_epochs` epochs.
    pub fn validate(
        &self,
        store: &ParamStore,
        num_samples: usize,
        total_epochs: usize,
    ) -> Result<(), PersistError> {
        let stored = store.iter().count();
        if self.params.len() != stored {
            return Err(PersistError::Mismatch(format!(
                "training state has {} parameters, model has {stored}",
                self.params.len()
            )));
        }
        for ((name, value), (_, p)) in self.params.iter().zip(store.iter()) {
            if *name != p.name {
                return Err(PersistError::Mismatch(format!(
                    "expected parameter '{}', training state has '{name}'",
                    p.name
                )));
            }
            if value.shape() != p.value.shape() {
                return Err(PersistError::Mismatch(format!(
                    "parameter '{name}': shape {:?} vs training state {:?}",
                    p.value.shape(),
                    value.shape()
                )));
            }
        }
        if self.order.len() != num_samples {
            return Err(PersistError::Mismatch(format!(
                "training state covers {} samples, run has {num_samples}",
                self.order.len()
            )));
        }
        if self.epochs_done > total_epochs {
            return Err(PersistError::Mismatch(format!(
                "training state has {} completed epochs, run asks for {total_epochs}",
                self.epochs_done
            )));
        }
        if self.epoch_losses.len() != self.epochs_done {
            return Err(PersistError::Format(format!(
                "training state records {} losses for {} completed epochs",
                self.epoch_losses.len(),
                self.epochs_done
            )));
        }
        Ok(())
    }
}

fn push_hex(out: &mut String, values: &[f64]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(if i % 8 == 0 { '\n' } else { ' ' });
        }
        out.push_str(&format!("{:016x}", v.to_bits()));
    }
    if !values.is_empty() {
        out.push('\n');
    }
}

fn push_usizes(out: &mut String, values: &[usize]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(if i % 16 == 0 { '\n' } else { ' ' });
        }
        out.push_str(&format!("{v}"));
    }
    if !values.is_empty() {
        out.push('\n');
    }
}

fn next<'a>(tok: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, PersistError> {
    tok.next().ok_or_else(|| PersistError::Format(format!("training state missing {what}")))
}

fn expect<'a>(tok: &mut impl Iterator<Item = &'a str>, keyword: &str) -> Result<(), PersistError> {
    let got = next(tok, keyword)?;
    if got != keyword {
        return Err(PersistError::Format(format!("expected '{keyword}', got '{got}'")));
    }
    Ok(())
}

fn parse_num<'a, T: std::str::FromStr>(
    tok: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<T, PersistError> {
    next(tok, what)?
        .parse()
        .map_err(|_| PersistError::Format(format!("bad {what} in training state")))
}

fn parse_u64_hex<'a>(
    tok: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<u64, PersistError> {
    let t = next(tok, what)?;
    u64::from_str_radix(t, 16).map_err(|_| PersistError::Format(format!("bad {what} '{t}'")))
}

fn parse_matrix<'a>(
    tok: &mut impl Iterator<Item = &'a str>,
    rows: usize,
    cols: usize,
) -> Result<Matrix, PersistError> {
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(f64::from_bits(parse_u64_hex(tok, "matrix value")?));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> TrainState {
        TrainState {
            epochs_done: 3,
            rng_state: [1, u64::MAX, 0xDEAD_BEEF, 42],
            order: vec![2, 0, 1],
            epoch_losses: vec![0.5, 0.25, 0.1250000001],
            adam: AdamState {
                t: 9,
                epoch: 3,
                m: vec![Matrix::filled(2, 2, 0.125), Matrix::filled(1, 3, -0.5)],
                v: vec![Matrix::filled(2, 2, 1e-9), Matrix::filled(1, 3, 2.0)],
            },
            params: vec![
                ("layer.w".to_owned(), Matrix::filled(2, 2, 0.75)),
                ("layer.b".to_owned(), Matrix::filled(1, 3, -1.25e-7)),
            ],
        }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let state = sample_state();
        let restored = TrainState::from_text(&state.to_text()).unwrap();
        assert_eq!(restored.epochs_done, state.epochs_done);
        assert_eq!(restored.rng_state, state.rng_state);
        assert_eq!(restored.order, state.order);
        assert_eq!(
            restored.epoch_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            state.epoch_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(restored.adam.t, state.adam.t);
        assert_eq!(restored.adam.epoch, state.adam.epoch);
        for (a, b) in restored.adam.m.iter().zip(&state.adam.m) {
            assert_eq!(a, b);
        }
        for (a, b) in restored.adam.v.iter().zip(&state.adam.v) {
            assert_eq!(a, b);
        }
        for ((an, av), (bn, bv)) in restored.params.iter().zip(&state.params) {
            assert_eq!(an, bn);
            assert_eq!(av, bv);
        }
    }

    #[test]
    fn truncated_state_is_rejected() {
        let text = sample_state().to_text();
        let cut = &text[..text.len() * 2 / 3];
        assert!(matches!(TrainState::from_text(cut), Err(PersistError::Format(_))));
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        let mut text = sample_state().to_text();
        text.push_str("garbage\n");
        assert!(matches!(TrainState::from_text(&text), Err(PersistError::Format(_))));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let text = "gcwc-trainstate v99\n";
        assert!(matches!(TrainState::from_text(text), Err(PersistError::Format(_))));
    }

    #[test]
    fn validate_rejects_foreign_parameter_sets() {
        let state = sample_state();
        let mut store = ParamStore::new();
        store.add("layer.w", Matrix::zeros(2, 2));
        store.add("other.name", Matrix::zeros(1, 3));
        let err = state.validate(&store, 3, 10).unwrap_err();
        assert!(matches!(err, PersistError::Mismatch(_)), "{err}");
    }

    #[test]
    fn validate_rejects_sample_count_mismatch() {
        let state = sample_state();
        let mut store = ParamStore::new();
        store.add("layer.w", Matrix::zeros(2, 2));
        store.add("layer.b", Matrix::zeros(1, 3));
        assert!(state.validate(&store, 3, 10).is_ok());
        let err = state.validate(&store, 4, 10).unwrap_err();
        assert!(matches!(err, PersistError::Mismatch(_)), "{err}");
    }

    #[test]
    fn atomic_save_roundtrips_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("gcwc_trainstate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.trainstate");
        let state = sample_state();
        state.save_atomic(&path).unwrap();
        assert!(!dir.join("run.trainstate.tmp").exists());
        let restored = TrainState::load(&path).unwrap();
        assert_eq!(restored.epochs_done, state.epochs_done);
        assert_eq!(restored.rng_state, state.rng_state);
        std::fs::remove_file(&path).ok();
    }
}
