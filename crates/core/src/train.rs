//! Shared mini-batch training loop, data-parallel within each batch.
//!
//! Samples inside a mini-batch are independent — gradients only meet at
//! the batch barrier — so the loop farms samples out to scoped worker
//! threads. Determinism is preserved bit-for-bit for every thread
//! count:
//!
//! 1. every sample's RNG is seeded from the master stream *in batch
//!    order* before any worker starts, so the stream consumed never
//!    depends on scheduling;
//! 2. each worker writes a private per-sample [`GradBuffer`] (one per
//!    sample, not one per worker — float addition is non-associative,
//!    so per-worker partial sums would round differently as the worker
//!    count changed);
//! 3. buffers are merged into the [`ParamStore`] in sample-index order
//!    after the batch completes, reproducing the serial accumulation
//!    order exactly.

use gcwc_linalg::parallel::{self, Threads};
use gcwc_linalg::rng::{seeded, shuffle};
use gcwc_nn::{Adam, GradBuffer, NodeId, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::Rng;

use crate::task::TrainSample;

/// Reusable per-sample workspace: the tape that holds one sample's
/// graph and the private gradient buffer its backward pass fills.
///
/// Slots persist across batches and epochs so the steady-state training
/// step reuses the tape's pooled matrices and the buffer's gradient
/// storage instead of reallocating them per sample.
#[derive(Default)]
struct SampleSlot {
    tape: Tape,
    buffer: GradBuffer,
}

/// Per-epoch mean losses recorded during training.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean per-sample loss of each epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> Option<f64> {
        self.epoch_losses.last().copied()
    }
}

/// Runs mini-batch training: for every sample `forward_loss` builds the
/// tape and returns the scalar loss node; gradients are averaged over
/// the batch and applied with Adam.
///
/// Samples within a batch are evaluated by up to `threads` scoped
/// worker threads. Epoch losses and parameter updates are bit-identical
/// for every thread count (see the module docs); `forward_loss`
/// receives a per-sample RNG seeded from the master stream in batch
/// order, so it must derive all randomness from that argument.
#[allow(clippy::too_many_arguments)] // deliberate flat signature: one call per model, no builder worth it
pub fn run_training(
    store: &mut ParamStore,
    optim: gcwc_nn::OptimConfig,
    epochs: usize,
    batch_size: usize,
    threads: Threads,
    samples: &[TrainSample],
    rng: &mut StdRng,
    forward_loss: impl Fn(&mut Tape, &ParamStore, &TrainSample, &mut StdRng) -> NodeId + Sync,
) -> TrainReport {
    assert!(batch_size >= 1, "batch size must be positive");
    let mut report = TrainReport::default();
    if samples.is_empty() {
        return report;
    }
    let mut adam = Adam::new(store, optim);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    // Workspaces reused across batches and epochs: tapes, gradient
    // buffers, seed and loss scratch. After the first few batches the
    // loop body reaches a steady state that performs no heap
    // allocation.
    let mut slots: Vec<SampleSlot> = Vec::new();
    let mut seeds: Vec<u64> = Vec::new();
    let mut losses: Vec<f64> = Vec::new();
    for _epoch in 0..epochs {
        shuffle(rng, &mut order);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(batch_size) {
            store.zero_grads();
            // One seed per sample, drawn in batch order *before* any
            // worker runs: the master stream's consumption is the same
            // for every thread count.
            seeds.clear();
            seeds.extend(batch.iter().map(|_| rng.random::<u64>()));
            while slots.len() < batch.len() {
                slots.push(SampleSlot::default());
            }
            losses.clear();
            losses.resize(batch.len(), 0.0);
            run_batch(
                store,
                batch,
                &seeds,
                samples,
                threads,
                &mut slots[..batch.len()],
                &mut losses,
                &forward_loss,
            );
            // Fixed merge order — batch position, never worker id.
            for (loss, slot) in losses.iter().zip(&slots) {
                epoch_loss += *loss;
                slot.buffer.merge_into(store);
            }
            store.scale_grads(1.0 / batch.len() as f64);
            adam.step(store);
        }
        adam.end_epoch();
        report.epoch_losses.push(epoch_loss / samples.len() as f64);
    }
    report
}

/// Builds the tape for one sample and runs its backward pass into a
/// private buffer. Both the serial and the parallel batch path call
/// exactly this function, which is what makes them bit-identical.
fn eval_sample<F>(
    store: &ParamStore,
    sample: &TrainSample,
    seed: u64,
    slot: &mut SampleSlot,
    forward_loss: &F,
) -> f64
where
    F: Fn(&mut Tape, &ParamStore, &TrainSample, &mut StdRng) -> NodeId + Sync,
{
    slot.tape.reset();
    slot.buffer.reset();
    let mut rng = seeded(seed);
    let loss = forward_loss(&mut slot.tape, store, sample, &mut rng);
    let value = slot.tape.value(loss)[(0, 0)];
    slot.tape.backward(loss, &mut slot.buffer);
    value
}

/// Evaluates every sample of `batch`, writing each loss into `losses`
/// and each gradient into the matching slot's buffer, in batch order.
/// With more than one thread, the batch is split into contiguous
/// chunks, one per scoped worker; workers run their kernels
/// single-threaded (the thread budget is already spent on samples).
#[allow(clippy::too_many_arguments)] // internal helper mirroring run_training's flat signature
fn run_batch<F>(
    store: &ParamStore,
    batch: &[usize],
    seeds: &[u64],
    samples: &[TrainSample],
    threads: Threads,
    slots: &mut [SampleSlot],
    losses: &mut [f64],
    forward_loss: &F,
) where
    F: Fn(&mut Tape, &ParamStore, &TrainSample, &mut StdRng) -> NodeId + Sync,
{
    debug_assert_eq!(slots.len(), batch.len());
    debug_assert_eq!(losses.len(), batch.len());
    let workers = threads.get().min(batch.len());
    if workers <= 1 {
        for (k, (slot, loss)) in slots.iter_mut().zip(losses.iter_mut()).enumerate() {
            *loss = eval_sample(store, &samples[batch[k]], seeds[k], slot, forward_loss);
        }
        return;
    }
    let run_chunk = |start: usize, slots: &mut [SampleSlot], losses: &mut [f64]| {
        // Kernels run single-threaded inside workers: the thread budget
        // is already spent at the sample level.
        parallel::with_threads(1, || {
            for (k, (slot, loss)) in slots.iter_mut().zip(losses.iter_mut()).enumerate() {
                let si = batch[start + k];
                *loss = eval_sample(store, &samples[si], seeds[start + k], slot, forward_loss);
            }
        });
    };
    std::thread::scope(|scope| {
        let mut rest_slots = slots;
        let mut rest_losses = losses;
        let mut offset = 0usize;
        let mut own: Option<(usize, &mut [SampleSlot], &mut [f64])> = None;
        for w in 0..workers {
            let count = batch.len() / workers + usize::from(w < batch.len() % workers);
            let (chunk_slots, tail_slots) = rest_slots.split_at_mut(count);
            rest_slots = tail_slots;
            let (chunk_losses, tail_losses) = rest_losses.split_at_mut(count);
            rest_losses = tail_losses;
            let start = offset;
            offset += count;
            if w == 0 {
                own = Some((start, chunk_slots, chunk_losses));
            } else {
                let run_chunk = &run_chunk;
                scope.spawn(move || run_chunk(start, chunk_slots, chunk_losses));
            }
        }
        let (start, chunk_slots, chunk_losses) = own.expect("workers >= 2 implies a first chunk");
        run_chunk(start, chunk_slots, chunk_losses);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::rng::seeded;
    use gcwc_linalg::Matrix;
    use gcwc_nn::OptimConfig;
    use gcwc_traffic::Context;

    fn dummy_sample(target: f64) -> TrainSample {
        TrainSample {
            snapshot_index: 0,
            input: Matrix::filled(1, 1, target),
            label: Matrix::filled(1, 1, target),
            label_mask: vec![1.0],
            context: Context {
                time_of_day: 0,
                day_of_week: 0,
                intervals_per_day: 96,
                row_flags: vec![1.0],
            },
            history: vec![],
        }
    }

    #[test]
    fn training_reduces_loss_on_regression_toy() {
        // Learn w so that w ≈ mean of labels via MSE.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(1, 1));
        let samples: Vec<TrainSample> = vec![dummy_sample(2.0), dummy_sample(4.0)];
        let mut rng = seeded(1);
        let report = run_training(
            &mut store,
            OptimConfig { learning_rate: 0.1, ..Default::default() },
            150,
            2,
            Threads::auto(),
            &samples,
            &mut rng,
            |tape, store, sample, _| {
                let wn = tape.param(store, w);
                tape.mse_masked(wn, sample.label.clone(), Matrix::filled(1, 1, 1.0))
            },
        );
        assert_eq!(report.epoch_losses.len(), 150);
        let first = report.epoch_losses[0];
        let last = report.final_loss().unwrap();
        assert!(last < first * 0.3, "loss should drop: {first} -> {last}");
        let learned = store.value(w)[(0, 0)];
        assert!((learned - 3.0).abs() < 0.2, "w = {learned}");
    }

    #[test]
    fn empty_samples_are_a_noop() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::zeros(1, 1));
        let mut rng = seeded(2);
        let report = run_training(
            &mut store,
            OptimConfig::default(),
            5,
            4,
            Threads::auto(),
            &[],
            &mut rng,
            |tape, _, _, _| tape.constant(Matrix::zeros(1, 1)),
        );
        assert!(report.epoch_losses.is_empty());
    }

    /// A loss whose gradient depends on the per-sample RNG, so the test
    /// also proves the RNG stream is thread-count-invariant.
    fn noisy_run(threads: usize) -> (Vec<f64>, Vec<f64>) {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(2, 3, 0.4));
        let samples: Vec<TrainSample> =
            (0..7).map(|i| dummy_sample(i as f64 * 0.5 - 1.0)).collect();
        let mut rng = seeded(99);
        let report = run_training(
            &mut store,
            OptimConfig { learning_rate: 0.05, ..Default::default() },
            4,
            3,
            Threads::fixed(threads),
            &samples,
            &mut rng,
            |tape, store, sample, rng| {
                use rand::Rng;
                let wn = tape.param(store, w);
                let jitter = rng.random::<f64>() * 0.1;
                let scaled = tape.scale(wn, 1.0 + jitter);
                let target = Matrix::filled(2, 3, sample.label[(0, 0)]);
                tape.mse_masked(scaled, target, Matrix::filled(2, 3, 1.0))
            },
        );
        (report.epoch_losses, store.value(w).as_slice().to_vec())
    }

    #[test]
    fn training_is_bit_identical_across_thread_counts() {
        let (serial_losses, serial_w) = noisy_run(1);
        for threads in [2, 3, 4, 8] {
            let (losses, w) = noisy_run(threads);
            assert_eq!(
                losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                serial_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                "epoch losses diverged at {threads} threads"
            );
            assert_eq!(
                w.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                serial_w.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "final weights diverged at {threads} threads"
            );
        }
    }
}
