//! Shared mini-batch training loop, data-parallel within each batch.
//!
//! Samples inside a mini-batch are independent — gradients only meet at
//! the batch barrier — so the loop farms samples out to scoped worker
//! threads. Determinism is preserved bit-for-bit for every thread
//! count:
//!
//! 1. every sample's RNG is seeded from the master stream *in batch
//!    order* before any worker starts, so the stream consumed never
//!    depends on scheduling;
//! 2. each worker writes a private per-sample [`GradBuffer`] (one per
//!    sample, not one per worker — float addition is non-associative,
//!    so per-worker partial sums would round differently as the worker
//!    count changed);
//! 3. buffers are merged into the [`ParamStore`] in sample-index order
//!    after the batch completes, reproducing the serial accumulation
//!    order exactly.
//!
//! # Divergence guard
//!
//! Debug builds assert non-finite tape values at the op that produces
//! them; release builds — where real training runs — instead get a
//! per-batch guard: a batch whose loss, merged gradient, or post-step
//! parameters are non-finite is **rolled back** (the optimizer step is
//! undone from a snapshot taken just before it), the batch is retried
//! with freshly drawn per-sample seeds, and after
//! [`TrainControl::max_bad_batches`] consecutive failures the run
//! aborts with [`TrainError::Diverged`] instead of silently training a
//! poisoned model. Clean batches take the exact same numeric path as
//! before the guard existed — the checks are pure reads and consume no
//! randomness — so guarded training is bit-identical to unguarded
//! training whenever nothing diverges.
//!
//! # Checkpoint and resume
//!
//! With a [`CheckpointPlan`], the loop atomically persists a
//! [`TrainState`] (parameters, Adam moments, master RNG state, shuffle
//! order, epoch losses) every `every_epochs` epoch boundaries; a killed
//! run restarted with `resume` reloads that state and continues the
//! exact RNG stream and shuffle order, making the resumed run
//! bit-identical to an uninterrupted one.

use std::path::PathBuf;

use gcwc_linalg::parallel::{self, Threads};
use gcwc_linalg::rng::{seeded, shuffle};
use gcwc_linalg::Matrix;
use gcwc_nn::{Adam, AdamState, GradBuffer, NodeId, ParamStore, PersistError, Tape};
use rand::rngs::StdRng;
use rand::Rng;

use crate::task::TrainSample;
use crate::trainstate::TrainState;

/// Failpoint site names evaluated by the training loop (see
/// `gcwc_failpoint`; inert unless the `failpoints` feature is enabled
/// *and* the site is armed).
pub mod failsite {
    /// Evaluated after each applied optimizer step: a triggered site
    /// marks the update as diverged (as a non-finite step would),
    /// exercising the rollback-and-retry path deterministically.
    pub const TRAIN_STEP: &str = "train.step";
    /// Training-state checkpoint write: a triggered site fails the
    /// write with an injected I/O error.
    pub const CHECKPOINT_SAVE: &str = "train.checkpoint.save";
}

/// Reusable per-sample workspace: the tape that holds one sample's
/// graph and the private gradient buffer its backward pass fills.
///
/// Slots persist across batches and epochs so the steady-state training
/// step reuses the tape's pooled matrices and the buffer's gradient
/// storage instead of reallocating them per sample.
#[derive(Default)]
struct SampleSlot {
    tape: Tape,
    buffer: GradBuffer,
}

/// Per-epoch mean losses recorded during training.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean per-sample loss of each epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> Option<f64> {
        self.epoch_losses.last().copied()
    }
}

/// Why a training run aborted.
#[derive(Debug)]
pub enum TrainError {
    /// One mini-batch produced a non-finite loss, gradient, or
    /// parameter on [`TrainControl::max_bad_batches`] consecutive
    /// attempts; the store holds the last good (rolled-back) state.
    Diverged {
        /// Epoch in which the batch diverged.
        epoch: usize,
        /// Index of the diverging batch within the epoch.
        batch: usize,
        /// Consecutive failed attempts at that batch.
        bad_batches: u32,
    },
    /// Reading or writing the training-state checkpoint failed.
    Checkpoint(PersistError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Diverged { epoch, batch, bad_batches } => write!(
                f,
                "training diverged: batch {batch} of epoch {epoch} produced non-finite \
                 values on {bad_batches} consecutive attempts"
            ),
            TrainError::Checkpoint(e) => write!(f, "training checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<PersistError> for TrainError {
    fn from(e: PersistError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Consecutive bad attempts at one batch before training aborts.
pub const DEFAULT_MAX_BAD_BATCHES: u32 = 3;

/// Periodic training-state persistence for checkpoint-and-resume.
#[derive(Clone, Debug)]
pub struct CheckpointPlan {
    /// Training-state file (atomically replaced at each write).
    pub path: PathBuf,
    /// Write the state every this many completed epochs (the final
    /// epoch is always written). Values below 1 behave as 1.
    pub every_epochs: usize,
    /// When the state file exists, restore it and continue the run
    /// from the recorded epoch instead of starting over.
    pub resume: bool,
}

impl CheckpointPlan {
    /// Checkpoints to `path` every `every_epochs` epochs, resuming from
    /// an existing state file.
    pub fn resuming(path: impl Into<PathBuf>, every_epochs: usize) -> Self {
        Self { path: path.into(), every_epochs, resume: true }
    }
}

/// Robustness knobs of [`run_training_guarded`].
#[derive(Clone, Debug)]
pub struct TrainControl {
    /// Consecutive bad attempts at one batch before
    /// [`TrainError::Diverged`] aborts the run.
    pub max_bad_batches: u32,
    /// Optional periodic training-state persistence.
    pub checkpoint: Option<CheckpointPlan>,
}

impl Default for TrainControl {
    fn default() -> Self {
        Self { max_bad_batches: DEFAULT_MAX_BAD_BATCHES, checkpoint: None }
    }
}

/// Schedule of a warm-start fine-tune pass: a short run that continues
/// from already-trained parameters on fresh data, rather than a full
/// from-scratch fit. `epochs` and `lr_scale` override the model's
/// configured epoch count and scale its learning rate for the duration
/// of the pass only — the model's own config is untouched afterwards,
/// so a later full `fit` behaves exactly as before.
#[derive(Clone, Copy, Debug)]
pub struct FineTunePlan {
    /// Epochs of the fine-tune pass (overrides `ModelConfig::epochs`).
    pub epochs: usize,
    /// Multiplier on the configured learning rate (incremental
    /// refreshes typically run cooler than the base fit, e.g. `0.5`).
    pub lr_scale: f64,
}

impl Default for FineTunePlan {
    fn default() -> Self {
        Self { epochs: 2, lr_scale: 0.5 }
    }
}

/// Runs mini-batch training: for every sample `forward_loss` builds the
/// tape and returns the scalar loss node; gradients are averaged over
/// the batch and applied with Adam.
///
/// Samples within a batch are evaluated by up to `threads` scoped
/// worker threads. Epoch losses and parameter updates are bit-identical
/// for every thread count (see the module docs); `forward_loss`
/// receives a per-sample RNG seeded from the master stream in batch
/// order, so it must derive all randomness from that argument.
#[allow(clippy::too_many_arguments)] // deliberate flat signature: one call per model, no builder worth it
pub fn run_training(
    store: &mut ParamStore,
    optim: gcwc_nn::OptimConfig,
    epochs: usize,
    batch_size: usize,
    threads: Threads,
    samples: &[TrainSample],
    rng: &mut StdRng,
    forward_loss: impl Fn(&mut Tape, &ParamStore, &TrainSample, &mut StdRng) -> NodeId + Sync,
) -> Result<TrainReport, TrainError> {
    run_training_guarded(
        store,
        optim,
        epochs,
        batch_size,
        threads,
        samples,
        rng,
        &TrainControl::default(),
        forward_loss,
    )
}

/// [`run_training`] with explicit robustness controls: the divergence
/// guard threshold and an optional checkpoint-and-resume plan (see the
/// module docs). With `TrainControl::default()` this is exactly
/// [`run_training`].
#[allow(clippy::too_many_arguments)] // deliberate flat signature, matching run_training
pub fn run_training_guarded(
    store: &mut ParamStore,
    optim: gcwc_nn::OptimConfig,
    epochs: usize,
    batch_size: usize,
    threads: Threads,
    samples: &[TrainSample],
    rng: &mut StdRng,
    control: &TrainControl,
    forward_loss: impl Fn(&mut Tape, &ParamStore, &TrainSample, &mut StdRng) -> NodeId + Sync,
) -> Result<TrainReport, TrainError> {
    assert!(batch_size >= 1, "batch size must be positive");
    assert!(control.max_bad_batches >= 1, "max_bad_batches must be positive");
    let mut report = TrainReport::default();
    if samples.is_empty() {
        return Ok(report);
    }
    let mut adam = Adam::new(store, optim);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut start_epoch = 0usize;
    if let Some(plan) = &control.checkpoint {
        if plan.resume && plan.path.exists() {
            let state = TrainState::load(&plan.path)?;
            state.validate(store, samples.len(), epochs)?;
            for ((_, p), (_, value)) in store.iter_mut().zip(&state.params) {
                p.value.copy_from(value);
            }
            adam.restore_state(&state.adam);
            *rng = StdRng::from_state(state.rng_state);
            order.copy_from_slice(&state.order);
            report.epoch_losses.clone_from(&state.epoch_losses);
            start_epoch = state.epochs_done;
        }
    }
    // Workspaces reused across batches and epochs: tapes, gradient
    // buffers, seed and loss scratch. After the first few batches the
    // loop body reaches a steady state that performs no heap
    // allocation.
    let mut slots: Vec<SampleSlot> = Vec::new();
    let mut seeds: Vec<u64> = Vec::new();
    let mut losses: Vec<f64> = Vec::new();
    // Rollback snapshot: parameter values and optimizer state captured
    // immediately before each optimizer step, into buffers that persist
    // across batches (the steady-state copy allocates nothing).
    let mut snap_params: Vec<Matrix> = Vec::new();
    let mut snap_adam = AdamState::default();
    for epoch in start_epoch..epochs {
        shuffle(rng, &mut order);
        let mut epoch_loss = 0.0;
        for (batch_index, batch) in order.chunks(batch_size).enumerate() {
            let mut bad_batches = 0u32;
            loop {
                store.zero_grads();
                // One seed per sample, drawn in batch order *before* any
                // worker runs: the master stream's consumption is the same
                // for every thread count. A retried batch draws fresh
                // seeds, so transient bad draws are not replayed.
                seeds.clear();
                seeds.extend(batch.iter().map(|_| rng.random::<u64>()));
                while slots.len() < batch.len() {
                    slots.push(SampleSlot::default());
                }
                losses.clear();
                losses.resize(batch.len(), 0.0);
                run_batch(
                    store,
                    batch,
                    &seeds,
                    samples,
                    threads,
                    &mut slots[..batch.len()],
                    &mut losses,
                    &forward_loss,
                );
                // Fixed merge order — batch position, never worker id.
                let mut batch_loss = 0.0;
                for (loss, slot) in losses.iter().zip(&slots) {
                    batch_loss += *loss;
                    slot.buffer.merge_into(store);
                }
                store.scale_grads(1.0 / batch.len() as f64);
                // Pre-step guard: a non-finite loss or gradient means
                // the update must not be applied at all. Nothing has
                // mutated parameters yet, so no rollback is needed —
                // the next attempt re-zeroes the gradients.
                if losses.iter().all(|l| l.is_finite()) && grads_finite(store) {
                    snapshot_params(store, &mut snap_params);
                    adam.save_state(&mut snap_adam);
                    adam.step(store);
                    // Post-step guard: even finite gradients can push a
                    // parameter over the edge; the TRAIN_STEP failpoint
                    // poisons an otherwise-healthy step the same way.
                    if params_finite(store) && !gcwc_failpoint::triggered(failsite::TRAIN_STEP) {
                        epoch_loss += batch_loss;
                        break;
                    }
                    restore_params(store, &snap_params);
                    adam.restore_state(&snap_adam);
                }
                bad_batches += 1;
                if bad_batches >= control.max_bad_batches {
                    return Err(TrainError::Diverged { epoch, batch: batch_index, bad_batches });
                }
            }
        }
        adam.end_epoch();
        report.epoch_losses.push(epoch_loss / samples.len() as f64);
        if let Some(plan) = &control.checkpoint {
            let done = epoch + 1;
            if done % plan.every_epochs.max(1) == 0 || done == epochs {
                save_checkpoint(plan, store, &adam, rng, &order, &report, done)?;
            }
        }
    }
    Ok(report)
}

/// Persists the training state at an epoch boundary (atomic write).
fn save_checkpoint(
    plan: &CheckpointPlan,
    store: &ParamStore,
    adam: &Adam,
    rng: &StdRng,
    order: &[usize],
    report: &TrainReport,
    epochs_done: usize,
) -> Result<(), TrainError> {
    if gcwc_failpoint::triggered(failsite::CHECKPOINT_SAVE) {
        return Err(TrainError::Checkpoint(PersistError::File(std::io::Error::other(format!(
            "failpoint {}: injected checkpoint write failure",
            failsite::CHECKPOINT_SAVE
        )))));
    }
    let mut adam_state = AdamState::default();
    adam.save_state(&mut adam_state);
    let state = TrainState {
        epochs_done,
        rng_state: rng.state(),
        order: order.to_vec(),
        epoch_losses: report.epoch_losses.clone(),
        adam: adam_state,
        params: store.iter().map(|(_, p)| (p.name.clone(), p.value.clone())).collect(),
    };
    state.save_atomic(&plan.path)?;
    Ok(())
}

/// True when every accumulated gradient entry is finite.
fn grads_finite(store: &ParamStore) -> bool {
    store.iter().all(|(_, p)| p.grad.as_slice().iter().all(|v| v.is_finite()))
}

/// True when every parameter value is finite.
fn params_finite(store: &ParamStore) -> bool {
    store.iter().all(|(_, p)| p.value.as_slice().iter().all(|v| v.is_finite()))
}

/// Copies parameter values into `dst`, reusing its buffers after the
/// first batch (shapes never change within a run).
fn snapshot_params(store: &ParamStore, dst: &mut Vec<Matrix>) {
    if dst.is_empty() {
        dst.extend(store.iter().map(|(_, p)| p.value.clone()));
    } else {
        for (m, (_, p)) in dst.iter_mut().zip(store.iter()) {
            m.copy_from(&p.value);
        }
    }
}

/// Restores parameter values captured by [`snapshot_params`].
fn restore_params(store: &mut ParamStore, src: &[Matrix]) {
    for ((_, p), m) in store.iter_mut().zip(src) {
        p.value.copy_from(m);
    }
}

/// Builds the tape for one sample and runs its backward pass into a
/// private buffer. Both the serial and the parallel batch path call
/// exactly this function, which is what makes them bit-identical.
fn eval_sample<F>(
    store: &ParamStore,
    sample: &TrainSample,
    seed: u64,
    slot: &mut SampleSlot,
    forward_loss: &F,
) -> f64
where
    F: Fn(&mut Tape, &ParamStore, &TrainSample, &mut StdRng) -> NodeId + Sync,
{
    slot.tape.reset();
    slot.buffer.reset();
    let mut rng = seeded(seed);
    let loss = forward_loss(&mut slot.tape, store, sample, &mut rng);
    let value = slot.tape.value(loss)[(0, 0)];
    slot.tape.backward(loss, &mut slot.buffer);
    value
}

/// Evaluates every sample of `batch`, writing each loss into `losses`
/// and each gradient into the matching slot's buffer, in batch order.
/// With more than one thread, the batch is split into contiguous
/// chunks, one per scoped worker; workers run their kernels
/// single-threaded (the thread budget is already spent on samples).
#[allow(clippy::too_many_arguments)] // internal helper mirroring run_training's flat signature
fn run_batch<F>(
    store: &ParamStore,
    batch: &[usize],
    seeds: &[u64],
    samples: &[TrainSample],
    threads: Threads,
    slots: &mut [SampleSlot],
    losses: &mut [f64],
    forward_loss: &F,
) where
    F: Fn(&mut Tape, &ParamStore, &TrainSample, &mut StdRng) -> NodeId + Sync,
{
    debug_assert_eq!(slots.len(), batch.len());
    debug_assert_eq!(losses.len(), batch.len());
    let workers = threads.get().min(batch.len());
    if workers <= 1 {
        for (k, (slot, loss)) in slots.iter_mut().zip(losses.iter_mut()).enumerate() {
            *loss = eval_sample(store, &samples[batch[k]], seeds[k], slot, forward_loss);
        }
        return;
    }
    let run_chunk = |start: usize, slots: &mut [SampleSlot], losses: &mut [f64]| {
        // Kernels run single-threaded inside workers: the thread budget
        // is already spent at the sample level.
        parallel::with_threads(1, || {
            for (k, (slot, loss)) in slots.iter_mut().zip(losses.iter_mut()).enumerate() {
                let si = batch[start + k];
                *loss = eval_sample(store, &samples[si], seeds[start + k], slot, forward_loss);
            }
        });
    };
    std::thread::scope(|scope| {
        let mut rest_slots = slots;
        let mut rest_losses = losses;
        let mut offset = 0usize;
        let mut own: Option<(usize, &mut [SampleSlot], &mut [f64])> = None;
        for w in 0..workers {
            let count = batch.len() / workers + usize::from(w < batch.len() % workers);
            let (chunk_slots, tail_slots) = rest_slots.split_at_mut(count);
            rest_slots = tail_slots;
            let (chunk_losses, tail_losses) = rest_losses.split_at_mut(count);
            rest_losses = tail_losses;
            let start = offset;
            offset += count;
            if w == 0 {
                own = Some((start, chunk_slots, chunk_losses));
            } else {
                let run_chunk = &run_chunk;
                scope.spawn(move || run_chunk(start, chunk_slots, chunk_losses));
            }
        }
        let (start, chunk_slots, chunk_losses) = own.expect("workers >= 2 implies a first chunk");
        run_chunk(start, chunk_slots, chunk_losses);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::rng::seeded;
    use gcwc_linalg::Matrix;
    use gcwc_nn::OptimConfig;
    use gcwc_traffic::Context;

    fn dummy_sample(target: f64) -> TrainSample {
        TrainSample {
            snapshot_index: 0,
            input: Matrix::filled(1, 1, target),
            label: Matrix::filled(1, 1, target),
            label_mask: vec![1.0],
            context: Context {
                time_of_day: 0,
                day_of_week: 0,
                intervals_per_day: 96,
                row_flags: vec![1.0],
            },
            history: vec![],
        }
    }

    #[test]
    fn training_reduces_loss_on_regression_toy() {
        // Learn w so that w ≈ mean of labels via MSE.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(1, 1));
        let samples: Vec<TrainSample> = vec![dummy_sample(2.0), dummy_sample(4.0)];
        let mut rng = seeded(1);
        let report = run_training(
            &mut store,
            OptimConfig { learning_rate: 0.1, ..Default::default() },
            150,
            2,
            Threads::auto(),
            &samples,
            &mut rng,
            |tape, store, sample, _| {
                let wn = tape.param(store, w);
                tape.mse_masked(wn, sample.label.clone(), Matrix::filled(1, 1, 1.0))
            },
        )
        .unwrap();
        assert_eq!(report.epoch_losses.len(), 150);
        let first = report.epoch_losses[0];
        let last = report.final_loss().unwrap();
        assert!(last < first * 0.3, "loss should drop: {first} -> {last}");
        let learned = store.value(w)[(0, 0)];
        assert!((learned - 3.0).abs() < 0.2, "w = {learned}");
    }

    #[test]
    fn empty_samples_are_a_noop() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::zeros(1, 1));
        let mut rng = seeded(2);
        let report = run_training(
            &mut store,
            OptimConfig::default(),
            5,
            4,
            Threads::auto(),
            &[],
            &mut rng,
            |tape, _, _, _| tape.constant(Matrix::zeros(1, 1)),
        )
        .unwrap();
        assert!(report.epoch_losses.is_empty());
    }

    /// A loss whose gradient depends on the per-sample RNG, so the test
    /// also proves the RNG stream is thread-count-invariant.
    fn noisy_run(threads: usize) -> (Vec<f64>, Vec<f64>) {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(2, 3, 0.4));
        let samples: Vec<TrainSample> =
            (0..7).map(|i| dummy_sample(i as f64 * 0.5 - 1.0)).collect();
        let mut rng = seeded(99);
        let report = run_training(
            &mut store,
            OptimConfig { learning_rate: 0.05, ..Default::default() },
            4,
            3,
            Threads::fixed(threads),
            &samples,
            &mut rng,
            |tape, store, sample, rng| {
                use rand::Rng;
                let wn = tape.param(store, w);
                let jitter = rng.random::<f64>() * 0.1;
                let scaled = tape.scale(wn, 1.0 + jitter);
                let target = Matrix::filled(2, 3, sample.label[(0, 0)]);
                tape.mse_masked(scaled, target, Matrix::filled(2, 3, 1.0))
            },
        )
        .unwrap();
        (report.epoch_losses, store.value(w).as_slice().to_vec())
    }

    #[test]
    fn training_is_bit_identical_across_thread_counts() {
        let (serial_losses, serial_w) = noisy_run(1);
        for threads in [2, 3, 4, 8] {
            let (losses, w) = noisy_run(threads);
            assert_eq!(
                losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                serial_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                "epoch losses diverged at {threads} threads"
            );
            assert_eq!(
                w.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                serial_w.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "final weights diverged at {threads} threads"
            );
        }
    }

    /// Divergence-guard tests inject bad optimizer steps through the
    /// `train.step` failpoint (non-finite values cannot flow through
    /// the tape in debug builds — its ops assert finiteness — which is
    /// exactly why the release-mode guard exists). The failpoint
    /// registry is process-global, so these tests serialise on a mutex
    /// and always disarm their sites before releasing it.
    #[cfg(feature = "failpoints")]
    mod guard {
        use super::*;
        use std::sync::Mutex;

        static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

        fn toy_run(control: &TrainControl) -> Result<(TrainReport, f64), TrainError> {
            let mut store = ParamStore::new();
            let w = store.add("w", Matrix::zeros(1, 1));
            let samples: Vec<TrainSample> = vec![dummy_sample(2.0), dummy_sample(4.0)];
            let mut rng = seeded(1);
            let report = run_training_guarded(
                &mut store,
                OptimConfig { learning_rate: 0.1, ..Default::default() },
                60,
                2,
                Threads::fixed(1),
                &samples,
                &mut rng,
                control,
                |tape, store, sample, _| {
                    let wn = tape.param(store, w);
                    tape.mse_masked(wn, sample.label.clone(), Matrix::filled(1, 1, 1.0))
                },
            )?;
            Ok((report, store.value(w)[(0, 0)]))
        }

        #[test]
        fn bad_steps_roll_back_and_training_recovers() {
            let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            gcwc_failpoint::configure(failsite::TRAIN_STEP, "2*err->off").unwrap();
            let result = toy_run(&TrainControl::default());
            gcwc_failpoint::remove(failsite::TRAIN_STEP);
            let (report, w) = result.expect("two bad attempts are under the threshold");
            assert_eq!(report.epoch_losses.len(), 60);
            assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
            assert!(w.is_finite());
            // The guard retried its way past the injected failures and
            // still learned the toy regression target.
            assert!((w - 3.0).abs() < 0.5, "w = {w}");
        }

        #[test]
        fn persistent_divergence_aborts_with_typed_error() {
            let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            gcwc_failpoint::configure(failsite::TRAIN_STEP, "err").unwrap();
            let result = toy_run(&TrainControl::default());
            gcwc_failpoint::remove(failsite::TRAIN_STEP);
            match result {
                Err(TrainError::Diverged { epoch, batch, bad_batches }) => {
                    assert_eq!((epoch, batch), (0, 0));
                    assert_eq!(bad_batches, DEFAULT_MAX_BAD_BATCHES);
                }
                other => panic!("expected Diverged, got {other:?}"),
            }
        }

        #[test]
        fn checkpoint_write_failure_is_a_typed_error() {
            let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            gcwc_failpoint::configure(failsite::CHECKPOINT_SAVE, "err").unwrap();
            let dir = std::env::temp_dir().join("gcwc_train_guard_test");
            std::fs::create_dir_all(&dir).unwrap();
            let control = TrainControl {
                checkpoint: Some(CheckpointPlan {
                    path: dir.join("guard.trainstate"),
                    every_epochs: 1,
                    resume: false,
                }),
                ..TrainControl::default()
            };
            let result = toy_run(&control);
            gcwc_failpoint::remove(failsite::CHECKPOINT_SAVE);
            assert!(matches!(result, Err(TrainError::Checkpoint(_))), "{result:?}");
        }
    }
}
