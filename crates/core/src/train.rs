//! Shared mini-batch training loop.

use gcwc_linalg::rng::shuffle;
use gcwc_nn::{Adam, NodeId, ParamStore, Tape};
use rand::rngs::StdRng;

use crate::task::TrainSample;

/// Per-epoch mean losses recorded during training.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean per-sample loss of each epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> Option<f64> {
        self.epoch_losses.last().copied()
    }
}

/// Runs mini-batch training: for every sample `forward_loss` builds the
/// tape and returns the scalar loss node; gradients are averaged over
/// the batch and applied with Adam.
pub fn run_training(
    store: &mut ParamStore,
    optim: gcwc_nn::OptimConfig,
    epochs: usize,
    batch_size: usize,
    samples: &[TrainSample],
    rng: &mut StdRng,
    mut forward_loss: impl FnMut(&mut Tape, &ParamStore, &TrainSample, &mut StdRng) -> NodeId,
) -> TrainReport {
    assert!(batch_size >= 1, "batch size must be positive");
    let mut report = TrainReport::default();
    if samples.is_empty() {
        return report;
    }
    let mut adam = Adam::new(store, optim);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    for _epoch in 0..epochs {
        shuffle(rng, &mut order);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(batch_size) {
            store.zero_grads();
            for &si in batch {
                let mut tape = Tape::new();
                let loss = forward_loss(&mut tape, store, &samples[si], rng);
                epoch_loss += tape.value(loss)[(0, 0)];
                tape.backward(loss, store);
            }
            store.scale_grads(1.0 / batch.len() as f64);
            adam.step(store);
        }
        adam.end_epoch();
        report.epoch_losses.push(epoch_loss / samples.len() as f64);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::rng::seeded;
    use gcwc_linalg::Matrix;
    use gcwc_nn::OptimConfig;
    use gcwc_traffic::Context;

    fn dummy_sample(target: f64) -> TrainSample {
        TrainSample {
            snapshot_index: 0,
            input: Matrix::filled(1, 1, target),
            label: Matrix::filled(1, 1, target),
            label_mask: vec![1.0],
            context: Context {
                time_of_day: 0,
                day_of_week: 0,
                intervals_per_day: 96,
                row_flags: vec![1.0],
            },
            history: vec![],
        }
    }

    #[test]
    fn training_reduces_loss_on_regression_toy() {
        // Learn w so that w ≈ mean of labels via MSE.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(1, 1));
        let samples: Vec<TrainSample> = vec![dummy_sample(2.0), dummy_sample(4.0)];
        let mut rng = seeded(1);
        let report = run_training(
            &mut store,
            OptimConfig { learning_rate: 0.1, ..Default::default() },
            150,
            2,
            &samples,
            &mut rng,
            |tape, store, sample, _| {
                let wn = tape.param(store, w);
                tape.mse_masked(wn, sample.label.clone(), Matrix::filled(1, 1, 1.0))
            },
        );
        assert_eq!(report.epoch_losses.len(), 150);
        let first = report.epoch_losses[0];
        let last = report.final_loss().unwrap();
        assert!(last < first * 0.3, "loss should drop: {first} -> {last}");
        let learned = store.value(w)[(0, 0)];
        assert!((learned - 3.0).abs() < 0.2, "w = {learned}");
    }

    #[test]
    fn empty_samples_are_a_noop() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::zeros(1, 1));
        let mut rng = seeded(2);
        let report = run_training(
            &mut store,
            OptimConfig::default(),
            5,
            4,
            &[],
            &mut rng,
            |tape, _, _, _| tape.constant(Matrix::zeros(1, 1)),
        );
        assert!(report.epoch_losses.is_empty());
    }
}
