//! # gcwc
//!
//! The paper's primary contribution: **Graph Convolutional Weight
//! Completion** (GCWC, §IV) and its context-aware extension
//! (**A-GCWC**, §V), together with the task definitions (Estimation /
//! Prediction / Average, §VI-A.3), Table III model configurations, and
//! the shared training loop.
//!
//! ```
//! use gcwc::{GcwcModel, ModelConfig, CompletionModel, build_samples, TaskKind};
//! use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};
//!
//! let hw = generators::highway_tollgate(1);
//! let sim = SimConfig { days: 1, intervals_per_day: 8, ..Default::default() };
//! let data = simulate(&hw, HistogramSpec::hist8(), &sim);
//! let dataset = data.to_dataset(0.5, 5, 42);
//! let idx: Vec<usize> = (0..dataset.len()).collect();
//! let samples = build_samples(&dataset, &idx, TaskKind::Estimation, 0);
//!
//! let cfg = ModelConfig::hw_hist().with_epochs(1);
//! let mut model = GcwcModel::new(&hw.graph, 8, cfg, 7);
//! model.fit(&samples);
//! let completed = model.predict(&samples[0]); // n × m, every row a histogram
//! assert_eq!(completed.rows(), 24);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod infer;
pub mod model;
pub mod task;
pub mod train;
pub mod trainstate;

pub use config::{ConvLayer, CpCnnConfig, ModelConfig, OutputKind};
pub use infer::{InferRequest, InferWorkspace};
pub use model::{shard_seed, AGcwcModel, GcwcModel, ShardModel, ShardedModel};
pub use task::{build_samples, CompletionModel, TaskKind, TrainSample, MAX_SPEED};
pub use train::{CheckpointPlan, FineTunePlan, TrainControl, TrainError, TrainReport};
pub use trainstate::TrainState;
