//! The GCWC and A-GCWC models.

pub mod agcwc;
pub mod encoder;
pub mod gcwc;

pub use agcwc::AGcwcModel;
pub use encoder::Encoder;
pub use gcwc::GcwcModel;
