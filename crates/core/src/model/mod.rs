//! The GCWC and A-GCWC models.

pub mod agcwc;
pub mod encoder;
pub mod gcwc;
pub mod sharded;

pub use agcwc::AGcwcModel;
pub use encoder::Encoder;
pub use gcwc::GcwcModel;
pub use sharded::{shard_seed, ShardModel, ShardedModel};
