//! The shared graph-convolutional encoder/decoder of GCWC and A-GCWC
//! (paper §IV).
//!
//! Per bucket column `w_{·j}` of the input matrix, the encoder applies a
//! stack of Chebyshev graph convolutions with tanh activations and graph
//! max-pooling over Graclus clusters (the auto-encoder's *encoding*),
//! then a fully connected decoder shared across buckets maps the pooled
//! features back to one value per edge (the *decoding*). Assembling the
//! per-bucket outputs yields the logit matrix `Z ∈ R^{n×m}`.

use std::sync::Arc;

use gcwc_graph::{ConvPlan, EdgeGraph, PolyBasis, PoolingMap, StageSpec};
use gcwc_linalg::Matrix;
use gcwc_nn::{Dense, NodeId, ParamId, ParamStore, Tape};
use rand::rngs::StdRng;

use crate::config::{ModelConfig, OutputKind};
use crate::infer::InferWorkspace;

/// One graph-convolution stage with its basis, filters and pooling map.
struct EncoderLayer {
    basis: Arc<dyn PolyBasis>,
    /// `thetas[k]` is the `c_in × c_out` mixing matrix of tap `k`.
    thetas: Vec<ParamId>,
    bias: ParamId,
    pool: Option<Arc<PoolingMap>>,
    out_nodes: usize,
    out_filters: usize,
}

/// The graph-convolutional encoder + per-bucket FC decoder.
pub struct Encoder {
    layers: Vec<EncoderLayer>,
    fc: Dense,
    n: usize,
    m: usize,
    dropout: f64,
    output: OutputKind,
    /// Plan-time kernel tier ([`ConvPlan::kernel_tier`]), installed as
    /// the default tier around forward passes. Bit-identical to naive,
    /// so it only affects speed, never results or checkpoints.
    kernel_tier: gcwc_linalg::KernelTier,
}

impl Encoder {
    /// Builds the encoder for `graph` with `m` histogram buckets.
    pub fn new(
        graph: &EdgeGraph,
        m: usize,
        cfg: &ModelConfig,
        store: &mut ParamStore,
        rng: &mut StdRng,
    ) -> Self {
        let n = graph.num_nodes();
        // The (basis, pooling) ladder is built by the shared ConvPlan
        // constructor; only the parameters are created here, in the
        // same order as before, so the RNG stream and checkpoint
        // layout are unchanged.
        let specs: Vec<StageSpec> = cfg
            .conv_layers
            .iter()
            .map(|lc| StageSpec { cheb_order: lc.cheb_order, pool: lc.pool })
            .collect();
        let plan = ConvPlan::build(graph.adjacency(), &specs);
        let kernel_tier = plan.kernel_tier();
        let mut c_in = 1usize;
        let mut layers = Vec::with_capacity(cfg.conv_layers.len());
        for ((li, lc), stage) in cfg.conv_layers.iter().enumerate().zip(plan.into_stages()) {
            let thetas = (0..lc.cheb_order)
                .map(|k| {
                    store.add(
                        format!("conv{li}.theta{k}"),
                        gcwc_nn::init::glorot_uniform(rng, c_in, lc.filters),
                    )
                })
                .collect();
            let bias = store.add(format!("conv{li}.bias"), Matrix::zeros(1, lc.filters));
            let basis: Arc<dyn PolyBasis> = stage.basis;
            layers.push(EncoderLayer {
                basis,
                thetas,
                bias,
                pool: stage.pool,
                out_nodes: stage.out_nodes,
                out_filters: lc.filters,
            });
            c_in = lc.filters;
        }
        let last = layers.last().expect("at least one conv layer");
        let fc_in = last.out_nodes * last.out_filters;
        let fc = Dense::new(store, rng, "fc", fc_in, n);
        Self { layers, fc, n, m, dropout: cfg.dropout, output: cfg.output, kernel_tier }
    }

    /// Number of edges `n`.
    pub fn num_edges(&self) -> usize {
        self.n
    }

    /// Number of buckets `m`.
    pub fn num_buckets(&self) -> usize {
        self.m
    }

    /// Output head kind.
    pub fn output_kind(&self) -> OutputKind {
        self.output
    }

    /// Computes the logit matrix `Z ∈ R^{n×m}` from an input weight
    /// matrix.
    ///
    /// All `m` bucket columns run through the conv stack in one batched
    /// pass (grouped graph convolutions with filters shared across
    /// buckets, exactly the paper's per-column filter application); the
    /// per-bucket FC decoder then maps each bucket's pooled features to
    /// `n` logits.
    pub fn logits(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        input: &Matrix,
        train: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        assert_eq!(input.shape(), (self.n, self.m), "input shape mismatch");
        gcwc_linalg::tile::with_default_tier(self.kernel_tier, || {
            self.logits_inner(tape, store, input, train, rng)
        })
    }

    fn logits_inner(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        input: &Matrix,
        train: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        // Group-major layout: group g (bucket g) holds c channels.
        let mut x = tape.constant_copied(input);
        for layer in &self.layers {
            let mut thetas = tape.take_id_buf();
            thetas.extend(layer.thetas.iter().map(|&t| tape.param(store, t)));
            x = tape.poly_conv_grouped(x, &thetas, Arc::clone(&layer.basis), self.m);
            tape.give_id_buf(thetas);
            let bias = tape.param(store, layer.bias);
            let tiled = tape.tile_cols(bias, self.m);
            x = tape.add_row_broadcast(x, tiled);
            x = tape.tanh(x);
            if let Some(pool) = &layer.pool {
                x = tape.graph_max_pool(x, Arc::clone(pool));
            }
        }
        // All m bucket groups share the decoder weight, so batch them
        // as rows of one matmul: the weight matrix is streamed once per
        // pass instead of once per bucket (it is far larger than the
        // activations, so this is the memory-bandwidth win). Row `g` of
        // the batched product equals the per-bucket FC exactly (matmul
        // computes each output row independently), and the row-major
        // dropout draws consume the RNG in the same order the
        // bucket-by-bucket loop did.
        let mut rows = tape.group_rows(x, self.m); // m × (nodes·f)
        if train && self.dropout > 0.0 {
            rows = tape.dropout_rng(rows, rng, self.dropout);
        }
        let dec = self.fc.apply(tape, store, rows); // m × n
        tape.transpose(dec) // n × m
    }

    /// The model head: row-softmax histograms (`n × m`) for HIST, or a
    /// sigmoid column of normalised speeds (`n × 1`) for AVG — the
    /// per-bucket logits are averaged before the sigmoid, per §VI-A.3.
    pub fn output(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        input: &Matrix,
        train: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let z = self.logits(tape, store, input, train, rng);
        match self.output {
            OutputKind::Histogram => tape.softmax_rows(z),
            OutputKind::Average => {
                // Mean over buckets -> n × 1 -> sigmoid.
                let ones = tape.constant_filled(self.m, 1, 1.0 / self.m as f64);
                let mean = tape.matmul(z, ones);
                tape.sigmoid(mean)
            }
        }
    }

    /// Output columns of the head (`m` for HIST, 1 for AVG).
    pub fn output_cols(&self) -> usize {
        match self.output {
            OutputKind::Histogram => self.m,
            OutputKind::Average => 1,
        }
    }

    /// Tape-free batched forward: `reqs` inputs hstacked into an
    /// `n × (reqs·m)` matrix run through the conv stack as `reqs·m`
    /// groups, then the head is applied per request into `outs`.
    ///
    /// Every kernel in the stack computes each group's column block
    /// independently with the same accumulation order as the
    /// single-request tape pass, so block `r` of the batch is
    /// bit-identical to running request `r` alone through
    /// [`Encoder::output`] in eval mode.
    pub(crate) fn infer_outputs(
        &self,
        store: &ParamStore,
        ws: &mut InferWorkspace,
        wide_input: &Matrix,
        reqs: usize,
        outs: &mut [Matrix],
    ) {
        gcwc_linalg::tile::with_default_tier(self.kernel_tier, || {
            self.infer_outputs_inner(store, ws, wide_input, reqs, outs)
        })
    }

    fn infer_outputs_inner(
        &self,
        store: &ParamStore,
        ws: &mut InferWorkspace,
        wide_input: &Matrix,
        reqs: usize,
        outs: &mut [Matrix],
    ) {
        use gcwc_nn::ops;
        assert_eq!(wide_input.shape(), (self.n, self.m * reqs), "batched input shape mismatch");
        assert!(outs.len() >= reqs, "missing output buffers");
        let groups = reqs * self.m;
        let InferWorkspace { pool, saved, argmax, .. } = ws;
        let mut x = pool.take_raw(self.n, groups);
        x.copy_from(wide_input);
        for layer in &self.layers {
            // Grouped polynomial convolution (shared filters).
            layer.basis.forward_pooled(&x, pool, saved);
            let mut conv = pool.take(x.rows(), groups * layer.out_filters);
            for (tx, &th) in saved.iter().zip(&layer.thetas) {
                ops::poly_conv_accumulate(tx, store.value(th), &mut conv, groups);
            }
            for tap in saved.drain(..) {
                pool.give(tap);
            }
            pool.give(x);
            x = conv;
            // Bias broadcast (tiled across bucket groups) + tanh.
            let bias = store.value(layer.bias);
            let mut tiled = pool.take_raw(1, layer.out_filters * groups);
            ops::tile_cols_into(bias, groups, &mut tiled);
            ops::add_row_broadcast_assign(&mut x, &tiled);
            pool.give(tiled);
            x.map_inplace(f64::tanh);
            if let Some(map) = &layer.pool {
                let c = x.cols();
                let mut pooled = pool.take_raw(map.num_outputs(), c);
                argmax.clear();
                argmax.resize(map.num_outputs() * c, 0);
                map.max_forward_into(&x, &mut pooled, argmax);
                pool.give(x);
                x = pooled;
            }
        }
        // Batched FC decoder over all groups (no dropout at eval).
        let (nodes, total) = x.shape();
        let c = total / groups;
        let mut rows = pool.take_raw(groups, nodes * c);
        ops::group_rows_into(&x, groups, &mut rows);
        pool.give(x);
        let w = store.value(self.fc.w);
        let b = store.value(self.fc.b);
        let mut dec = pool.take_raw(groups, w.cols()); // (reqs·m) × n
        rows.matmul_into(w, &mut dec);
        ops::add_row_broadcast_assign(&mut dec, b);
        pool.give(rows);
        // Per-request head on the request's m-row block of `dec`.
        let mut block = pool.take_raw(self.m, self.n);
        for (r, out) in outs.iter_mut().enumerate().take(reqs) {
            for i in 0..self.m {
                block.row_mut(i).copy_from_slice(dec.row(r * self.m + i));
            }
            match self.output {
                OutputKind::Histogram => {
                    assert_eq!(out.shape(), (self.n, self.m), "output buffer shape mismatch");
                    block.transpose_into(out);
                    ops::softmax_rows_in_place(out);
                }
                OutputKind::Average => {
                    assert_eq!(out.shape(), (self.n, 1), "output buffer shape mismatch");
                    let mut z = pool.take_raw(self.n, self.m);
                    block.transpose_into(&mut z);
                    let mut ones = pool.take_raw(self.m, 1);
                    ones.as_mut_slice().fill(1.0 / self.m as f64);
                    z.matmul_into(&ones, out);
                    out.map_inplace(|t| 1.0 / (1.0 + (-t).exp()));
                    pool.give(ones);
                    pool.give(z);
                }
            }
        }
        pool.give(block);
        pool.give(dec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::rng::seeded;
    use gcwc_traffic::generators::highway_tollgate;

    fn encoder(output: OutputKind) -> (Encoder, ParamStore) {
        let hw = highway_tollgate(1);
        let mut cfg = ModelConfig::hw_hist();
        cfg.output = output;
        let mut store = ParamStore::new();
        let mut rng = seeded(3);
        let enc = Encoder::new(&hw.graph, 8, &cfg, &mut store, &mut rng);
        (enc, store)
    }

    #[test]
    fn histogram_output_is_row_stochastic() {
        let (enc, store) = encoder(OutputKind::Histogram);
        let mut tape = Tape::new();
        let mut rng = seeded(4);
        let input =
            Matrix::from_fn(24, 8, |i, j| if i < 12 { ((i + j) % 3) as f64 * 0.2 } else { 0.0 });
        let out = enc.output(&mut tape, &store, &input, false, &mut rng);
        let v = tape.value(out);
        assert_eq!(v.shape(), (24, 8));
        for i in 0..24 {
            let s: f64 = v.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
            assert!(v.row(i).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn average_output_is_unit_interval_column() {
        let (enc, store) = encoder(OutputKind::Average);
        let mut tape = Tape::new();
        let mut rng = seeded(5);
        let input = Matrix::from_fn(24, 8, |i, _| i as f64 * 0.01);
        let out = enc.output(&mut tape, &store, &input, false, &mut rng);
        let v = tape.value(out);
        assert_eq!(v.shape(), (24, 1));
        assert!(v.as_slice().iter().all(|&p| p > 0.0 && p < 1.0));
    }

    #[test]
    fn evaluation_forward_is_deterministic() {
        let (enc, store) = encoder(OutputKind::Histogram);
        let input = Matrix::from_fn(24, 8, |i, j| ((i * j) % 5) as f64 * 0.1);
        let run = |seed: u64| {
            let mut tape = Tape::new();
            let mut rng = seeded(seed);
            let out = enc.output(&mut tape, &store, &input, false, &mut rng);
            tape.value(out).clone()
        };
        assert_eq!(run(1), run(99), "eval mode must not depend on the RNG");
    }

    #[test]
    fn dropout_changes_training_forward() {
        let (enc, store) = encoder(OutputKind::Histogram);
        let input = Matrix::from_fn(24, 8, |i, j| ((i * j) % 5) as f64 * 0.1);
        let mut tape1 = Tape::new();
        let out1 = enc.output(&mut tape1, &store, &input, true, &mut seeded(1));
        let mut tape2 = Tape::new();
        let out2 = enc.output(&mut tape2, &store, &input, true, &mut seeded(2));
        assert_ne!(tape1.value(out1), tape2.value(out2));
    }

    #[test]
    fn zero_input_still_produces_valid_histograms() {
        // The degenerate all-missing matrix must not crash and must give
        // valid distributions (completion from pure bias).
        let (enc, store) = encoder(OutputKind::Histogram);
        let mut tape = Tape::new();
        let out = enc.output(&mut tape, &store, &Matrix::zeros(24, 8), false, &mut seeded(1));
        let v = tape.value(out);
        for i in 0..24 {
            assert!((v.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
