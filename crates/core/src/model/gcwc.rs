//! The basic GCWC model (paper §IV).

use gcwc_graph::EdgeGraph;
use gcwc_linalg::rng::seeded;
use gcwc_linalg::Matrix;
use gcwc_nn::{ParamStore, Tape};
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::{ModelConfig, OutputKind};
use crate::infer::{InferRequest, InferWorkspace};
use crate::model::encoder::Encoder;
use crate::task::{CompletionModel, TrainSample};
use crate::train::{run_training_guarded, TrainControl, TrainError, TrainReport};

/// ε of the KL loss (Eq. 3).
pub const LOSS_EPS: f64 = 1e-6;

/// Graph Convolutional Weight Completion.
pub struct GcwcModel {
    store: ParamStore,
    encoder: Encoder,
    cfg: ModelConfig,
    rng: StdRng,
    last_report: TrainReport,
}

impl GcwcModel {
    /// Creates an untrained GCWC model for `graph` with `m` buckets.
    pub fn new(graph: &EdgeGraph, m: usize, cfg: ModelConfig, seed: u64) -> Self {
        let mut rng = seeded(seed);
        let mut store = ParamStore::new();
        let encoder = Encoder::new(graph, m, &cfg, &mut store, &mut rng);
        Self { store, encoder, cfg, rng, last_report: TrainReport::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The training report of the last [`CompletionModel::fit`] call.
    pub fn last_report(&self) -> &TrainReport {
        &self.last_report
    }

    /// Number of edges `n` in the served graph.
    pub fn num_edges(&self) -> usize {
        self.encoder.num_edges()
    }

    /// Number of histogram buckets `m`.
    pub fn num_buckets(&self) -> usize {
        self.encoder.num_buckets()
    }

    /// Output head kind.
    pub fn output_kind(&self) -> OutputKind {
        self.encoder.output_kind()
    }

    /// Output columns (`m` for HIST, 1 for AVG).
    pub fn output_cols(&self) -> usize {
        self.encoder.output_cols()
    }

    /// Whitespace-free architecture token, written into checkpoint
    /// headers and validated on load.
    pub fn arch_string(&self) -> String {
        format!(
            "gcwc:n{}:m{}:{}",
            self.encoder.num_edges(),
            self.encoder.num_buckets(),
            self.cfg.arch_signature()
        )
    }

    /// Saves the trained parameters to a checkpoint file (with the
    /// architecture token in the header).
    pub fn save(&self, path: &std::path::Path) -> Result<(), gcwc_nn::PersistError> {
        gcwc_nn::persist::save_with_arch(&self.store, path, &self.arch_string())
    }

    /// Restores parameters from a checkpoint produced by a model with
    /// the identical architecture (header validated when present).
    pub fn load(&mut self, path: &std::path::Path) -> Result<(), gcwc_nn::PersistError> {
        let arch = self.arch_string();
        gcwc_nn::persist::load_expecting(&mut self.store, path, Some(&arch))
    }

    /// Tape-free batched inference: runs `count` requests (provided by
    /// `req`, indexed `0..count`) as one coalesced forward pass, writing
    /// request `r`'s completed matrix into `outs[r]` (pre-shaped
    /// `n × output_cols`). Bit-identical per request to
    /// [`CompletionModel::predict`]; allocation-free once `ws` is warm.
    pub fn infer_into<'r, F>(
        &self,
        ws: &mut InferWorkspace,
        count: usize,
        req: F,
        outs: &mut [Matrix],
    ) where
        F: Fn(usize) -> InferRequest<'r>,
    {
        let (n, m) = (self.encoder.num_edges(), self.encoder.num_buckets());
        let mut wide = ws.pool.take_raw(n, count * m);
        for r in 0..count {
            let rq = req(r);
            assert_eq!(rq.input.shape(), (n, m), "request input shape mismatch");
            for i in 0..n {
                wide.row_mut(i)[r * m..(r + 1) * m].copy_from_slice(rq.input.row(i));
            }
        }
        self.encoder.infer_outputs(&self.store, ws, &wide, count, outs);
        ws.pool.give(wide);
    }

    /// Single-request convenience wrapper over [`GcwcModel::infer_into`];
    /// the returned matrix comes from the workspace pool (return it with
    /// [`InferWorkspace::give`] for reuse).
    pub fn infer(&self, ws: &mut InferWorkspace, input: &Matrix) -> Matrix {
        let mut out = ws.take(self.num_edges(), self.output_cols());
        let rq = InferRequest { input, time_of_day: 0, day_of_week: 0, row_flags: &[] };
        self.infer_into(ws, 1, |_| rq, std::slice::from_mut(&mut out));
        out
    }

    /// Builds the per-sample loss node (KL for HIST, masked MSE for AVG).
    ///
    /// Applies denoising augmentation: with probability `row_dropout`
    /// each covered input row is zeroed while remaining in the loss
    /// mask, so the decoder is also trained to complete rows it cannot
    /// see.
    pub(crate) fn sample_loss(
        encoder: &Encoder,
        row_dropout: f64,
        tape: &mut Tape,
        store: &ParamStore,
        sample: &TrainSample,
        rng: &mut StdRng,
    ) -> gcwc_nn::NodeId {
        let (input, flags) = crate::task::corrupt_input_pooled(
            &sample.input,
            &sample.context.row_flags,
            row_dropout,
            rng,
            tape.pool_mut(),
        );
        let pred = encoder.output(tape, store, &input, true, rng);
        tape.pool_mut().give(input);
        tape.pool_mut().give_vec(flags);
        match encoder.output_kind() {
            OutputKind::Histogram => {
                tape.kl_loss_masked_ref(pred, &sample.label, &sample.label_mask, LOSS_EPS)
            }
            OutputKind::Average => tape.mse_masked_rows(pred, &sample.label, &sample.label_mask),
        }
    }
}

impl GcwcModel {
    /// Fallible training with explicit robustness controls: the
    /// divergence guard aborts with [`TrainError::Diverged`] instead of
    /// training through non-finite batches, and a
    /// [`crate::train::CheckpointPlan`] persists/resumes the run at
    /// epoch boundaries. [`CompletionModel::fit`] is this with default
    /// controls (panicking on the error path).
    pub fn try_fit(
        &mut self,
        samples: &[TrainSample],
        control: &TrainControl,
    ) -> Result<(), TrainError> {
        let encoder = &self.encoder;
        let row_dropout = self.cfg.row_dropout;
        let mut rng = seeded(self.rng.random());
        self.last_report = run_training_guarded(
            &mut self.store,
            self.cfg.optim,
            self.cfg.epochs,
            self.cfg.batch_size,
            gcwc_linalg::Threads::fixed(self.cfg.threads),
            samples,
            &mut rng,
            control,
            |tape, store, sample, rng| {
                Self::sample_loss(encoder, row_dropout, tape, store, sample, rng)
            },
        )?;
        Ok(())
    }

    /// Warm-start fine-tuning: a short guarded training pass that
    /// continues from the current parameters (typically restored from
    /// a checkpoint) under `plan`'s epoch count and scaled learning
    /// rate. Consumes the model RNG exactly like one [`GcwcModel::try_fit`]
    /// call, so a fine-tune is bit-identical to an offline `try_fit`
    /// on the same samples from the same model state.
    pub fn fine_tune(
        &mut self,
        samples: &[TrainSample],
        plan: &crate::train::FineTunePlan,
        control: &TrainControl,
    ) -> Result<(), TrainError> {
        let saved_epochs = self.cfg.epochs;
        let saved_lr = self.cfg.optim.learning_rate;
        self.cfg.epochs = plan.epochs.max(1);
        self.cfg.optim.learning_rate = saved_lr * plan.lr_scale;
        let result = self.try_fit(samples, control);
        self.cfg.epochs = saved_epochs;
        self.cfg.optim.learning_rate = saved_lr;
        result
    }
}

impl CompletionModel for GcwcModel {
    fn name(&self) -> String {
        "GCWC".to_owned()
    }

    fn fit(&mut self, samples: &[TrainSample]) {
        self.try_fit(samples, &TrainControl::default())
            .unwrap_or_else(|e| panic!("GCWC training failed: {e}"));
    }

    fn predict(&self, sample: &TrainSample) -> Matrix {
        let mut tape = Tape::new();
        let mut rng = seeded(0); // unused in eval mode
        let out = self.encoder.output(&mut tape, &self.store, &sample.input, false, &mut rng);
        tape.value(out).clone()
    }

    fn num_params(&self) -> usize {
        self.store.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{build_samples, TaskKind};
    use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

    fn tiny_setup() -> (gcwc_traffic::NetworkInstance, gcwc_traffic::Dataset) {
        let hw = generators::highway_tollgate(1);
        let cfg = SimConfig {
            days: 2,
            intervals_per_day: 16,
            records_per_interval: 10.0,
            ..Default::default()
        };
        let data = simulate(&hw, HistogramSpec::hist8(), &cfg);
        let ds = data.to_dataset(0.5, 5, 11);
        (hw, ds)
    }

    #[test]
    fn fit_reduces_kl_loss() {
        let (hw, ds) = tiny_setup();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let cfg = ModelConfig::hw_hist().with_epochs(8);
        let mut model = GcwcModel::new(&hw.graph, 8, cfg, 42);
        model.fit(&samples);
        let losses = &model.last_report().epoch_losses;
        assert_eq!(losses.len(), 8);
        assert!(losses.last().unwrap() < &(losses[0] * 0.9), "loss should drop: {losses:?}");
    }

    #[test]
    fn predictions_are_valid_histograms_for_all_edges() {
        let (hw, ds) = tiny_setup();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let cfg = ModelConfig::hw_hist().with_epochs(3);
        let mut model = GcwcModel::new(&hw.graph, 8, cfg, 42);
        model.fit(&samples[..8]);
        let pred = model.predict(&samples[9]);
        assert_eq!(pred.shape(), (24, 8));
        for i in 0..24 {
            let s: f64 = pred.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
    }

    #[test]
    fn average_variant_outputs_column() {
        let (hw, ds) = tiny_setup();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Average, 0);
        let cfg = ModelConfig::hw_avg().with_epochs(3);
        let mut model = GcwcModel::new(&hw.graph, 8, cfg, 42);
        model.fit(&samples[..8]);
        let pred = model.predict(&samples[9]);
        assert_eq!(pred.shape(), (24, 1));
        assert!(pred.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn param_count_is_plausible() {
        let (hw, _) = tiny_setup();
        let model = GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist(), 1);
        let p = model.num_params();
        // conv1 (8·16 + 16) + conv2 (8·16·16 + 16) + FC ((n/8)·16+1)·24.
        assert!(p > 2_000 && p < 40_000, "param count {p}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (hw, ds) = tiny_setup();
        let idx: Vec<usize> = (0..8).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let run = || {
            let cfg = ModelConfig::hw_hist().with_epochs(2);
            let mut model = GcwcModel::new(&hw.graph, 8, cfg, 7);
            model.fit(&samples);
            model.predict(&samples[0])
        };
        assert_eq!(run(), run());
    }
}
