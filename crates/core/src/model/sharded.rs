//! Sharded completion: one GCWC/A-GCWC model per edge partition,
//! trained data-parallel and scatter-gathered into a global
//! completion.
//!
//! A [`ShardedModel`] wraps a [`PartitionSet`] (edge-owned partitions
//! with 1-hop halo rows) and one per-partition model sharing a single
//! [`ModelConfig`]. Each shard sees its owned + halo rows of every
//! sample; the loss mask is zeroed on halo rows so only owned rows are
//! scored, and predictions scatter each shard's owned rows back into
//! the global matrix.
//!
//! **K = 1 is bit-identical to the unsharded pipeline**: the single
//! partition's local graph is a clone of the global graph, the shard
//! seed at index 0 is the base seed, and identity views copy rows
//! verbatim — so initialisation, the training RNG stream, checkpoints,
//! and predictions all reproduce the unsharded model exactly
//! (`to_bits`-level). For K > 1, rows interior to a partition see
//! their full 1-hop neighbourhood and boundary rows see a truncated
//! 2-hop receptive field, so completions on boundary edges carry a
//! small, bounded approximation error.

use std::path::Path;
use std::sync::Arc;

use gcwc_graph::delta::{DeltaError, DeltaRepair, GraphDelta};
use gcwc_graph::{EdgeGraph, Partition, PartitionSet};
use gcwc_linalg::Matrix;
use gcwc_nn::PersistError;
use gcwc_traffic::view_context;

use crate::config::ModelConfig;
use crate::model::{AGcwcModel, GcwcModel};
use crate::task::{CompletionModel, TrainSample};
use crate::train::{CheckpointPlan, FineTunePlan, TrainControl, TrainError, TrainReport};

/// A completion model that can serve as one shard: fit/predict plus
/// shape introspection and checkpoint persistence.
pub trait ShardModel: CompletionModel + Send {
    /// Number of (local) edges the shard models.
    fn num_edges(&self) -> usize;
    /// Output columns of the head (`m` for HIST, 1 for AVG).
    fn output_cols(&self) -> usize;
    /// Saves the shard's parameters.
    fn save(&self, path: &Path) -> Result<(), PersistError>;
    /// Loads the shard's parameters.
    fn load(&mut self, path: &Path) -> Result<(), PersistError>;
    /// Fallible training with a divergence guard and optional
    /// checkpoint-and-resume (see `crate::train::run_training_guarded`).
    fn try_fit(
        &mut self,
        samples: &[TrainSample],
        control: &TrainControl,
    ) -> Result<(), TrainError>;
    /// Warm-start fine-tuning: a short guarded pass continuing from
    /// the current parameters under `plan` (see
    /// [`crate::GcwcModel::fine_tune`]).
    fn fine_tune(
        &mut self,
        samples: &[TrainSample],
        plan: &FineTunePlan,
        control: &TrainControl,
    ) -> Result<(), TrainError>;
    /// Training report of the shard's last fit.
    fn last_report(&self) -> &TrainReport;
}

impl ShardModel for GcwcModel {
    fn num_edges(&self) -> usize {
        GcwcModel::num_edges(self)
    }
    fn output_cols(&self) -> usize {
        GcwcModel::output_cols(self)
    }
    fn save(&self, path: &Path) -> Result<(), PersistError> {
        GcwcModel::save(self, path)
    }
    fn load(&mut self, path: &Path) -> Result<(), PersistError> {
        GcwcModel::load(self, path)
    }
    fn try_fit(
        &mut self,
        samples: &[TrainSample],
        control: &TrainControl,
    ) -> Result<(), TrainError> {
        GcwcModel::try_fit(self, samples, control)
    }
    fn fine_tune(
        &mut self,
        samples: &[TrainSample],
        plan: &FineTunePlan,
        control: &TrainControl,
    ) -> Result<(), TrainError> {
        GcwcModel::fine_tune(self, samples, plan, control)
    }
    fn last_report(&self) -> &TrainReport {
        GcwcModel::last_report(self)
    }
}

impl ShardModel for AGcwcModel {
    fn num_edges(&self) -> usize {
        AGcwcModel::num_edges(self)
    }
    fn output_cols(&self) -> usize {
        AGcwcModel::output_cols(self)
    }
    fn save(&self, path: &Path) -> Result<(), PersistError> {
        AGcwcModel::save(self, path)
    }
    fn load(&mut self, path: &Path) -> Result<(), PersistError> {
        AGcwcModel::load(self, path)
    }
    fn try_fit(
        &mut self,
        samples: &[TrainSample],
        control: &TrainControl,
    ) -> Result<(), TrainError> {
        AGcwcModel::try_fit(self, samples, control)
    }
    fn fine_tune(
        &mut self,
        samples: &[TrainSample],
        plan: &FineTunePlan,
        control: &TrainControl,
    ) -> Result<(), TrainError> {
        AGcwcModel::fine_tune(self, samples, plan, control)
    }
    fn last_report(&self) -> &TrainReport {
        AGcwcModel::last_report(self)
    }
}

// Shard seed derivation lives with the partitioning logic; re-exported
// here so existing `gcwc_core::shard_seed` callers keep working.
pub use gcwc_graph::shard_seed;

/// K per-partition completion models over one [`PartitionSet`].
pub struct ShardedModel<M> {
    partition: Arc<PartitionSet>,
    shards: Vec<M>,
    n: usize,
    out_cols: usize,
}

impl ShardedModel<GcwcModel> {
    /// Builds K GCWC shards by partitioning `graph`.
    pub fn gcwc(graph: &EdgeGraph, m: usize, cfg: ModelConfig, seed: u64, k: usize) -> Self {
        Self::gcwc_on(Arc::new(PartitionSet::build(graph, k)), m, cfg, seed)
    }

    /// Builds GCWC shards over an existing partition set.
    pub fn gcwc_on(partition: Arc<PartitionSet>, m: usize, cfg: ModelConfig, seed: u64) -> Self {
        let shards = partition
            .partitions()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                assert!(p.num_owned() > 0, "partition {i} owns no edges; reduce K");
                GcwcModel::new(p.graph(), m, cfg.clone(), shard_seed(seed, i))
            })
            .collect();
        Self::from_shards(partition, shards)
    }
}

impl ShardedModel<AGcwcModel> {
    /// Builds K A-GCWC shards by partitioning `graph`.
    pub fn agcwc(
        graph: &EdgeGraph,
        m: usize,
        intervals_per_day: usize,
        cfg: ModelConfig,
        seed: u64,
        k: usize,
    ) -> Self {
        Self::agcwc_on(Arc::new(PartitionSet::build(graph, k)), m, intervals_per_day, cfg, seed)
    }

    /// Builds A-GCWC shards over an existing partition set.
    pub fn agcwc_on(
        partition: Arc<PartitionSet>,
        m: usize,
        intervals_per_day: usize,
        cfg: ModelConfig,
        seed: u64,
    ) -> Self {
        let shards = partition
            .partitions()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                assert!(p.num_owned() > 0, "partition {i} owns no edges; reduce K");
                AGcwcModel::new(p.graph(), m, intervals_per_day, cfg.clone(), shard_seed(seed, i))
            })
            .collect();
        Self::from_shards(partition, shards)
    }
}

impl<M: ShardModel> ShardedModel<M> {
    fn from_shards(partition: Arc<PartitionSet>, shards: Vec<M>) -> Self {
        let n = partition.num_nodes();
        let out_cols = shards.first().expect("at least one shard").output_cols();
        Self { partition, shards, n, out_cols }
    }

    /// The partition set the shards were built over.
    pub fn partition_set(&self) -> &Arc<PartitionSet> {
        &self.partition
    }

    /// Number of shards K.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Global number of edges.
    pub fn num_edges(&self) -> usize {
        self.n
    }

    /// Output columns of the head.
    pub fn output_cols(&self) -> usize {
        self.out_cols
    }

    /// The per-partition shard models.
    pub fn shards(&self) -> &[M] {
        &self.shards
    }

    /// One shard model.
    pub fn shard(&self, k: usize) -> &M {
        &self.shards[k]
    }

    /// Decomposes into the partition set and the shard models — the
    /// hand-off point to a serving registry, which takes ownership of
    /// each trained shard.
    pub fn into_shards(self) -> (Arc<PartitionSet>, Vec<M>) {
        (self.partition, self.shards)
    }

    /// Restricts a global sample to shard `k`'s owned + halo rows.
    ///
    /// Input, label, history, and row flags are gathered in local row
    /// order; the label mask is additionally zeroed on halo rows so
    /// the shard's loss scores only the rows it owns.
    pub fn localize(&self, shard: usize, sample: &TrainSample) -> TrainSample {
        let view = self.partition.partition(shard).view();
        TrainSample {
            snapshot_index: sample.snapshot_index,
            input: view.select(&sample.input),
            label: view.select(&sample.label),
            label_mask: view.owned_mask(&sample.label_mask),
            context: view_context(view, &sample.context),
            history: sample.history.iter().map(|h| view.select(h)).collect(),
        }
    }

    /// Trains every shard on its local restriction of `samples`.
    ///
    /// K = 1 runs the single shard's fit directly on the calling
    /// thread — the exact unsharded code path. K > 1 trains shards
    /// data-parallel (one thread per shard, kernel parallelism pinned
    /// to one thread inside each); every shard's training is
    /// internally deterministic regardless of thread count, so the
    /// result is reproducible at any K.
    pub fn fit_shards(&mut self, samples: &[TrainSample]) {
        self.try_fit_shards(samples, |_| TrainControl::default())
            .unwrap_or_else(|e| panic!("sharded training failed: {e}"));
    }

    /// Fallible [`ShardedModel::fit_shards`]: every shard trains under
    /// the divergence guard, and `control_for(k)` supplies shard `k`'s
    /// [`TrainControl`] (e.g. a per-shard [`CheckpointPlan`]). The
    /// first shard error (by shard index) is returned; shards that
    /// already finished keep their trained parameters.
    pub fn try_fit_shards(
        &mut self,
        samples: &[TrainSample],
        control_for: impl Fn(usize) -> TrainControl + Sync,
    ) -> Result<(), TrainError> {
        self.run_shards(samples, control_for, |shard, local, control| shard.try_fit(local, control))
    }

    /// Shard fan-out shared by full fits and fine-tune passes: K = 1
    /// runs on the calling thread (the exact unsharded path), K > 1
    /// trains shards data-parallel with kernel parallelism pinned to
    /// one thread inside each.
    fn run_shards(
        &mut self,
        samples: &[TrainSample],
        control_for: impl Fn(usize) -> TrainControl + Sync,
        fit: impl Fn(&mut M, &[TrainSample], &TrainControl) -> Result<(), TrainError> + Sync,
    ) -> Result<(), TrainError> {
        if self.shards.len() == 1 {
            let local: Vec<TrainSample> = samples.iter().map(|s| self.localize(0, s)).collect();
            return fit(&mut self.shards[0], &local, &control_for(0));
        }
        let partition = &self.partition;
        let locals: Vec<Vec<TrainSample>> = (0..self.shards.len())
            .map(|k| {
                let view = partition.partition(k).view();
                samples
                    .iter()
                    .map(|s| TrainSample {
                        snapshot_index: s.snapshot_index,
                        input: view.select(&s.input),
                        label: view.select(&s.label),
                        label_mask: view.owned_mask(&s.label_mask),
                        context: view_context(view, &s.context),
                        history: s.history.iter().map(|h| view.select(h)).collect(),
                    })
                    .collect()
            })
            .collect();
        let control_for = &control_for;
        let fit = &fit;
        let mut results: Vec<Result<(), TrainError>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(&locals)
                .enumerate()
                .map(|(k, (shard, local))| {
                    scope.spawn(move || {
                        gcwc_linalg::parallel::with_threads(1, || {
                            fit(shard, local, &control_for(k))
                        })
                    })
                })
                .collect();
            results.extend(handles.into_iter().map(|h| h.join().expect("shard trainer panicked")));
        });
        results.into_iter().collect()
    }

    /// Trains every shard with periodic training-state checkpoints
    /// under `dir` (`{stem}.shard{k}.trainstate`); when `resume` is set
    /// and state files exist, each shard continues its killed run
    /// bit-identically instead of starting over.
    pub fn fit_shards_resumable(
        &mut self,
        samples: &[TrainSample],
        dir: &Path,
        stem: &str,
        every_epochs: usize,
        resume: bool,
    ) -> Result<(), TrainError> {
        self.try_fit_shards(samples, |k| TrainControl {
            checkpoint: Some(CheckpointPlan {
                path: dir.join(format!("{stem}.shard{k}.trainstate")),
                every_epochs,
                resume,
            }),
            ..TrainControl::default()
        })
    }

    /// Warm-start fine-tuning of every shard on its local restriction
    /// of `samples` under `plan`, with the same periodic training-state
    /// checkpoints (and divergence guard) as
    /// [`ShardedModel::fit_shards_resumable`]. The incremental-refresh
    /// path: load the current checkpoint set, fine-tune on fresh slots
    /// only, and hand the shards to the serving registry.
    pub fn fine_tune_shards_resumable(
        &mut self,
        samples: &[TrainSample],
        dir: &Path,
        stem: &str,
        every_epochs: usize,
        resume: bool,
        plan: &FineTunePlan,
    ) -> Result<(), TrainError> {
        self.run_shards(
            samples,
            |k| TrainControl {
                checkpoint: Some(CheckpointPlan {
                    path: dir.join(format!("{stem}.shard{k}.trainstate")),
                    every_epochs,
                    resume,
                }),
                ..TrainControl::default()
            },
            |shard, local, control| shard.fine_tune(local, plan, control),
        )
    }

    /// Absorbs a topology delta: repairs the partition set over
    /// `graph` (the current global edge graph) and rebuilds *only* the
    /// delta-affected shards via `rebuild(shard, partition)` — the
    /// caller constructs a fresh untrained model for each repaired
    /// partition (same config and per-shard seed as the original
    /// build). Untouched shards keep their trained parameters and
    /// their partition `Arc`s, so the surviving majority of the model
    /// survives a localized delta untouched.
    ///
    /// Returns the post-delta global graph and the repaired shard
    /// indices (retrain those with
    /// [`ShardedModel::fit_shards_subset`]).
    pub fn apply_delta(
        &mut self,
        graph: &EdgeGraph,
        delta: &GraphDelta,
        rebuild: impl Fn(usize, &Partition) -> M,
    ) -> Result<(EdgeGraph, Vec<usize>), DeltaError> {
        let DeltaRepair { graph: new_graph, partitions, repaired } =
            self.partition.apply_delta(graph, delta)?;
        let partitions = Arc::new(partitions);
        for &b in &repaired {
            let p = partitions.partition(b);
            assert!(p.num_owned() > 0, "repaired partition {b} owns no edges");
            self.shards[b] = rebuild(b, p);
        }
        self.partition = partitions;
        self.n = self.partition.num_nodes();
        Ok((new_graph, repaired))
    }

    /// Trains only the shards in `subset` on their local restriction
    /// of `samples` — the retrain step after
    /// [`ShardedModel::apply_delta`]. Each shard trains exactly like a
    /// full [`ShardedModel::fit_shards`] pass would train it (K = 1
    /// inline on the calling thread, K > 1 under a pinned kernel
    /// thread), so a repaired-and-retrained shard is bit-identical to
    /// the same shard trained in a from-scratch model.
    pub fn fit_shards_subset(
        &mut self,
        subset: &[usize],
        samples: &[TrainSample],
    ) -> Result<(), TrainError> {
        let partition = Arc::clone(&self.partition);
        let single = self.shards.len() == 1;
        for &k in subset {
            let view = partition.partition(k).view();
            let local: Vec<TrainSample> = samples
                .iter()
                .map(|s| TrainSample {
                    snapshot_index: s.snapshot_index,
                    input: view.select(&s.input),
                    label: view.select(&s.label),
                    label_mask: view.owned_mask(&s.label_mask),
                    context: view_context(view, &s.context),
                    history: s.history.iter().map(|h| view.select(h)).collect(),
                })
                .collect();
            let control = TrainControl::default();
            let shard = &mut self.shards[k];
            if single {
                shard.try_fit(&local, &control)?;
            } else {
                gcwc_linalg::parallel::with_threads(1, || shard.try_fit(&local, &control))?;
            }
        }
        Ok(())
    }

    /// Predicts the global completion: each shard predicts on its
    /// local view and its owned rows are scattered into an
    /// `n × out_cols` matrix.
    pub fn predict_global(&self, sample: &TrainSample) -> Matrix {
        let mut out = Matrix::zeros(self.n, self.out_cols);
        for (k, shard) in self.shards.iter().enumerate() {
            let local = self.localize(k, sample);
            let pred = shard.predict(&local);
            self.partition.partition(k).view().scatter_owned(&pred, &mut out);
        }
        out
    }

    /// Training reports of every shard's last fit, in shard order.
    pub fn shard_reports(&self) -> Vec<&TrainReport> {
        self.shards.iter().map(|s| s.last_report()).collect()
    }

    /// Saves every shard as `{stem}.shard{k}.ckpt` under `dir`.
    pub fn save_shards(
        &self,
        dir: &Path,
        stem: &str,
    ) -> Result<Vec<std::path::PathBuf>, PersistError> {
        let mut paths = Vec::with_capacity(self.shards.len());
        for (k, shard) in self.shards.iter().enumerate() {
            let path = dir.join(format!("{stem}.shard{k}.ckpt"));
            shard.save(&path)?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// Loads every shard from `{stem}.shard{k}.ckpt` under `dir`.
    pub fn load_shards(&mut self, dir: &Path, stem: &str) -> Result<(), PersistError> {
        for (k, shard) in self.shards.iter_mut().enumerate() {
            shard.load(&dir.join(format!("{stem}.shard{k}.ckpt")))?;
        }
        Ok(())
    }
}

impl<M: ShardModel> CompletionModel for ShardedModel<M> {
    fn name(&self) -> String {
        format!("{}(K={})", self.shards[0].name(), self.shards.len())
    }

    fn fit(&mut self, samples: &[TrainSample]) {
        self.fit_shards(samples);
    }

    fn predict(&self, sample: &TrainSample) -> Matrix {
        self.predict_global(sample)
    }

    fn num_params(&self) -> usize {
        self.shards.iter().map(|s| s.num_params()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{build_samples, TaskKind};
    use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

    fn tiny_samples() -> (gcwc_traffic::NetworkInstance, Vec<TrainSample>) {
        let hw = generators::highway_tollgate(1);
        let sim = SimConfig {
            days: 2,
            intervals_per_day: 8,
            records_per_interval: 8.0,
            ..Default::default()
        };
        let data = simulate(&hw, HistogramSpec::hist4(), &sim);
        let ds = data.to_dataset(0.5, 3, 5);
        let idx: Vec<usize> = (0..ds.snapshots.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        (hw, samples)
    }

    #[test]
    fn shard_seed_is_base_seed_at_shard_zero() {
        assert_eq!(shard_seed(42, 0), 42);
        assert_ne!(shard_seed(42, 1), 42);
    }

    #[test]
    fn k2_predictions_cover_every_row_exactly_once() {
        let (hw, samples) = tiny_samples();
        let mut model =
            ShardedModel::gcwc(&hw.graph, 4, ModelConfig::hw_hist().with_epochs(1), 9, 2);
        model.fit_shards(&samples[..4]);
        let out = model.predict_global(&samples[0]);
        assert_eq!(out.shape(), (hw.graph.num_nodes(), 4));
        // HIST head: every global row must be a scattered softmax row.
        for i in 0..out.rows() {
            let s: f64 = out.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
    }

    #[test]
    fn localize_masks_halo_rows() {
        let (hw, samples) = tiny_samples();
        let model = ShardedModel::gcwc(&hw.graph, 4, ModelConfig::hw_hist().with_epochs(1), 9, 2);
        for k in 0..2 {
            let view = model.partition_set().partition(k).view();
            let local = model.localize(k, &samples[0]);
            assert_eq!(local.input.rows(), view.num_local());
            for h in view.num_owned()..view.num_local() {
                assert_eq!(local.label_mask[h], 0.0, "halo row {h} must be unmasked");
            }
        }
    }
}
