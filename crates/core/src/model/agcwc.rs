//! The context-aware A-GCWC model (paper §V): GCWC + context embedding
//! module (CP-CNNs) + Bayesian inference combination.

use gcwc_graph::EdgeGraph;
use gcwc_linalg::rng::seeded;
use gcwc_linalg::Matrix;
use gcwc_nn::{ops, ConvSpec, Dense, Embedding, NodeId, ParamStore, PoolSpec, Tape};
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::{CpCnnConfig, ModelConfig, OutputKind};
use crate::infer::{InferRequest, InferWorkspace};
use crate::model::encoder::Encoder;
use crate::model::gcwc::LOSS_EPS;
use crate::task::{CompletionModel, TrainSample};
use crate::train::{run_training_guarded, TrainControl, TrainError, TrainReport};

/// ε guarding the Bayesian division (Eq. 10).
const BAYES_EPS: f64 = 1e-4;

/// The conditional-probability CNN of §V-B3
/// (`C2×2_4-P2-C2×2_8-P2-FC` in Table III), applied per context.
struct CpCnn {
    kernel1: gcwc_nn::ParamId,
    bias1: gcwc_nn::ParamId,
    kernel2: gcwc_nn::ParamId,
    bias2: gcwc_nn::ParamId,
    fc: Dense,
    beta: usize,
    m: usize,
    f1: usize,
    f2: usize,
}

/// Dimensions of the CP-CNN pipeline for maps of size `h × w`.
struct CpDims {
    kh1: usize,
    kw1: usize,
    h2: usize,
    w2: usize,
    kh2: usize,
    kw2: usize,
    h3: usize,
    w3: usize,
}

fn cp_dims(beta: usize, m: usize) -> CpDims {
    let (h1, w1) = (beta, m);
    let (kh1, kw1) = (2.min(h1), 2.min(w1));
    let (ph1, pw1) = (2.min(h1), 2.min(w1));
    let (h2, w2) = ((h1 / ph1).max(1), (w1 / pw1).max(1));
    let (kh2, kw2) = (2.min(h2), 2.min(w2));
    let (ph2, pw2) = (2.min(h2), 2.min(w2));
    let (h3, w3) = ((h2 / ph2).max(1), (w2 / pw2).max(1));
    CpDims { kh1, kw1, h2, w2, kh2, kw2, h3, w3 }
}

impl CpCnn {
    fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        beta: usize,
        m: usize,
        cfg: &CpCnnConfig,
    ) -> Self {
        let d = cp_dims(beta, m);
        let (f1, f2) = (cfg.filters1, cfg.filters2);
        let kernel1 = store
            .add(format!("{name}.conv1.k"), gcwc_nn::init::glorot_uniform(rng, f1, d.kh1 * d.kw1));
        let bias1 = store.add(format!("{name}.conv1.b"), Matrix::zeros(1, f1));
        let kernel2 = store.add(
            format!("{name}.conv2.k"),
            gcwc_nn::init::glorot_uniform(rng, f2, f1 * d.kh2 * d.kw2),
        );
        let bias2 = store.add(format!("{name}.conv2.b"), Matrix::zeros(1, f2));
        let fc = Dense::new(store, rng, &format!("{name}.fc"), f2 * d.h3 * d.w3, m);
        Self { kernel1, bias1, kernel2, bias2, fc, beta, m, f1, f2 }
    }

    /// Computes `P(Z|X_i)` from the context distribution `px ∈ R^{β×1}`
    /// and the GCWC output `pz ∈ R^{n×m}` (or `n × 1` for AVG).
    fn apply(&self, tape: &mut Tape, store: &ParamStore, px: NodeId, pz: NodeId) -> NodeId {
        let n = tape.value(pz).rows();
        let d = cp_dims(self.beta, self.m);
        let x = tape.batch_outer(px, pz); // (n, β·m)
        let k1 = tape.param(store, self.kernel1);
        let b1 = tape.param(store, self.bias1);
        let spec1 = ConvSpec {
            batch: n,
            in_ch: 1,
            out_ch: self.f1,
            h: self.beta,
            w: self.m,
            kh: d.kh1,
            kw: d.kw1,
        };
        let c1 = tape.conv2d(x, k1, b1, spec1);
        let a1 = tape.relu(c1);
        let p1 = tape.max_pool2d(
            a1,
            PoolSpec {
                batch: n,
                ch: self.f1,
                h: self.beta,
                w: self.m,
                ph: 2.min(self.beta),
                pw: 2.min(self.m),
            },
        );
        let k2 = tape.param(store, self.kernel2);
        let b2 = tape.param(store, self.bias2);
        let spec2 = ConvSpec {
            batch: n,
            in_ch: self.f1,
            out_ch: self.f2,
            h: d.h2,
            w: d.w2,
            kh: d.kh2,
            kw: d.kw2,
        };
        let c2 = tape.conv2d(p1, k2, b2, spec2);
        let a2 = tape.relu(c2);
        let p2 = tape.max_pool2d(
            a2,
            PoolSpec { batch: n, ch: self.f2, h: d.h2, w: d.w2, ph: 2.min(d.h2), pw: 2.min(d.w2) },
        );
        let flat = tape.reshape(p2, n, self.f2 * d.h3 * d.w3);
        self.fc.apply(tape, store, flat) // (n, m) logits
    }

    /// Tape-free equivalent of [`CpCnn::apply`]: writes the `n × m`
    /// conditional logits into `out` (fully overwritten), drawing every
    /// intermediate from the workspace pool. Bit-identical to the tape
    /// path — both call the shared kernels in [`gcwc_nn::ops`].
    fn infer_into(
        &self,
        store: &ParamStore,
        ws: &mut InferWorkspace,
        px: &Matrix,
        pz: &Matrix,
        out: &mut Matrix,
    ) {
        let n = pz.rows();
        let d = cp_dims(self.beta, self.m);
        let InferWorkspace { pool, argmax, .. } = ws;

        let mut x = pool.take_raw(n, self.beta * self.m);
        ops::batch_outer_into(px, pz, &mut x);

        let spec1 = ConvSpec {
            batch: n,
            in_ch: 1,
            out_ch: self.f1,
            h: self.beta,
            w: self.m,
            kh: d.kh1,
            kw: d.kw1,
        };
        let mut c1 = pool.take_raw(n * self.f1, self.beta * self.m);
        ops::conv2d_forward_into(
            &x,
            store.value(self.kernel1),
            store.value(self.bias1),
            &spec1,
            &mut c1,
        );
        pool.give(x);
        c1.map_inplace(|t| t.max(0.0));

        let pspec1 = PoolSpec {
            batch: n,
            ch: self.f1,
            h: self.beta,
            w: self.m,
            ph: 2.min(self.beta),
            pw: 2.min(self.m),
        };
        let mut p1 = pool.take_raw(n * self.f1, pspec1.out_h() * pspec1.out_w());
        argmax.clear();
        argmax.resize(n * self.f1 * pspec1.out_h() * pspec1.out_w(), 0);
        ops::maxpool2d_forward_into(&c1, &pspec1, &mut p1, argmax);
        pool.give(c1);

        let spec2 = ConvSpec {
            batch: n,
            in_ch: self.f1,
            out_ch: self.f2,
            h: d.h2,
            w: d.w2,
            kh: d.kh2,
            kw: d.kw2,
        };
        let mut c2 = pool.take_raw(n * self.f2, d.h2 * d.w2);
        ops::conv2d_forward_into(
            &p1,
            store.value(self.kernel2),
            store.value(self.bias2),
            &spec2,
            &mut c2,
        );
        pool.give(p1);
        c2.map_inplace(|t| t.max(0.0));

        let pspec2 =
            PoolSpec { batch: n, ch: self.f2, h: d.h2, w: d.w2, ph: 2.min(d.h2), pw: 2.min(d.w2) };
        let mut p2 = pool.take_raw(n * self.f2, d.h3 * d.w3);
        argmax.clear();
        argmax.resize(n * self.f2 * d.h3 * d.w3, 0);
        ops::maxpool2d_forward_into(&c2, &pspec2, &mut p2, argmax);
        pool.give(c2);

        // Reshape is a free reinterpretation of the row-major buffer.
        let flat = Matrix::from_vec(n, self.f2 * d.h3 * d.w3, p2.into_vec());
        flat.matmul_into(store.value(self.fc.w), out);
        ops::add_row_broadcast_assign(out, store.value(self.fc.b));
        pool.give(flat);
    }
}

/// Context-Aware Graph Convolutional Weight Completion.
pub struct AGcwcModel {
    store: ParamStore,
    encoder: Encoder,
    cfg: ModelConfig,
    time_emb: Embedding,
    day_emb: Embedding,
    row_fc: Dense,
    cp_time: CpCnn,
    cp_day: CpCnn,
    cp_row: CpCnn,
    rng: StdRng,
    last_report: TrainReport,
}

impl AGcwcModel {
    /// Creates an untrained A-GCWC model.
    ///
    /// `intervals_per_day` sets the vocabulary of the time-of-day
    /// embedding (α in §V-B1).
    pub fn new(
        graph: &EdgeGraph,
        m: usize,
        intervals_per_day: usize,
        cfg: ModelConfig,
        seed: u64,
    ) -> Self {
        let mut rng = seeded(seed);
        let mut store = ParamStore::new();
        let encoder = Encoder::new(graph, m, &cfg, &mut store, &mut rng);
        let beta = cfg.context_dim;
        let n = graph.num_nodes();
        let out_m = match cfg.output {
            OutputKind::Histogram => m,
            OutputKind::Average => 1,
        };
        let time_emb = Embedding::new(&mut store, &mut rng, "ctx.time", intervals_per_day, beta);
        let day_emb = Embedding::new(&mut store, &mut rng, "ctx.day", 7, beta);
        let row_fc = Dense::new(&mut store, &mut rng, "ctx.row", n, beta);
        let cp_time = CpCnn::new(&mut store, &mut rng, "cp.time", beta, out_m, &cfg.cp_cnn);
        let cp_day = CpCnn::new(&mut store, &mut rng, "cp.day", beta, out_m, &cfg.cp_cnn);
        let cp_row = CpCnn::new(&mut store, &mut rng, "cp.row", beta, out_m, &cfg.cp_cnn);
        Self {
            store,
            encoder,
            cfg,
            time_emb,
            day_emb,
            row_fc,
            cp_time,
            cp_day,
            cp_row,
            rng,
            last_report: TrainReport::default(),
        }
    }

    /// The training report of the last fit.
    pub fn last_report(&self) -> &TrainReport {
        &self.last_report
    }

    /// Number of edges `n` in the served graph.
    pub fn num_edges(&self) -> usize {
        self.encoder.num_edges()
    }

    /// Number of histogram buckets `m`.
    pub fn num_buckets(&self) -> usize {
        self.encoder.num_buckets()
    }

    /// Output head kind.
    pub fn output_kind(&self) -> OutputKind {
        self.encoder.output_kind()
    }

    /// Output columns (`m` for HIST, 1 for AVG).
    pub fn output_cols(&self) -> usize {
        self.encoder.output_cols()
    }

    /// Time-of-day vocabulary α of the context embedding.
    pub fn intervals_per_day(&self) -> usize {
        self.store.value(self.time_emb.table).rows()
    }

    /// Whitespace-free architecture token, written into checkpoint
    /// headers and validated on load. Includes the context vocabulary
    /// (α, β) and the context mask, since they change the served
    /// function even when the parameter shapes agree.
    pub fn arch_string(&self) -> String {
        let mask = self.cfg.context_mask;
        format!(
            "agcwc:n{}:m{}:a{}:b{}:mask{}{}{}:{}",
            self.encoder.num_edges(),
            self.encoder.num_buckets(),
            self.intervals_per_day(),
            self.cfg.context_dim,
            u8::from(mask[0]),
            u8::from(mask[1]),
            u8::from(mask[2]),
            self.cfg.arch_signature()
        )
    }

    /// Saves the trained parameters to a checkpoint file (with the
    /// architecture token in the header).
    pub fn save(&self, path: &std::path::Path) -> Result<(), gcwc_nn::PersistError> {
        gcwc_nn::persist::save_with_arch(&self.store, path, &self.arch_string())
    }

    /// Restores parameters from a checkpoint produced by a model with
    /// the identical architecture (header validated when present).
    pub fn load(&mut self, path: &std::path::Path) -> Result<(), gcwc_nn::PersistError> {
        let arch = self.arch_string();
        gcwc_nn::persist::load_expecting(&mut self.store, path, Some(&arch))
    }

    /// `P(X_i)`: softmax over the embedded context, as a `β × 1` column.
    fn context_distribution(&self, tape: &mut Tape, raw: NodeId) -> NodeId {
        let sm = tape.softmax_rows(raw); // 1 × β
        tape.transpose(sm) // β × 1
    }

    /// Full forward pass producing `W̃` (Eq. 10).
    ///
    /// During training, denoising augmentation re-masks observed input
    /// rows (and the `X_R` row flags along with them).
    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        sample: &TrainSample,
        train: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let row_dropout = if train { self.cfg.row_dropout } else { 0.0 };
        let (input, row_flags) = crate::task::corrupt_input_pooled(
            &sample.input,
            &sample.context.row_flags,
            row_dropout,
            rng,
            tape.pool_mut(),
        );
        // Basic GCWC output P(Z).
        let pz = self.encoder.output(tape, store, &input, train, rng);
        tape.pool_mut().give(input);

        // Context distributions.
        let t_raw = self.time_emb.lookup(tape, store, sample.context.time_of_day);
        let p_t = self.context_distribution(tape, t_raw);
        let d_raw = self.day_emb.lookup(tape, store, sample.context.day_of_week);
        let p_d = self.context_distribution(tape, d_raw);
        let flags = tape.constant_row(&row_flags);
        tape.pool_mut().give_vec(row_flags);
        let r_raw = self.row_fc.apply(tape, store, flags);
        let p_r = self.context_distribution(tape, r_raw);

        // Per-context conditionals P(Z|X_i), restricted to the enabled
        // contexts (the paper enables all three; ablations use subsets).
        // Fixed-capacity storage: at most three contexts, no heap use.
        let mask = self.cfg.context_mask;
        let mut conditionals = [None; 3];
        let mut n_ctx = 0usize;
        if mask[0] {
            conditionals[n_ctx] = Some(self.cp_time.apply(tape, store, p_t, pz));
            n_ctx += 1;
        }
        if mask[1] {
            conditionals[n_ctx] = Some(self.cp_day.apply(tape, store, p_d, pz));
            n_ctx += 1;
        }
        if mask[2] {
            conditionals[n_ctx] = Some(self.cp_row.apply(tape, store, p_r, pz));
            n_ctx += 1;
        }
        if n_ctx == 0 {
            return pz; // no contexts: A-GCWC degenerates to GCWC
        }
        let conditionals = conditionals.iter().flatten().copied();

        match self.cfg.output {
            OutputKind::Histogram => {
                // Eq. 9: ∏ P(Z|X_i) / P(Z)^(N−1), then row normalisation.
                let mut num: Option<NodeId> = None;
                for z in conditionals {
                    let c = tape.softmax_rows(z);
                    num = Some(match num {
                        None => c,
                        Some(acc) => tape.mul(acc, c),
                    });
                }
                let num = num.expect("non-empty");
                let mut den = pz;
                for _ in 2..n_ctx {
                    den = tape.mul(den, pz);
                }
                let out = if n_ctx >= 2 { tape.div_eps(num, den, BAYES_EPS) } else { num };
                tape.normalize_rows(out, 1e-12)
            }
            OutputKind::Average => {
                // Scalar outputs: combine in log space and squash with a
                // sigmoid (the paper replaces the Eq. 10 normalisation by
                // a sigmoid for the AVG functionality, §VI-A.3).
                let mut sum: Option<NodeId> = None;
                for z in conditionals {
                    let sgm = tape.sigmoid(z);
                    let lg = tape.log_eps(sgm, LOSS_EPS);
                    sum = Some(match sum {
                        None => lg,
                        Some(acc) => tape.add(acc, lg),
                    });
                }
                let sum = sum.expect("non-empty");
                let l_z = tape.log_eps(pz, LOSS_EPS);
                let den = tape.scale(l_z, (n_ctx as f64) - 1.0);
                let logit = tape.sub(sum, den);
                tape.sigmoid(logit)
            }
        }
    }

    /// `P(X_i)` for an embedded context, tape-free: softmax of the
    /// embedding-table row as a pooled `β × 1` column.
    fn infer_embedding_col(&self, ws: &mut InferWorkspace, emb: &Embedding, idx: usize) -> Matrix {
        let table = self.store.value(emb.table);
        let beta = table.cols();
        let mut raw = ws.pool.take_raw(1, beta);
        raw.row_mut(0).copy_from_slice(table.row(idx));
        ops::softmax_rows_in_place(&mut raw);
        let mut col = ws.pool.take_raw(beta, 1);
        raw.transpose_into(&mut col);
        ws.pool.give(raw);
        col
    }

    /// `P(X_R)` from the per-edge coverage flags, tape-free.
    fn infer_row_col(&self, ws: &mut InferWorkspace, flags: &[f64]) -> Matrix {
        let w = self.store.value(self.row_fc.w);
        let b = self.store.value(self.row_fc.b);
        assert_eq!(flags.len(), w.rows(), "row-flag length mismatch");
        let mut fl = ws.pool.take_raw(1, flags.len());
        fl.row_mut(0).copy_from_slice(flags);
        let mut raw = ws.pool.take_raw(1, w.cols());
        fl.matmul_into(w, &mut raw);
        ops::add_row_broadcast_assign(&mut raw, b);
        ws.pool.give(fl);
        ops::softmax_rows_in_place(&mut raw);
        let mut col = ws.pool.take_raw(w.cols(), 1);
        raw.transpose_into(&mut col);
        ws.pool.give(raw);
        col
    }

    /// Tape-free batched inference: runs `count` requests (provided by
    /// `req`, indexed `0..count`) through one coalesced base-GCWC pass,
    /// then applies each request's context module and Bayesian
    /// combination (Eq. 9/10), writing request `r`'s completed matrix
    /// into `outs[r]` (pre-shaped `n × output_cols`). Bit-identical per
    /// request to [`CompletionModel::predict`]; allocation-free once
    /// `ws` is warm.
    pub fn infer_into<'r, F>(
        &self,
        ws: &mut InferWorkspace,
        count: usize,
        req: F,
        outs: &mut [Matrix],
    ) where
        F: Fn(usize) -> InferRequest<'r>,
    {
        let (n, m) = (self.encoder.num_edges(), self.encoder.num_buckets());
        let out_cols = self.encoder.output_cols();
        assert!(outs.len() >= count, "missing output buffers");

        // Batched base pass: P(Z) for every request in one forward.
        let mut wide = ws.pool.take_raw(n, count * m);
        for r in 0..count {
            let rq = req(r);
            assert_eq!(rq.input.shape(), (n, m), "request input shape mismatch");
            assert_eq!(rq.row_flags.len(), n, "row-flag length mismatch");
            for i in 0..n {
                wide.row_mut(i)[r * m..(r + 1) * m].copy_from_slice(rq.input.row(i));
            }
        }
        // The per-request P(Z) buffers live in the workspace between
        // calls; move them out so the workspace can be re-borrowed.
        let mut pzs = std::mem::take(&mut ws.scratch);
        for slot in pzs.iter_mut() {
            if slot.shape() != (n, out_cols) {
                let stale = std::mem::replace(slot, ws.pool.take_raw(n, out_cols));
                ws.pool.give(stale);
            }
        }
        while pzs.len() < count {
            let fresh = ws.pool.take_raw(n, out_cols);
            pzs.push(fresh);
        }
        self.encoder.infer_outputs(&self.store, ws, &wide, count, &mut pzs[..count]);
        ws.pool.give(wide);

        let mask = self.cfg.context_mask;
        let n_ctx = mask.iter().filter(|&&b| b).count();
        for r in 0..count {
            let rq = req(r);
            let pz = &pzs[r];
            let out = &mut outs[r];
            assert_eq!(out.shape(), (n, out_cols), "output buffer shape mismatch");
            if n_ctx == 0 {
                out.copy_from(pz); // no contexts: degenerates to GCWC
                continue;
            }

            // Conditionals P(Z|X_i) for the enabled contexts, in the
            // same order as the tape forward: time, day, row.
            let mut conds: [Option<Matrix>; 3] = [None, None, None];
            let mut k = 0usize;
            if mask[0] {
                let px = self.infer_embedding_col(ws, &self.time_emb, rq.time_of_day);
                let mut c = ws.pool.take_raw(n, out_cols);
                self.cp_time.infer_into(&self.store, ws, &px, pz, &mut c);
                ws.pool.give(px);
                conds[k] = Some(c);
                k += 1;
            }
            if mask[1] {
                let px = self.infer_embedding_col(ws, &self.day_emb, rq.day_of_week);
                let mut c = ws.pool.take_raw(n, out_cols);
                self.cp_day.infer_into(&self.store, ws, &px, pz, &mut c);
                ws.pool.give(px);
                conds[k] = Some(c);
                k += 1;
            }
            if mask[2] {
                let px = self.infer_row_col(ws, rq.row_flags);
                let mut c = ws.pool.take_raw(n, out_cols);
                self.cp_row.infer_into(&self.store, ws, &px, pz, &mut c);
                ws.pool.give(px);
                conds[k] = Some(c);
            }

            match self.cfg.output {
                OutputKind::Histogram => {
                    // Eq. 9: ∏ P(Z|X_i) / P(Z)^(N−1), then normalise.
                    let mut num: Option<Matrix> = None;
                    for slot in conds.iter_mut() {
                        let Some(mut c) = slot.take() else { continue };
                        ops::softmax_rows_in_place(&mut c);
                        num = Some(match num {
                            None => c,
                            Some(mut acc) => {
                                acc.zip_assign(&c, |x, y| x * y);
                                ws.pool.give(c);
                                acc
                            }
                        });
                    }
                    let mut num = num.expect("non-empty");
                    if n_ctx >= 2 {
                        let mut den = ws.pool.take_raw(n, out_cols);
                        den.copy_from(pz);
                        for _ in 2..n_ctx {
                            den.zip_assign(pz, |x, y| x * y);
                        }
                        num.zip_assign(&den, |x, y| x / (y + BAYES_EPS));
                        ws.pool.give(den);
                    }
                    ops::normalize_rows_in_place(&mut num, 1e-12);
                    out.copy_from(&num);
                    ws.pool.give(num);
                }
                OutputKind::Average => {
                    // Log-space combination squashed by a sigmoid, as in
                    // the tape forward.
                    let mut sum: Option<Matrix> = None;
                    for slot in conds.iter_mut() {
                        let Some(mut c) = slot.take() else { continue };
                        c.map_inplace(|t| 1.0 / (1.0 + (-t).exp()));
                        c.map_inplace(|t| (t + LOSS_EPS).ln());
                        sum = Some(match sum {
                            None => c,
                            Some(mut acc) => {
                                acc.zip_assign(&c, |x, y| x + y);
                                ws.pool.give(c);
                                acc
                            }
                        });
                    }
                    let mut sum = sum.expect("non-empty");
                    let mut lz = ws.pool.take_raw(n, out_cols);
                    lz.copy_from(pz);
                    lz.map_inplace(|t| (t + LOSS_EPS).ln());
                    let s = (n_ctx as f64) - 1.0;
                    lz.map_inplace(|t| t * s);
                    sum.zip_assign(&lz, |x, y| x - y);
                    ws.pool.give(lz);
                    sum.map_inplace(|t| 1.0 / (1.0 + (-t).exp()));
                    out.copy_from(&sum);
                    ws.pool.give(sum);
                }
            }
        }
        ws.scratch = pzs;
    }

    /// Single-request convenience wrapper over [`AGcwcModel::infer_into`];
    /// the returned matrix comes from the workspace pool (return it with
    /// [`InferWorkspace::give`] for reuse).
    pub fn infer(
        &self,
        ws: &mut InferWorkspace,
        input: &Matrix,
        time_of_day: usize,
        day_of_week: usize,
        row_flags: &[f64],
    ) -> Matrix {
        let mut out = ws.take(self.num_edges(), self.output_cols());
        let rq = InferRequest { input, time_of_day, day_of_week, row_flags };
        self.infer_into(ws, 1, |_| rq, std::slice::from_mut(&mut out));
        out
    }

    fn sample_loss(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        sample: &TrainSample,
        rng: &mut StdRng,
    ) -> NodeId {
        let pred = self.forward(tape, store, sample, true, rng);
        match self.cfg.output {
            OutputKind::Histogram => {
                tape.kl_loss_masked_ref(pred, &sample.label, &sample.label_mask, LOSS_EPS)
            }
            OutputKind::Average => tape.mse_masked_rows(pred, &sample.label, &sample.label_mask),
        }
    }
}

impl AGcwcModel {
    /// Fallible training with explicit robustness controls (divergence
    /// guard + optional checkpoint-and-resume); see
    /// [`GcwcModel::try_fit`](crate::GcwcModel::try_fit).
    pub fn try_fit(
        &mut self,
        samples: &[TrainSample],
        control: &TrainControl,
    ) -> Result<(), TrainError> {
        let mut rng = seeded(self.rng.random());
        // `run_training_guarded` needs `&mut self.store` while the
        // closure reads the rest of `self`; move the store out for the
        // duration.
        let mut store = std::mem::take(&mut self.store);
        let this: &Self = self;
        let report = run_training_guarded(
            &mut store,
            this.cfg.optim,
            this.cfg.epochs,
            this.cfg.batch_size,
            gcwc_linalg::Threads::fixed(this.cfg.threads),
            samples,
            &mut rng,
            control,
            |tape, store, sample, rng| this.sample_loss(tape, store, sample, rng),
        );
        self.store = store;
        self.last_report = report?;
        Ok(())
    }

    /// Warm-start fine-tuning under `plan`'s epoch count and scaled
    /// learning rate; see [`GcwcModel::fine_tune`](crate::GcwcModel::fine_tune).
    pub fn fine_tune(
        &mut self,
        samples: &[TrainSample],
        plan: &crate::train::FineTunePlan,
        control: &TrainControl,
    ) -> Result<(), TrainError> {
        let saved_epochs = self.cfg.epochs;
        let saved_lr = self.cfg.optim.learning_rate;
        self.cfg.epochs = plan.epochs.max(1);
        self.cfg.optim.learning_rate = saved_lr * plan.lr_scale;
        let result = self.try_fit(samples, control);
        self.cfg.epochs = saved_epochs;
        self.cfg.optim.learning_rate = saved_lr;
        result
    }
}

impl CompletionModel for AGcwcModel {
    fn name(&self) -> String {
        "A-GCWC".to_owned()
    }

    fn fit(&mut self, samples: &[TrainSample]) {
        self.try_fit(samples, &TrainControl::default())
            .unwrap_or_else(|e| panic!("A-GCWC training failed: {e}"));
    }

    fn predict(&self, sample: &TrainSample) -> Matrix {
        let mut tape = Tape::new();
        let mut rng = seeded(0);
        let out = self.forward(&mut tape, &self.store, sample, false, &mut rng);
        tape.value(out).clone()
    }

    fn num_params(&self) -> usize {
        self.store.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{build_samples, TaskKind};
    use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

    fn tiny_setup() -> (gcwc_traffic::NetworkInstance, gcwc_traffic::Dataset) {
        let hw = generators::highway_tollgate(1);
        let cfg = SimConfig {
            days: 2,
            intervals_per_day: 16,
            records_per_interval: 10.0,
            ..Default::default()
        };
        let data = simulate(&hw, HistogramSpec::hist8(), &cfg);
        let ds = data.to_dataset(0.5, 5, 11);
        (hw, ds)
    }

    #[test]
    fn fit_reduces_loss_and_outputs_valid_histograms() {
        let (hw, ds) = tiny_setup();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let cfg = ModelConfig::hw_hist().with_epochs(6);
        let mut model = AGcwcModel::new(&hw.graph, 8, 16, cfg, 42);
        model.fit(&samples);
        let losses = &model.last_report().epoch_losses;
        assert!(losses.last().unwrap() < &losses[0], "loss should drop: {losses:?}");
        let pred = model.predict(&samples[0]);
        assert_eq!(pred.shape(), (24, 8));
        for i in 0..24 {
            let s: f64 = pred.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
            assert!(pred.row(i).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn has_more_params_than_gcwc() {
        let (hw, _) = tiny_setup();
        let gcwc = crate::model::gcwc::GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist(), 1);
        let agcwc = AGcwcModel::new(&hw.graph, 8, 96, ModelConfig::hw_hist(), 1);
        assert!(agcwc.num_params() > gcwc.num_params());
        // The context module is small relative to the base model
        // (Table III: ~1k extra parameters).
        assert!(agcwc.num_params() < gcwc.num_params() + 3_000);
    }

    #[test]
    fn average_variant_outputs_unit_column() {
        let (hw, ds) = tiny_setup();
        let idx: Vec<usize> = (0..10).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Average, 0);
        let cfg = ModelConfig::hw_avg().with_epochs(3);
        let mut model = AGcwcModel::new(&hw.graph, 8, 16, cfg, 9);
        model.fit(&samples);
        let pred = model.predict(&samples[0]);
        assert_eq!(pred.shape(), (24, 1));
        assert!(pred.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn empty_context_mask_degenerates_to_base_output() {
        let (hw, ds) = tiny_setup();
        let idx: Vec<usize> = (0..6).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let mut cfg = ModelConfig::hw_hist().with_epochs(2);
        cfg.context_mask = [false, false, false];
        let mut model = AGcwcModel::new(&hw.graph, 8, 16, cfg, 3);
        model.fit(&samples);
        // With no contexts the Bayesian module is bypassed: predictions
        // are the base GCWC softmax, and contexts no longer matter.
        let mut other = samples[0].clone();
        other.context.time_of_day = (samples[0].context.time_of_day + 5) % 16;
        other.context.day_of_week = 6;
        assert_eq!(model.predict(&samples[0]), model.predict(&other));
    }

    #[test]
    fn single_context_mask_trains_and_predicts() {
        let (hw, ds) = tiny_setup();
        let idx: Vec<usize> = (0..6).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        for mask in [[true, false, false], [false, true, false], [false, false, true]] {
            let mut cfg = ModelConfig::hw_hist().with_epochs(2);
            cfg.context_mask = mask;
            let mut model = AGcwcModel::new(&hw.graph, 8, 16, cfg, 4);
            model.fit(&samples);
            let pred = model.predict(&samples[0]);
            for i in 0..24 {
                let s: f64 = pred.row(i).iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "mask {mask:?} row {i} sums to {s}");
            }
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        let (hw, ds) = tiny_setup();
        let idx: Vec<usize> = (0..6).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let cfg = ModelConfig::hw_hist().with_epochs(2);
        let mut model = AGcwcModel::new(&hw.graph, 8, 16, cfg.clone(), 8);
        model.fit(&samples);
        let expected = model.predict(&samples[1]);
        let dir = std::env::temp_dir().join("gcwc_agcwc_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("agcwc.ckpt");
        model.save(&path).unwrap();
        let mut restored = AGcwcModel::new(&hw.graph, 8, 16, cfg, 12345);
        restored.load(&path).unwrap();
        assert_eq!(restored.predict(&samples[1]), expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn different_contexts_change_predictions() {
        let (hw, ds) = tiny_setup();
        let idx: Vec<usize> = (0..10).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let cfg = ModelConfig::hw_hist().with_epochs(4);
        let mut model = AGcwcModel::new(&hw.graph, 8, 16, cfg, 5);
        model.fit(&samples);
        let mut other = samples[0].clone();
        other.context.time_of_day = (samples[0].context.time_of_day + 8) % 16;
        other.context.day_of_week = 6;
        let a = model.predict(&samples[0]);
        let b = model.predict(&other);
        assert_ne!(a, b, "contexts must influence the completion");
    }
}
