//! Tape-free batched inference for GCWC / A-GCWC.
//!
//! Training builds a [`gcwc_nn::Tape`] so gradients can flow backwards;
//! serving does not need gradients, so this module provides a forward
//! path that skips graph construction entirely and draws every
//! intermediate from a private [`BufferPool`] — steady-state inference
//! performs **zero heap allocations** once the pool is warm.
//!
//! The arithmetic is shared with the tape (see `gcwc_nn::ops`), and all
//! batched kernels compute each request's column block independently,
//! so the output of a coalesced batch is **bit-identical** to running
//! each request through [`crate::GcwcModel::predict`] /
//! [`crate::AGcwcModel::predict`] one at a time (asserted by
//! `tests/infer_equivalence.rs`).

use gcwc_linalg::{BufferPool, Matrix};

/// One inference request: an observed (partial) weight matrix plus the
/// A-GCWC context. GCWC ignores the context fields.
#[derive(Clone, Copy)]
pub struct InferRequest<'a> {
    /// Observed `n × m` weight matrix (zero rows = missing edges).
    pub input: &'a Matrix,
    /// Time-of-day interval index (`0..intervals_per_day`).
    pub time_of_day: usize,
    /// Day-of-week index (`0..7`).
    pub day_of_week: usize,
    /// Per-edge coverage flags (`1.0` observed, `0.0` missing), length
    /// `n`.
    pub row_flags: &'a [f64],
}

/// Reusable scratch for the tape-free forward pass.
///
/// Create one per serving thread and pass it to every call; after the
/// first few passes of a given shape the internal pool is warm and
/// inference allocates nothing.
#[derive(Default)]
pub struct InferWorkspace {
    /// Buffer pool every intermediate matrix is drawn from.
    pub(crate) pool: BufferPool,
    /// Polynomial-basis tap scratch.
    pub(crate) saved: Vec<Matrix>,
    /// Max-pool argmax scratch.
    pub(crate) argmax: Vec<usize>,
    /// Per-request intermediate outputs (A-GCWC's `p(z)` head).
    pub(crate) scratch: Vec<Matrix>,
}

impl InferWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows a `rows × cols` matrix from the workspace pool (contents
    /// unspecified). Use for output buffers passed to `infer_into`.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        self.pool.take_raw(rows, cols)
    }

    /// Returns a matrix to the workspace pool for reuse.
    pub fn give(&mut self, m: Matrix) {
        self.pool.give(m);
    }

    /// The underlying pool's hit/miss counters, for diagnostics.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.hits(), self.pool.misses())
    }
}
