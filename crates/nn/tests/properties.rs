//! Property-based tests for tape semantics (beyond the pointwise
//! gradient checks in `gradients.rs`).

use gcwc_linalg::Matrix;
use gcwc_nn::{ParamStore, Tape};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tape's arithmetic agrees with direct matrix arithmetic.
    #[test]
    fn tape_arithmetic_matches_matrices(a in matrix(3, 4), b in matrix(3, 4)) {
        let mut tape = Tape::new();
        let an = tape.constant(a.clone());
        let bn = tape.constant(b.clone());
        let sum = tape.add(an, bn);
        let diff = tape.sub(an, bn);
        let prod = tape.mul(an, bn);
        prop_assert_eq!(tape.value(sum), &(&a + &b));
        prop_assert_eq!(tape.value(diff), &(&a - &b));
        prop_assert_eq!(tape.value(prod), &a.hadamard(&b));
    }

    /// Softmax output rows always form distributions.
    #[test]
    fn softmax_always_normalises(x in matrix(4, 6)) {
        let mut tape = Tape::new();
        let xn = tape.constant(x);
        let y = tape.softmax_rows(xn);
        for i in 0..4 {
            let s: f64 = tape.value(y).row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(tape.value(y).row(i).iter().all(|&p| p > 0.0));
        }
    }

    /// Gradient accumulation is additive: backward of (f + f) gives
    /// exactly twice the gradient of f.
    #[test]
    fn gradients_are_additive(a in matrix(2, 3)) {
        let grad_of = |double: bool| -> Vec<f64> {
            let mut store = ParamStore::new();
            let id = store.add("x", a.clone());
            let mut tape = Tape::new();
            let x = tape.param(&store, id);
            let sq = tape.mul(x, x);
            let one = tape.sum_all(sq);
            let loss = if double { tape.add(one, one) } else { one };
            let loss = tape.sum_all(loss);
            tape.backward(loss, &mut store);
            store.grad(id).as_slice().to_vec()
        };
        let single = grad_of(false);
        let double = grad_of(true);
        for (s, d) in single.iter().zip(&double) {
            prop_assert!((2.0 * s - d).abs() < 1e-9);
        }
    }

    /// Linearity of the backward pass: grad of (c·f) = c · grad f.
    #[test]
    fn backward_is_linear_in_scaling(a in matrix(2, 2), c in -3.0f64..3.0) {
        let grad_of = |scale: f64| -> Vec<f64> {
            let mut store = ParamStore::new();
            let id = store.add("x", a.clone());
            let mut tape = Tape::new();
            let x = tape.param(&store, id);
            let t = tape.tanh(x);
            let scaled = tape.scale(t, scale);
            let loss = tape.sum_all(scaled);
            tape.backward(loss, &mut store);
            store.grad(id).as_slice().to_vec()
        };
        let base = grad_of(1.0);
        let scaled = grad_of(c);
        for (b, s) in base.iter().zip(&scaled) {
            prop_assert!((c * b - s).abs() < 1e-9, "{} vs {}", c * b, s);
        }
    }

    /// Reshape and transpose round-trips preserve both values and
    /// gradients.
    #[test]
    fn transpose_roundtrip_is_identity(a in matrix(3, 5)) {
        let mut store = ParamStore::new();
        let id = store.add("x", a.clone());
        let mut tape = Tape::new();
        let x = tape.param(&store, id);
        let t = tape.transpose(x);
        let tt = tape.transpose(t);
        prop_assert_eq!(tape.value(tt), &a);
        let w = tape.constant(Matrix::from_fn(3, 5, |i, j| (i + 2 * j) as f64));
        let prod = tape.mul(tt, w);
        let loss = tape.sum_all(prod);
        tape.backward(loss, &mut store);
        // d(sum(x ⊙ w))/dx = w regardless of the double transpose.
        prop_assert_eq!(store.grad(id), &Matrix::from_fn(3, 5, |i, j| (i + 2 * j) as f64));
    }

    /// Dropout in eval style (all-ones mask) is the identity.
    #[test]
    fn unit_dropout_mask_is_identity(a in matrix(3, 3)) {
        let mut tape = Tape::new();
        let x = tape.constant(a.clone());
        let y = tape.dropout(x, Matrix::filled(3, 3, 1.0));
        prop_assert_eq!(tape.value(y), &a);
    }

    /// normalize_rows of positive matrices always yields distributions
    /// and is idempotent.
    #[test]
    fn normalize_rows_is_idempotent(raw in proptest::collection::vec(0.01f64..5.0, 12)) {
        let a = Matrix::from_vec(3, 4, raw);
        let mut tape = Tape::new();
        let x = tape.constant(a);
        let once = tape.normalize_rows(x, 0.0);
        let twice = tape.normalize_rows(once, 0.0);
        let v1 = tape.value(once).clone();
        prop_assert!(v1.approx_eq(tape.value(twice), 1e-12));
        for i in 0..3 {
            prop_assert!((v1.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }
}
