//! Finite-difference validation of every tape operation's backward rule.

use std::sync::Arc;

use gcwc_graph::{ChebyshevBasis, PoolingMap, RandomWalkBasis};
use gcwc_linalg::rng::seeded;
use gcwc_linalg::{CsrMatrix, Matrix};
use gcwc_nn::gradcheck::{assert_gradients, assert_gradients_buffered};
use gcwc_nn::{ConvSpec, GradBuffer, ParamStore, PoolSpec, Tape};

const TOL: f64 = 1e-5;

fn rand_param(
    store: &mut ParamStore,
    name: &str,
    r: usize,
    c: usize,
    seed: u64,
) -> gcwc_nn::ParamId {
    let mut rng = seeded(seed);
    store.add(name, gcwc_nn::init::glorot_uniform(&mut rng, r, c))
}

/// A generic scalarisation: weighted sum so gradients are non-uniform.
fn weighted_sum(tape: &mut Tape, x: gcwc_nn::NodeId) -> gcwc_nn::NodeId {
    let v = tape.value(x).clone();
    let weights =
        Matrix::from_fn(v.rows(), v.cols(), |i, j| 0.3 + 0.1 * (i as f64) - 0.07 * (j as f64));
    let w = tape.constant(weights);
    let prod = tape.mul(x, w);
    tape.sum_all(prod)
}

#[test]
fn grad_add_sub_mul() {
    let mut store = ParamStore::new();
    let a = rand_param(&mut store, "a", 3, 4, 1);
    let b = rand_param(&mut store, "b", 3, 4, 2);
    assert_gradients(
        &mut store,
        |tape, store| {
            let an = tape.param(store, a);
            let bn = tape.param(store, b);
            let s = tape.add(an, bn);
            let d = tape.sub(s, bn);
            let m = tape.mul(d, s);
            weighted_sum(tape, m)
        },
        TOL,
    );
}

#[test]
fn grad_div_eps() {
    let mut store = ParamStore::new();
    let a = rand_param(&mut store, "a", 2, 3, 3);
    // Keep denominators away from zero.
    let mut rng = seeded(4);
    let b = store
        .add("b", Matrix::from_fn(2, 3, |_, _| 1.0 + gcwc_linalg::rng::normal(&mut rng).abs()));
    assert_gradients(
        &mut store,
        |tape, store| {
            let an = tape.param(store, a);
            let bn = tape.param(store, b);
            let q = tape.div_eps(an, bn, 1e-6);
            weighted_sum(tape, q)
        },
        TOL,
    );
}

#[test]
fn grad_matmul_chain() {
    let mut store = ParamStore::new();
    let a = rand_param(&mut store, "a", 3, 4, 5);
    let b = rand_param(&mut store, "b", 4, 2, 6);
    let c = rand_param(&mut store, "c", 2, 3, 7);
    assert_gradients(
        &mut store,
        |tape, store| {
            let an = tape.param(store, a);
            let bn = tape.param(store, b);
            let cn = tape.param(store, c);
            let ab = tape.matmul(an, bn);
            let abc = tape.matmul(ab, cn);
            weighted_sum(tape, abc)
        },
        TOL,
    );
}

#[test]
fn grad_bias_broadcast() {
    let mut store = ParamStore::new();
    let x = rand_param(&mut store, "x", 4, 3, 8);
    let b = rand_param(&mut store, "b", 1, 3, 9);
    assert_gradients(
        &mut store,
        |tape, store| {
            let xn = tape.param(store, x);
            let bn = tape.param(store, b);
            let y = tape.add_row_broadcast(xn, bn);
            weighted_sum(tape, y)
        },
        TOL,
    );
}

#[test]
fn grad_activations() {
    let mut store = ParamStore::new();
    let x = rand_param(&mut store, "x", 3, 3, 10);
    assert_gradients(
        &mut store,
        |tape, store| {
            let xn = tape.param(store, x);
            let t = tape.tanh(xn);
            let s = tape.sigmoid(t);
            weighted_sum(tape, s)
        },
        TOL,
    );
}

#[test]
fn grad_relu() {
    let mut store = ParamStore::new();
    // Offsets keep entries away from the kink at 0 where the numeric
    // derivative is undefined.
    let mut rng = seeded(11);
    let x = store.add(
        "x",
        Matrix::from_fn(3, 3, |_, _| {
            let v = gcwc_linalg::rng::normal(&mut rng);
            if v.abs() < 0.2 {
                v + 0.5
            } else {
                v
            }
        }),
    );
    assert_gradients(
        &mut store,
        |tape, store| {
            let xn = tape.param(store, x);
            let y = tape.relu(xn);
            weighted_sum(tape, y)
        },
        TOL,
    );
}

#[test]
fn grad_log_and_pow() {
    let mut store = ParamStore::new();
    let mut rng = seeded(12);
    let x = store
        .add("x", Matrix::from_fn(2, 3, |_, _| 0.5 + gcwc_linalg::rng::normal(&mut rng).abs()));
    assert_gradients(
        &mut store,
        |tape, store| {
            let xn = tape.param(store, x);
            let l = tape.log_eps(xn, 1e-6);
            let p = tape.pow_scalar(xn, 2.0);
            let s = tape.add(l, p);
            weighted_sum(tape, s)
        },
        TOL,
    );
}

#[test]
fn grad_softmax_rows() {
    let mut store = ParamStore::new();
    let x = rand_param(&mut store, "x", 4, 5, 13);
    assert_gradients(
        &mut store,
        |tape, store| {
            let xn = tape.param(store, x);
            let y = tape.softmax_rows(xn);
            weighted_sum(tape, y)
        },
        TOL,
    );
}

#[test]
fn grad_normalize_rows() {
    let mut store = ParamStore::new();
    let mut rng = seeded(14);
    let x = store
        .add("x", Matrix::from_fn(3, 4, |_, _| 0.3 + gcwc_linalg::rng::normal(&mut rng).abs()));
    assert_gradients(
        &mut store,
        |tape, store| {
            let xn = tape.param(store, x);
            let y = tape.normalize_rows(xn, 1e-9);
            weighted_sum(tape, y)
        },
        TOL,
    );
}

#[test]
fn grad_reshape_hstack_select() {
    let mut store = ParamStore::new();
    let a = rand_param(&mut store, "a", 3, 4, 15);
    let b = rand_param(&mut store, "b", 3, 2, 16);
    assert_gradients(
        &mut store,
        |tape, store| {
            let an = tape.param(store, a);
            let bn = tape.param(store, b);
            let stacked = tape.hstack(&[an, bn]); // 3x6
            let reshaped = tape.reshape(stacked, 2, 9);
            let row = tape.select_row(reshaped, 1);
            weighted_sum(tape, row)
        },
        TOL,
    );
}

#[test]
fn grad_dropout_mask_is_linear() {
    let mut store = ParamStore::new();
    let x = rand_param(&mut store, "x", 3, 3, 17);
    let mask = gcwc_nn::dropout_mask(&mut seeded(18), 3, 3, 0.4);
    assert_gradients(
        &mut store,
        move |tape, store| {
            let xn = tape.param(store, x);
            let y = tape.dropout(xn, mask.clone());
            weighted_sum(tape, y)
        },
        TOL,
    );
}

fn path_adjacency(n: usize) -> CsrMatrix {
    CsrMatrix::from_triplets(n, n, (0..n - 1).flat_map(|i| [(i, i + 1, 1.0), (i + 1, i, 1.0)]))
}

#[test]
fn grad_chebyshev_conv() {
    let mut store = ParamStore::new();
    let n = 6;
    let (c_in, c_out, k) = (3, 2, 4);
    let x = rand_param(&mut store, "x", n, c_in, 19);
    let thetas: Vec<_> = (0..k)
        .map(|i| rand_param(&mut store, &format!("theta{i}"), c_in, c_out, 20 + i as u64))
        .collect();
    let basis: Arc<dyn gcwc_graph::PolyBasis> =
        Arc::new(ChebyshevBasis::from_adjacency(&path_adjacency(n), k));
    assert_gradients(
        &mut store,
        move |tape, store| {
            let xn = tape.param(store, x);
            let th: Vec<_> = thetas.iter().map(|&t| tape.param(store, t)).collect();
            let y = tape.poly_conv(xn, &th, Arc::clone(&basis));
            weighted_sum(tape, y)
        },
        TOL,
    );
}

#[test]
fn grad_random_walk_conv() {
    let mut store = ParamStore::new();
    let n = 5;
    let (c_in, c_out, k) = (2, 3, 3);
    let x = rand_param(&mut store, "x", n, c_in, 30);
    let thetas: Vec<_> = (0..k)
        .map(|i| rand_param(&mut store, &format!("theta{i}"), c_in, c_out, 31 + i as u64))
        .collect();
    let basis: Arc<dyn gcwc_graph::PolyBasis> =
        Arc::new(RandomWalkBasis::from_adjacency(&path_adjacency(n), k));
    assert_gradients(
        &mut store,
        move |tape, store| {
            let xn = tape.param(store, x);
            let th: Vec<_> = thetas.iter().map(|&t| tape.param(store, t)).collect();
            let y = tape.poly_conv(xn, &th, Arc::clone(&basis));
            weighted_sum(tape, y)
        },
        TOL,
    );
}

#[test]
fn grad_graph_max_pool() {
    let mut store = ParamStore::new();
    // Values spread out so the argmax is stable under the probe step.
    let x = store.add("x", Matrix::from_fn(6, 2, |i, j| (i * 2 + j) as f64 * 0.7 - 3.0));
    let map = Arc::new(PoolingMap::new(vec![vec![0, 1], vec![2, 3, 4], vec![5]], 6));
    assert_gradients(
        &mut store,
        move |tape, store| {
            let xn = tape.param(store, x);
            let y = tape.graph_max_pool(xn, Arc::clone(&map));
            weighted_sum(tape, y)
        },
        TOL,
    );
}

#[test]
fn grad_conv2d() {
    let mut store = ParamStore::new();
    let spec = ConvSpec { batch: 2, in_ch: 2, out_ch: 3, h: 4, w: 5, kh: 2, kw: 2 };
    let x = rand_param(&mut store, "x", spec.batch * spec.in_ch, spec.h * spec.w, 40);
    let k = rand_param(&mut store, "k", spec.out_ch, spec.in_ch * spec.kh * spec.kw, 41);
    let b = rand_param(&mut store, "b", 1, spec.out_ch, 42);
    assert_gradients(
        &mut store,
        move |tape, store| {
            let xn = tape.param(store, x);
            let kn = tape.param(store, k);
            let bn = tape.param(store, b);
            let y = tape.conv2d(xn, kn, bn, spec);
            weighted_sum(tape, y)
        },
        TOL,
    );
}

#[test]
fn grad_maxpool2d() {
    let mut store = ParamStore::new();
    let spec = PoolSpec { batch: 2, ch: 2, h: 4, w: 6, ph: 2, pw: 2 };
    // Distinct values keep argmax stable around the finite-difference probe.
    let x = store.add(
        "x",
        Matrix::from_fn(spec.batch * spec.ch, spec.h * spec.w, |i, j| {
            ((i * 31 + j * 17) % 97) as f64 * 0.1
        }),
    );
    assert_gradients(
        &mut store,
        move |tape, store| {
            let xn = tape.param(store, x);
            let y = tape.max_pool2d(xn, spec);
            weighted_sum(tape, y)
        },
        TOL,
    );
}

#[test]
fn grad_batch_outer() {
    let mut store = ParamStore::new();
    let col = rand_param(&mut store, "col", 4, 1, 50);
    let rows = rand_param(&mut store, "rows", 3, 5, 51);
    assert_gradients(
        &mut store,
        |tape, store| {
            let c = tape.param(store, col);
            let r = tape.param(store, rows);
            let y = tape.batch_outer(c, r);
            weighted_sum(tape, y)
        },
        TOL,
    );
}

#[test]
fn grad_kl_loss_masked() {
    let mut store = ParamStore::new();
    let x = rand_param(&mut store, "x", 4, 5, 60);
    let label = {
        let mut rng = seeded(61);
        let mut m = Matrix::from_fn(4, 5, |_, _| gcwc_linalg::rng::normal(&mut rng).abs() + 0.1);
        for i in 0..4 {
            let s: f64 = m.row(i).iter().sum();
            for v in m.row_mut(i) {
                *v /= s;
            }
        }
        m
    };
    let mask = vec![1.0, 0.0, 1.0, 1.0];
    assert_gradients(
        &mut store,
        move |tape, store| {
            let xn = tape.param(store, x);
            let pred = tape.softmax_rows(xn);
            tape.kl_loss_masked(pred, label.clone(), mask.clone(), 1e-6)
        },
        TOL,
    );
}

#[test]
fn grad_mse_masked() {
    let mut store = ParamStore::new();
    let x = rand_param(&mut store, "x", 3, 4, 70);
    let label = Matrix::from_fn(3, 4, |i, j| (i + j) as f64 * 0.2);
    let mask = Matrix::from_fn(3, 4, |i, _| if i == 1 { 0.0 } else { 1.0 });
    assert_gradients(
        &mut store,
        move |tape, store| {
            let xn = tape.param(store, x);
            let pred = tape.sigmoid(xn);
            tape.mse_masked(pred, label.clone(), mask.clone())
        },
        TOL,
    );
}

/// End-to-end composite: a miniature GCWC-like stack (graph conv → pool →
/// dense → softmax → KL) must gradient-check as a whole.
#[test]
fn grad_composite_gcwc_like_stack() {
    let mut store = ParamStore::new();
    let n = 6;
    let (m_buckets, f) = (3, 4);
    let x = rand_param(&mut store, "x", n, m_buckets, 80);
    let k = 3;
    let thetas: Vec<_> = (0..k)
        .map(|i| rand_param(&mut store, &format!("th{i}"), m_buckets, f, 81 + i as u64))
        .collect();
    let fc_w = rand_param(&mut store, "fc.w", 3 * f, n * m_buckets, 90);
    let fc_b = rand_param(&mut store, "fc.b", 1, n * m_buckets, 91);
    let basis: Arc<dyn gcwc_graph::PolyBasis> =
        Arc::new(ChebyshevBasis::from_adjacency(&path_adjacency(n), k));
    let map = Arc::new(PoolingMap::new(vec![vec![0, 1], vec![2, 3], vec![4, 5]], n));
    let label = {
        let mut l = Matrix::filled(n, m_buckets, 1.0 / m_buckets as f64);
        l[(0, 0)] = 0.5;
        l[(0, 1)] = 0.3;
        l[(0, 2)] = 0.2;
        l
    };
    let mask = vec![1.0, 1.0, 0.0, 1.0, 1.0, 0.0];
    assert_gradients(
        &mut store,
        move |tape, store| {
            let xn = tape.param(store, x);
            let th: Vec<_> = thetas.iter().map(|&t| tape.param(store, t)).collect();
            let conv = tape.poly_conv(xn, &th, Arc::clone(&basis));
            let act = tape.tanh(conv);
            let pooled = tape.graph_max_pool(act, Arc::clone(&map));
            let flat = tape.reshape(pooled, 1, 3 * f);
            let w = tape.param(store, fc_w);
            let b = tape.param(store, fc_b);
            let z = tape.matmul(flat, w);
            let z = tape.add_row_broadcast(z, b);
            let z = tape.reshape(z, n, m_buckets);
            let pred = tape.softmax_rows(z);
            tape.kl_loss_masked(pred, label.clone(), mask.clone(), 1e-6)
        },
        1e-4,
    );
}

#[test]
fn grad_group_rows() {
    let mut store = ParamStore::new();
    let a = rand_param(&mut store, "a", 5, 6, 41);
    assert_gradients_buffered(
        &mut store,
        |tape, store| {
            let an = tape.param(store, a);
            let rows = tape.group_rows(an, 3); // 3 x 10
            weighted_sum(tape, rows)
        },
        TOL,
    );
}

/// `group_rows` is element-for-element the stacked
/// `reshape(select_cols(x, g*c, c))` rows.
#[test]
fn group_rows_matches_select_reshape() {
    let mut store = ParamStore::new();
    let a = rand_param(&mut store, "a", 5, 6, 42);
    let mut tape = Tape::new();
    let an = tape.param(&store, a);
    let grouped = tape.group_rows(an, 3);
    let mut rows = Vec::new();
    for g in 0..3 {
        let block = tape.select_cols(an, g * 2, 2);
        rows.push(tape.reshape(block, 1, 10));
    }
    let gv = tape.value(grouped).clone();
    for (g, &r) in rows.iter().enumerate() {
        let rv = tape.value(r);
        for (x, y) in gv.row(g).iter().zip(rv.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "group {g} diverged");
        }
    }
}

#[test]
fn grad_transpose() {
    let mut store = ParamStore::new();
    let x = rand_param(&mut store, "x", 3, 5, 100);
    assert_gradients(
        &mut store,
        |tape, store| {
            let xn = tape.param(store, x);
            let t = tape.transpose(xn);
            weighted_sum(tape, t)
        },
        TOL,
    );
}

#[test]
fn grad_select_cols() {
    let mut store = ParamStore::new();
    let x = rand_param(&mut store, "x", 4, 6, 110);
    assert_gradients(
        &mut store,
        |tape, store| {
            let xn = tape.param(store, x);
            let block = tape.select_cols(xn, 2, 3);
            weighted_sum(tape, block)
        },
        TOL,
    );
}

#[test]
fn grad_grouped_poly_conv() {
    let mut store = ParamStore::new();
    let n = 6;
    let (groups, c_in, c_out, k) = (3usize, 2usize, 4usize, 3usize);
    let x = rand_param(&mut store, "x", n, groups * c_in, 120);
    let thetas: Vec<_> = (0..k)
        .map(|i| rand_param(&mut store, &format!("gth{i}"), c_in, c_out, 121 + i as u64))
        .collect();
    let basis: Arc<dyn gcwc_graph::PolyBasis> =
        Arc::new(ChebyshevBasis::from_adjacency(&path_adjacency(n), k));
    assert_gradients(
        &mut store,
        move |tape, store| {
            let xn = tape.param(store, x);
            let th: Vec<_> = thetas.iter().map(|&t| tape.param(store, t)).collect();
            let y = tape.poly_conv_grouped(xn, &th, Arc::clone(&basis), groups);
            weighted_sum(tape, y)
        },
        TOL,
    );
}

/// The grouped op must agree with running each group through the plain
/// op separately.
#[test]
fn grouped_poly_conv_matches_separate_groups() {
    let mut store = ParamStore::new();
    let n = 5;
    let (groups, c_in, c_out, k) = (2usize, 3usize, 2usize, 4usize);
    let x = rand_param(&mut store, "x", n, groups * c_in, 130);
    let thetas: Vec<_> = (0..k)
        .map(|i| rand_param(&mut store, &format!("sth{i}"), c_in, c_out, 131 + i as u64))
        .collect();
    let basis: Arc<dyn gcwc_graph::PolyBasis> =
        Arc::new(ChebyshevBasis::from_adjacency(&path_adjacency(n), k));

    let mut tape = Tape::new();
    let xn = tape.param(&store, x);
    let th: Vec<_> = thetas.iter().map(|&t| tape.param(&store, t)).collect();
    let grouped = tape.poly_conv_grouped(xn, &th, Arc::clone(&basis), groups);

    for g in 0..groups {
        let block_in = tape.select_cols(xn, g * c_in, c_in);
        let single = tape.poly_conv(block_in, &th, Arc::clone(&basis));
        let block_out = tape.select_cols(grouped, g * c_out, c_out);
        let sv = tape.value(single).clone();
        assert!(tape.value(block_out).approx_eq(&sv, 1e-10), "group {g} mismatch");
    }
}

#[test]
fn grad_tile_cols() {
    let mut store = ParamStore::new();
    let x = rand_param(&mut store, "x", 2, 3, 140);
    assert_gradients(
        &mut store,
        |tape, store| {
            let xn = tape.param(store, x);
            let tiled = tape.tile_cols(xn, 4);
            weighted_sum(tape, tiled)
        },
        TOL,
    );
}

#[test]
fn grad_scale() {
    let mut store = ParamStore::new();
    let x = rand_param(&mut store, "x", 3, 4, 150);
    assert_gradients(
        &mut store,
        |tape, store| {
            let xn = tape.param(store, x);
            let scaled = tape.scale(xn, -1.7);
            weighted_sum(tape, scaled)
        },
        TOL,
    );
}

/// Every op class touched by the gradient-buffer refactor — `Param`
/// accumulation, the `Arc`-held graph ops (`PolyConv`, grouped
/// variant, `GraphMaxPool`), dense conv/pool and both losses — also
/// passes gradcheck when the backward pass routes through a
/// `GradBuffer` merged into the store.
#[test]
fn buffered_gradcheck_covers_refactored_ops() {
    // Graph stack: poly_conv + graph_max_pool + KL loss, with a
    // parameter read twice so the buffer accumulates in place.
    let n = 6;
    let k = 3;
    let mut store = ParamStore::new();
    let x = rand_param(&mut store, "x", n, 2, 160);
    let thetas: Vec<_> =
        (0..k).map(|i| rand_param(&mut store, &format!("th{i}"), 2, 2, 161 + i as u64)).collect();
    let basis: Arc<dyn gcwc_graph::PolyBasis> =
        Arc::new(ChebyshevBasis::from_adjacency(&path_adjacency(n), k));
    let map = Arc::new(PoolingMap::new(vec![vec![0, 1], vec![2, 3], vec![4, 5]], n));
    assert_gradients_buffered(
        &mut store,
        |tape, store| {
            let xn = tape.param(store, x);
            let th: Vec<_> = thetas.iter().map(|&t| tape.param(store, t)).collect();
            let conv = tape.poly_conv(xn, &th, Arc::clone(&basis));
            let act = tape.tanh(conv);
            let pooled = tape.graph_max_pool(act, Arc::clone(&map));
            let twice = tape.add(pooled, pooled); // double read → in-place accumulate
            weighted_sum(tape, twice)
        },
        1e-4,
    );

    // Dense stack: conv2d + max_pool2d + MSE-style loss.
    let spec = ConvSpec { batch: 2, in_ch: 1, out_ch: 2, h: 4, w: 3, kh: 2, kw: 2 };
    let mut store = ParamStore::new();
    let xs = rand_param(&mut store, "x", 2, 12, 170);
    let kern = rand_param(&mut store, "k", 2, 4, 171);
    let bias = rand_param(&mut store, "b", 1, 2, 172);
    assert_gradients_buffered(
        &mut store,
        |tape, store| {
            let xn = tape.param(store, xs);
            let kn = tape.param(store, kern);
            let bn = tape.param(store, bias);
            let y = tape.conv2d(xn, kn, bn, spec);
            let act = tape.sigmoid(y);
            let pooled =
                tape.max_pool2d(act, PoolSpec { batch: 2, ch: 2, h: 4, w: 3, ph: 2, pw: 1 });
            weighted_sum(tape, pooled)
        },
        1e-4,
    );
}

/// The merge path itself: `backward` into a `GradBuffer` followed by
/// `merge_into` must produce gradients bit-identical to `backward`
/// straight into the `ParamStore`, including multi-sample sequential
/// accumulation in sample order.
#[test]
fn backward_via_buffer_merge_is_bitwise_identical() {
    let n = 6;
    let k = 3;
    let mut store = ParamStore::new();
    let x = rand_param(&mut store, "x", n, 2, 180);
    let thetas: Vec<_> =
        (0..k).map(|i| rand_param(&mut store, &format!("th{i}"), 2, 2, 181 + i as u64)).collect();
    let basis: Arc<dyn gcwc_graph::PolyBasis> =
        Arc::new(ChebyshevBasis::from_adjacency(&path_adjacency(n), k));

    let build = |store: &ParamStore, shift: f64| {
        let mut tape = Tape::new();
        let xn = tape.param(store, x);
        let th: Vec<_> = thetas.iter().map(|&t| tape.param(store, t)).collect();
        let conv = tape.poly_conv(xn, &th, Arc::clone(&basis));
        let act = tape.tanh(conv);
        let shifted = tape.scale(act, 1.0 + shift);
        let loss = weighted_sum(&mut tape, shifted);
        (tape, loss)
    };

    // Two "samples" (shifted losses), accumulated in order: direct path.
    let mut direct = store.clone();
    direct.zero_grads();
    for shift in [0.0, 0.25] {
        let (mut tape, loss) = build(&direct, shift);
        tape.backward(loss, &mut direct);
    }

    // Buffered path: one private buffer per sample, merged in order.
    let mut merged = store.clone();
    merged.zero_grads();
    let buffers: Vec<GradBuffer> = [0.0, 0.25]
        .iter()
        .map(|&shift| {
            let (mut tape, loss) = build(&merged, shift);
            let mut buffer = GradBuffer::new();
            tape.backward(loss, &mut buffer);
            buffer
        })
        .collect();
    for buffer in &buffers {
        buffer.merge_into(&mut merged);
    }

    for ((id, pd), (_, pm)) in direct.iter().zip(merged.iter()) {
        for (a, b) in pd.grad.as_slice().iter().zip(pm.grad.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "gradient of {id:?} diverged");
        }
    }
}
