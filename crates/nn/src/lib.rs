//! # gcwc-nn
//!
//! A small reverse-mode automatic-differentiation engine and neural
//! network toolkit, purpose-built for reproducing the GCWC / A-GCWC
//! models: dense layers, embeddings, dropout, 2-D convolutions (for the
//! CP-CNN context module and the classic-CNN baseline), graph polynomial
//! convolutions (Chebyshev / diffusion), graph max pooling, the paper's
//! masked KL loss, and Adam/SGD with the Table III schedule knobs.

#![warn(missing_docs)]

pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod ops;
pub mod optim;
pub mod params;
pub mod persist;
pub mod tape;

pub use layers::{dropout_mask, Dense, Embedding};
pub use optim::{Adam, AdamState, OptimConfig, Sgd};
pub use params::{GradBuffer, GradSink, Param, ParamId, ParamStore};
pub use persist::PersistError;
pub use tape::{ConvSpec, NodeId, PoolSpec, Tape};
