//! Finite-difference gradient checking.
//!
//! Every tape operation's backward rule is validated against a central
//! finite difference of the forward pass. The checker is exported so
//! downstream crates (the GCWC models, the DR baseline) can verify their
//! composite graphs end to end.

use crate::params::ParamStore;
use crate::tape::{NodeId, Tape};

/// Result of a gradient check: the worst absolute and relative error
/// found across all parameter scalars.
#[derive(Clone, Copy, Debug)]
pub struct GradCheckReport {
    /// Largest |analytic − numeric|.
    pub max_abs_err: f64,
    /// Largest |analytic − numeric| / max(1, |numeric|).
    pub max_rel_err: f64,
    /// Number of scalars compared.
    pub checked: usize,
}

/// Compares autodiff gradients with central finite differences.
///
/// `build` must deterministically construct the loss (a `1 × 1` node)
/// from the current parameter values; it is invoked `2·#scalars + 1`
/// times.
pub fn check_gradients(
    store: &mut ParamStore,
    mut build: impl FnMut(&mut Tape, &ParamStore) -> NodeId,
    step: f64,
) -> GradCheckReport {
    // Analytic gradients.
    store.zero_grads();
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    tape.backward(loss, store);
    finite_difference_report(store, &mut build, step)
}

/// Like [`check_gradients`], but runs the analytic backward pass into a
/// private [`crate::params::GradBuffer`] merged into the store — the
/// exact path the data-parallel training loop takes. Because the merge
/// is a plain in-order addition into zeroed gradients, the report must
/// match [`check_gradients`] for every op.
pub fn check_gradients_buffered(
    store: &mut ParamStore,
    mut build: impl FnMut(&mut Tape, &ParamStore) -> NodeId,
    step: f64,
) -> GradCheckReport {
    store.zero_grads();
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    let mut buffer = crate::params::GradBuffer::new();
    tape.backward(loss, &mut buffer);
    buffer.merge_into(store);
    finite_difference_report(store, &mut build, step)
}

/// Compares the gradients currently held in `store` against central
/// finite differences of `build`'s forward pass.
fn finite_difference_report(
    store: &mut ParamStore,
    build: &mut impl FnMut(&mut Tape, &ParamStore) -> NodeId,
    step: f64,
) -> GradCheckReport {
    let analytic: Vec<Vec<f64>> = store.iter().map(|(_, p)| p.grad.as_slice().to_vec()).collect();

    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    let mut report = GradCheckReport { max_abs_err: 0.0, max_rel_err: 0.0, checked: 0 };
    for (pi, &id) in ids.iter().enumerate() {
        let len = store.value(id).len();
        for k in 0..len {
            let original = store.value(id).as_slice()[k];

            store.value_mut(id).as_mut_slice()[k] = original + step;
            let mut t_plus = Tape::new();
            let l_plus = build(&mut t_plus, store);
            let f_plus = t_plus.value(l_plus)[(0, 0)];

            store.value_mut(id).as_mut_slice()[k] = original - step;
            let mut t_minus = Tape::new();
            let l_minus = build(&mut t_minus, store);
            let f_minus = t_minus.value(l_minus)[(0, 0)];

            store.value_mut(id).as_mut_slice()[k] = original;

            let numeric = (f_plus - f_minus) / (2.0 * step);
            let abs_err = (analytic[pi][k] - numeric).abs();
            let rel_err = abs_err / numeric.abs().max(1.0);
            report.max_abs_err = report.max_abs_err.max(abs_err);
            report.max_rel_err = report.max_rel_err.max(rel_err);
            report.checked += 1;
        }
    }
    report
}

/// Asserts that the gradient check passes within `tol` (relative).
///
/// # Panics
/// Panics with a diagnostic when the worst relative error exceeds `tol`.
pub fn assert_gradients(
    store: &mut ParamStore,
    build: impl FnMut(&mut Tape, &ParamStore) -> NodeId,
    tol: f64,
) {
    let report = check_gradients(store, build, 1e-5);
    assert!(
        report.max_rel_err <= tol,
        "gradient check failed: max_rel_err = {:.3e}, max_abs_err = {:.3e} over {} scalars",
        report.max_rel_err,
        report.max_abs_err,
        report.checked
    );
    assert!(report.checked > 0, "gradient check compared nothing");
}

/// Asserts the buffered gradient check (see [`check_gradients_buffered`])
/// passes within `tol` (relative).
///
/// # Panics
/// Panics with a diagnostic when the worst relative error exceeds `tol`.
pub fn assert_gradients_buffered(
    store: &mut ParamStore,
    build: impl FnMut(&mut Tape, &ParamStore) -> NodeId,
    tol: f64,
) {
    let report = check_gradients_buffered(store, build, 1e-5);
    assert!(
        report.max_rel_err <= tol,
        "buffered gradient check failed: max_rel_err = {:.3e}, max_abs_err = {:.3e} over {} scalars",
        report.max_rel_err,
        report.max_abs_err,
        report.checked
    );
    assert!(report.checked > 0, "buffered gradient check compared nothing");
}
