//! Reusable layers built on top of the tape.

use gcwc_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

use crate::init;
use crate::params::{ParamId, ParamStore};
use crate::tape::{NodeId, Tape};

/// A fully connected layer `y = x·W + b` (`x: r × in`, `y: r × out`).
#[derive(Clone, Copy, Debug)]
pub struct Dense {
    /// Weight parameter (`in × out`).
    pub w: ParamId,
    /// Bias parameter (`1 × out`).
    pub b: ParamId,
}

impl Dense {
    /// Registers a Glorot-initialised dense layer.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        input: usize,
        output: usize,
    ) -> Self {
        let w = store.add(format!("{name}.w"), init::glorot_uniform(rng, input, output));
        let b = store.add(format!("{name}.b"), init::zeros(1, output));
        Self { w, b }
    }

    /// Applies the layer on the tape.
    pub fn apply(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let xw = tape.matmul(x, w);
        tape.add_row_broadcast(xw, b)
    }
}

/// An embedding table mapping categorical indices to `dim`-vectors.
#[derive(Clone, Copy, Debug)]
pub struct Embedding {
    /// Table parameter (`vocab × dim`).
    pub table: ParamId,
}

impl Embedding {
    /// Registers an embedding table with small uniform initialisation.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        let table = store.add(format!("{name}.table"), init::uniform(rng, vocab, dim, 0.05));
        Self { table }
    }

    /// Looks up index `idx`, returning a `1 × dim` node.
    pub fn lookup(&self, tape: &mut Tape, store: &ParamStore, idx: usize) -> NodeId {
        let table = tape.param(store, self.table);
        tape.select_row(table, idx)
    }
}

/// Builds an inverted-dropout keep mask: each entry is `0` with
/// probability `p`, otherwise `1/(1−p)`.
///
/// Pass the result to [`Tape::dropout`] during training; skip the op at
/// evaluation time.
pub fn dropout_mask(rng: &mut StdRng, rows: usize, cols: usize, p: f64) -> Matrix {
    assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
    if p == 0.0 {
        return Matrix::filled(rows, cols, 1.0);
    }
    let keep = 1.0 / (1.0 - p);
    Matrix::from_fn(rows, cols, |_, _| if rng.random::<f64>() < p { 0.0 } else { keep })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::rng::seeded;

    #[test]
    fn dense_shapes_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = seeded(1);
        let layer = Dense::new(&mut store, &mut rng, "fc", 3, 5);
        // Set the bias to something visible.
        *store.value_mut(layer.b) = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0]]);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(2, 3));
        let y = layer.apply(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (2, 5));
        // Zero input -> output equals broadcast bias.
        assert_eq!(tape.value(y).row(0), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(tape.value(y).row(1), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn embedding_lookup_returns_table_row() {
        let mut store = ParamStore::new();
        let mut rng = seeded(2);
        let emb = Embedding::new(&mut store, &mut rng, "time", 4, 3);
        let expected = store.value(emb.table).row(2).to_vec();
        let mut tape = Tape::new();
        let row = emb.lookup(&mut tape, &store, 2);
        assert_eq!(tape.value(row).row(0), &expected[..]);
    }

    #[test]
    fn dropout_mask_statistics() {
        let mut rng = seeded(3);
        let p = 0.3;
        let mask = dropout_mask(&mut rng, 100, 100, p);
        let zeros = mask.as_slice().iter().filter(|&&v| v == 0.0).count();
        let rate = zeros as f64 / 10_000.0;
        assert!((rate - p).abs() < 0.02, "zero rate {rate}");
        // Kept entries carry the inverted scale so E[mask] = 1.
        assert!((mask.mean() - 1.0).abs() < 0.02);
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let mut rng = seeded(4);
        let mask = dropout_mask(&mut rng, 3, 3, 0.0);
        assert_eq!(mask, Matrix::filled(3, 3, 1.0));
    }
}
