//! Trainable parameter storage.
//!
//! Parameters live outside the per-sample [`crate::tape::Tape`]: the tape
//! copies values in at graph-construction time and accumulates gradients
//! back out during the backward pass. This keeps tapes cheap to rebuild
//! per sample (define-by-run) while parameters persist across samples,
//! batches and epochs.

use gcwc_linalg::Matrix;

/// Identifies a parameter within a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// A named trainable tensor with its accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Human-readable name (used in diagnostics and parameter counting).
    pub name: String,
    /// Current value.
    pub value: Matrix,
    /// Gradient accumulated since the last [`ParamStore::zero_grads`].
    pub grad: Matrix,
}

/// A flat collection of model parameters.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its id.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.params.push(Param { name: name.into(), value, grad });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalars (the paper's `#Para` column).
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Immutable access to a parameter's value.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access to a parameter's value (used by optimizers/tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Immutable access to a parameter's gradient.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Adds `delta` into the gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Matrix) {
        let g = &mut self.params[id.0].grad;
        assert_eq!(
            g.shape(),
            delta.shape(),
            "gradient shape mismatch for {}",
            self.params[id.0].name
        );
        for (dst, src) in g.as_mut_slice().iter_mut().zip(delta.as_slice()) {
            *dst += src;
        }
    }

    /// Clears all gradients to zero.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.as_mut_slice().fill(0.0);
        }
    }

    /// Iterates over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Iterates mutably over all parameters.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Param)> {
        self.params.iter_mut().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f64 {
        self.params
            .iter()
            .map(|p| p.grad.as_slice().iter().map(|g| g * g).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }

    /// Scales every gradient by `s` (used for gradient clipping and
    /// batch averaging).
    pub fn scale_grads(&mut self, s: f64) {
        for p in &mut self.params {
            for g in p.grad.as_mut_slice() {
                *g *= s;
            }
        }
    }
}

/// Destination for the parameter gradients produced by
/// [`crate::tape::Tape::backward`].
///
/// The training loop passes a [`ParamStore`] directly when running
/// serially, or a private per-sample [`GradBuffer`] when running
/// data-parallel so buffers can be merged in a fixed sample order
/// afterwards (float addition is not associative, so merge order is
/// part of the determinism contract).
pub trait GradSink {
    /// Adds `delta` into the gradient slot of `id`.
    fn accumulate_grad(&mut self, id: ParamId, delta: &Matrix);
}

impl GradSink for ParamStore {
    fn accumulate_grad(&mut self, id: ParamId, delta: &Matrix) {
        ParamStore::accumulate_grad(self, id, delta);
    }
}

/// A private, store-shaped gradient accumulator.
///
/// Workers in the data-parallel training loop each own one buffer per
/// sample; [`GradBuffer::merge_into`] then folds buffers into the real
/// [`ParamStore`] in ascending parameter order, so the final gradients
/// depend only on the order of `merge_into` calls — never on how
/// samples were distributed over threads.
#[derive(Clone, Debug, Default)]
pub struct GradBuffer {
    /// Indexed by `ParamId`; `None` means no gradient touched that slot.
    slots: Vec<Option<Matrix>>,
    /// Matrices recycled by [`GradBuffer::reset`], reused by shape on
    /// the next accumulation so steady-state batches do not allocate.
    spare: Vec<Matrix>,
}

impl GradBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties every slot, keeping the matrices for reuse by the next
    /// mini-batch.
    pub fn reset(&mut self) {
        for slot in &mut self.slots {
            if let Some(m) = slot.take() {
                self.spare.push(m);
            }
        }
    }

    /// True when no gradient has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// The accumulated gradient for `id`, if any.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.slots.get(id.0).and_then(|s| s.as_ref())
    }

    /// Folds this buffer into `store` in ascending [`ParamId`] order.
    pub fn merge_into(&self, store: &mut ParamStore) {
        for (idx, slot) in self.slots.iter().enumerate() {
            if let Some(g) = slot {
                ParamStore::accumulate_grad(store, ParamId(idx), g);
            }
        }
    }
}

impl GradSink for GradBuffer {
    fn accumulate_grad(&mut self, id: ParamId, delta: &Matrix) {
        if self.slots.len() <= id.0 {
            self.slots.resize(id.0 + 1, None);
        }
        match &mut self.slots[id.0] {
            Some(g) => {
                assert_eq!(g.shape(), delta.shape(), "gradient shape mismatch in GradBuffer");
                for (dst, src) in g.as_mut_slice().iter_mut().zip(delta.as_slice()) {
                    *dst += src;
                }
            }
            slot @ None => {
                // Reuse a retired matrix of the same shape when one is
                // available. The contents are *copied over* rather than
                // zeroed-and-added: `0.0 + (−0.0)` is `+0.0`, so an add
                // from zero would not be bit-identical to a fresh clone.
                let recycled = self
                    .spare
                    .iter()
                    .position(|m| m.shape() == delta.shape())
                    .map(|i| self.spare.swap_remove(i));
                *slot = Some(match recycled {
                    Some(mut m) => {
                        m.copy_from(delta);
                        m
                    }
                    None => delta.clone(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_count() {
        let mut store = ParamStore::new();
        let a = store.add("w", Matrix::zeros(3, 4));
        let b = store.add("b", Matrix::zeros(1, 4));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn gradients_accumulate() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::zeros(2, 2));
        store.accumulate_grad(id, &Matrix::filled(2, 2, 1.0));
        store.accumulate_grad(id, &Matrix::filled(2, 2, 0.5));
        assert_eq!(store.grad(id), &Matrix::filled(2, 2, 1.5));
        store.zero_grads();
        assert_eq!(store.grad(id), &Matrix::zeros(2, 2));
    }

    #[test]
    fn grad_norm_and_scale() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::zeros(1, 2));
        store.accumulate_grad(id, &Matrix::from_rows(&[&[3.0, 4.0]]));
        assert!((store.grad_norm() - 5.0).abs() < 1e-12);
        store.scale_grads(0.5);
        assert_eq!(store.grad(id), &Matrix::from_rows(&[&[1.5, 2.0]]));
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn shape_mismatch_panics() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::zeros(2, 2));
        store.accumulate_grad(id, &Matrix::zeros(1, 2));
    }

    #[test]
    fn grad_buffer_accumulates_and_merges_in_id_order() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::zeros(1, 2));
        let b = store.add("b", Matrix::zeros(2, 1));

        let mut buf = GradBuffer::new();
        assert!(buf.is_empty());
        GradSink::accumulate_grad(&mut buf, b, &Matrix::filled(2, 1, 2.0));
        GradSink::accumulate_grad(&mut buf, b, &Matrix::filled(2, 1, 0.25));
        assert!(!buf.is_empty());
        assert_eq!(buf.get(b), Some(&Matrix::filled(2, 1, 2.25)));
        assert_eq!(buf.get(a), None);

        buf.merge_into(&mut store);
        assert_eq!(store.grad(a), &Matrix::zeros(1, 2));
        assert_eq!(store.grad(b), &Matrix::filled(2, 1, 2.25));
    }

    #[test]
    fn grad_buffer_merge_matches_direct_accumulation_bitwise() {
        // Merging per-sample buffers in sample order must reproduce the
        // serial accumulation exactly: same additions, same order.
        let deltas = [0.1, 0.07, -0.3, 1e-8];
        let mut serial = ParamStore::new();
        let id = serial.add("w", Matrix::zeros(1, 1));
        for d in deltas {
            serial.accumulate_grad(id, &Matrix::filled(1, 1, d));
        }

        let mut merged = ParamStore::new();
        let id2 = merged.add("w", Matrix::zeros(1, 1));
        let buffers: Vec<GradBuffer> = deltas
            .iter()
            .map(|&d| {
                let mut buf = GradBuffer::new();
                GradSink::accumulate_grad(&mut buf, id2, &Matrix::filled(1, 1, d));
                buf
            })
            .collect();
        for buf in &buffers {
            buf.merge_into(&mut merged);
        }
        assert_eq!(serial.grad(id)[(0, 0)].to_bits(), merged.grad(id2)[(0, 0)].to_bits());
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch in GradBuffer")]
    fn grad_buffer_shape_mismatch_panics() {
        let mut buf = GradBuffer::new();
        GradSink::accumulate_grad(&mut buf, ParamId(0), &Matrix::zeros(2, 2));
        GradSink::accumulate_grad(&mut buf, ParamId(0), &Matrix::zeros(1, 2));
    }
}
