//! Trainable parameter storage.
//!
//! Parameters live outside the per-sample [`crate::tape::Tape`]: the tape
//! copies values in at graph-construction time and accumulates gradients
//! back out during the backward pass. This keeps tapes cheap to rebuild
//! per sample (define-by-run) while parameters persist across samples,
//! batches and epochs.

use gcwc_linalg::Matrix;

/// Identifies a parameter within a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// A named trainable tensor with its accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Human-readable name (used in diagnostics and parameter counting).
    pub name: String,
    /// Current value.
    pub value: Matrix,
    /// Gradient accumulated since the last [`ParamStore::zero_grads`].
    pub grad: Matrix,
}

/// A flat collection of model parameters.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its id.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.params.push(Param { name: name.into(), value, grad });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalars (the paper's `#Para` column).
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Immutable access to a parameter's value.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access to a parameter's value (used by optimizers/tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Immutable access to a parameter's gradient.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Adds `delta` into the gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Matrix) {
        let g = &mut self.params[id.0].grad;
        assert_eq!(
            g.shape(),
            delta.shape(),
            "gradient shape mismatch for {}",
            self.params[id.0].name
        );
        for (dst, src) in g.as_mut_slice().iter_mut().zip(delta.as_slice()) {
            *dst += src;
        }
    }

    /// Clears all gradients to zero.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.as_mut_slice().fill(0.0);
        }
    }

    /// Iterates over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Iterates mutably over all parameters.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Param)> {
        self.params.iter_mut().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f64 {
        self.params
            .iter()
            .map(|p| p.grad.as_slice().iter().map(|g| g * g).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }

    /// Scales every gradient by `s` (used for gradient clipping and
    /// batch averaging).
    pub fn scale_grads(&mut self, s: f64) {
        for p in &mut self.params {
            for g in p.grad.as_mut_slice() {
                *g *= s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_count() {
        let mut store = ParamStore::new();
        let a = store.add("w", Matrix::zeros(3, 4));
        let b = store.add("b", Matrix::zeros(1, 4));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn gradients_accumulate() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::zeros(2, 2));
        store.accumulate_grad(id, &Matrix::filled(2, 2, 1.0));
        store.accumulate_grad(id, &Matrix::filled(2, 2, 0.5));
        assert_eq!(store.grad(id), &Matrix::filled(2, 2, 1.5));
        store.zero_grads();
        assert_eq!(store.grad(id), &Matrix::zeros(2, 2));
    }

    #[test]
    fn grad_norm_and_scale() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::zeros(1, 2));
        store.accumulate_grad(id, &Matrix::from_rows(&[&[3.0, 4.0]]));
        assert!((store.grad_norm() - 5.0).abs() < 1e-12);
        store.scale_grads(0.5);
        assert_eq!(store.grad(id), &Matrix::from_rows(&[&[1.5, 2.0]]));
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn shape_mismatch_panics() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::zeros(2, 2));
        store.accumulate_grad(id, &Matrix::zeros(1, 2));
    }
}
