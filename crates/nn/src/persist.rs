//! Parameter persistence.
//!
//! Trained models can be saved to and restored from a simple,
//! dependency-free text format: an optional
//! `gcwc-checkpoint v<N> <arch>` header line, then one
//! `param <name> <rows> <cols>` header per tensor followed by its
//! row-major values in hexadecimal IEEE-754 (lossless round trip).
//! Loading validates names and shapes against the target store — and,
//! when the caller supplies an expected architecture string, the header
//! too — so a checkpoint can only be restored into a model with the
//! identical architecture. Headerless v0 files (written before the
//! header existed) still load; they simply skip the architecture check.

use std::path::Path;

use gcwc_linalg::Matrix;

use crate::params::ParamStore;

/// Errors from checkpoint loading.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying file error.
    File(std::io::Error),
    /// Structural problem with the checkpoint.
    Format(String),
    /// The checkpoint does not match the target model.
    Mismatch(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::File(e) => write!(f, "file error: {e}"),
            PersistError::Format(m) => write!(f, "bad checkpoint: {m}"),
            PersistError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::File(e)
    }
}

/// Current checkpoint format version, written in the header line.
pub const FORMAT_VERSION: u32 = 1;

/// Leading keyword of the (v1+) checkpoint header line.
const HEADER_KEYWORD: &str = "gcwc-checkpoint";

/// Architecture token written when the caller does not supply one.
pub const ARCH_UNSPECIFIED: &str = "unspecified";

/// Serialises all parameter values (not gradients) to the checkpoint
/// format with an architecture token in the header line.
///
/// `arch` must be a single whitespace-free token (it shares one line
/// with the format version); whitespace is replaced by `_`.
pub fn to_checkpoint_with_arch(store: &ParamStore, arch: &str) -> String {
    let arch: String = arch.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect();
    let mut out = format!("{HEADER_KEYWORD} v{FORMAT_VERSION} {arch}\n");
    for (_, p) in store.iter() {
        out.push_str(&format!("param {} {} {}\n", p.name, p.value.rows(), p.value.cols()));
        for (i, v) in p.value.as_slice().iter().enumerate() {
            if i > 0 {
                out.push(if i % 8 == 0 { '\n' } else { ' ' });
            }
            out.push_str(&format!("{:016x}", v.to_bits()));
        }
        out.push('\n');
    }
    out
}

/// Serialises all parameter values (not gradients) to the checkpoint
/// format (architecture recorded as [`ARCH_UNSPECIFIED`]).
pub fn to_checkpoint(store: &ParamStore) -> String {
    to_checkpoint_with_arch(store, ARCH_UNSPECIFIED)
}

/// Saves a parameter store to a file with an architecture token.
pub fn save_with_arch(store: &ParamStore, path: &Path, arch: &str) -> Result<(), PersistError> {
    std::fs::write(path, to_checkpoint_with_arch(store, arch))?;
    Ok(())
}

/// Saves a parameter store to a file.
pub fn save(store: &ParamStore, path: &Path) -> Result<(), PersistError> {
    save_with_arch(store, path, ARCH_UNSPECIFIED)
}

/// Reads the architecture token from checkpoint text, if a (v1+)
/// header line is present. Headerless v0 files yield `Ok(None)`.
pub fn read_arch(content: &str) -> Result<Option<String>, PersistError> {
    let mut tokens =
        content.lines().filter(|l| !l.starts_with('#')).flat_map(|l| l.split_whitespace());
    match tokens.next() {
        Some(HEADER_KEYWORD) => parse_header_rest(&mut tokens).map(Some),
        _ => Ok(None),
    }
}

/// Parses the version and architecture tokens after [`HEADER_KEYWORD`]
/// and returns the architecture; errors on unsupported versions.
fn parse_header_rest<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<String, PersistError> {
    let version = tokens
        .next()
        .ok_or_else(|| PersistError::Format("header missing format version".into()))?;
    let number: u32 = version
        .strip_prefix('v')
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| PersistError::Format(format!("bad format version '{version}'")))?;
    if number == 0 || number > FORMAT_VERSION {
        return Err(PersistError::Format(format!(
            "unsupported checkpoint format version {number} (max supported {FORMAT_VERSION})"
        )));
    }
    let arch = tokens
        .next()
        .ok_or_else(|| PersistError::Format("header missing architecture token".into()))?;
    Ok(arch.to_owned())
}

/// Restores parameter values from checkpoint text into `store`,
/// optionally validating the header's architecture token.
///
/// Every parameter in the store must appear in the checkpoint with the
/// same name, order and shape. When `expected_arch` is `Some` and the
/// checkpoint has a header, the architecture tokens must match
/// ([`PersistError::Mismatch`] otherwise); headerless v0 checkpoints
/// skip the check.
pub fn from_checkpoint_expecting(
    store: &mut ParamStore,
    content: &str,
    expected_arch: Option<&str>,
) -> Result<(), PersistError> {
    let mut tokens = content
        .lines()
        .filter(|l| !l.starts_with('#'))
        .flat_map(|l| l.split_whitespace())
        .peekable();
    if tokens.peek() == Some(&HEADER_KEYWORD) {
        tokens.next();
        let arch = parse_header_rest(&mut tokens)?;
        if let Some(expected) = expected_arch {
            if arch != expected && arch != ARCH_UNSPECIFIED {
                return Err(PersistError::Mismatch(format!(
                    "architecture '{arch}' in checkpoint, model expects '{expected}'"
                )));
            }
        }
    }

    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    for id in ids {
        let (name, rows, cols) = {
            let keyword = tokens
                .next()
                .ok_or_else(|| PersistError::Format("unexpected end of checkpoint".into()))?;
            if keyword != "param" {
                return Err(PersistError::Format(format!("expected 'param', got '{keyword}'")));
            }
            let name = tokens
                .next()
                .ok_or_else(|| PersistError::Format("missing parameter name".into()))?
                .to_owned();
            let rows: usize = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| PersistError::Format("bad row count".into()))?;
            let cols: usize = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| PersistError::Format("bad column count".into()))?;
            (name, rows, cols)
        };
        {
            let current = store.iter().find(|(i, _)| *i == id).expect("id exists").1;
            if current.name != name {
                return Err(PersistError::Mismatch(format!(
                    "expected parameter '{}', checkpoint has '{name}'",
                    current.name
                )));
            }
            if current.value.shape() != (rows, cols) {
                return Err(PersistError::Mismatch(format!(
                    "parameter '{name}': shape {:?} vs checkpoint {rows}x{cols}",
                    current.value.shape()
                )));
            }
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            let tok = tokens
                .next()
                .ok_or_else(|| PersistError::Format(format!("truncated values for '{name}'")))?;
            let bits = u64::from_str_radix(tok, 16)
                .map_err(|_| PersistError::Format(format!("bad value '{tok}' in '{name}'")))?;
            data.push(f64::from_bits(bits));
        }
        *store.value_mut(id) = Matrix::from_vec(rows, cols, data);
    }
    if tokens.next().is_some() {
        return Err(PersistError::Mismatch("checkpoint has more parameters than the model".into()));
    }
    Ok(())
}

/// Restores parameter values from checkpoint text into `store` without
/// architecture validation.
pub fn from_checkpoint(store: &mut ParamStore, content: &str) -> Result<(), PersistError> {
    from_checkpoint_expecting(store, content, None)
}

/// Loads a checkpoint file into `store`, optionally validating the
/// header's architecture token (see [`from_checkpoint_expecting`]).
pub fn load_expecting(
    store: &mut ParamStore,
    path: &Path,
    expected_arch: Option<&str>,
) -> Result<(), PersistError> {
    from_checkpoint_expecting(store, &std::fs::read_to_string(path)?, expected_arch)
}

/// Loads a checkpoint file into `store`.
pub fn load(store: &mut ParamStore, path: &Path) -> Result<(), PersistError> {
    load_expecting(store, path, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::rng::seeded;

    fn sample_store() -> ParamStore {
        let mut store = ParamStore::new();
        let mut rng = seeded(1);
        store.add("layer.w", crate::init::glorot_uniform(&mut rng, 3, 4));
        store.add("layer.b", Matrix::from_rows(&[&[0.5, -1.25, 3.75e-7]]));
        store
    }

    #[test]
    fn roundtrip_is_lossless() {
        let store = sample_store();
        let text = to_checkpoint(&store);
        let mut restored = sample_store();
        // Perturb before loading so we know loading does the work.
        restored.value_mut(crate::params::ParamId(0)).as_mut_slice()[0] = 99.0;
        from_checkpoint(&mut restored, &text).unwrap();
        for ((_, a), (_, b)) in store.iter().zip(restored.iter()) {
            assert_eq!(a.value, b.value, "{} must round-trip exactly", a.name);
        }
    }

    #[test]
    fn file_roundtrip() {
        let store = sample_store();
        let dir = std::env::temp_dir().join("gcwc_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        save(&store, &path).unwrap();
        let mut restored = sample_store();
        load(&mut restored, &path).unwrap();
        assert_eq!(
            store.value(crate::params::ParamId(1)),
            restored.value(crate::params::ParamId(1))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn name_mismatch_is_rejected() {
        let store = sample_store();
        let text = to_checkpoint(&store);
        let mut other = ParamStore::new();
        other.add("different.name", Matrix::zeros(3, 4));
        other.add("layer.b", Matrix::zeros(1, 3));
        let err = from_checkpoint(&mut other, &text).unwrap_err();
        assert!(matches!(err, PersistError::Mismatch(_)), "{err}");
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let store = sample_store();
        let text = to_checkpoint(&store);
        let mut other = ParamStore::new();
        other.add("layer.w", Matrix::zeros(4, 3)); // transposed shape
        other.add("layer.b", Matrix::zeros(1, 3));
        let err = from_checkpoint(&mut other, &text).unwrap_err();
        assert!(matches!(err, PersistError::Mismatch(_)), "{err}");
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let store = sample_store();
        let text = to_checkpoint(&store);
        let cut = &text[..text.len() / 2];
        let mut other = sample_store();
        let err = from_checkpoint(&mut other, cut).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
    }

    #[test]
    fn arch_header_roundtrips() {
        let store = sample_store();
        let text = to_checkpoint_with_arch(&store, "gcwc:n3:m4");
        assert!(text.starts_with("gcwc-checkpoint v1 gcwc:n3:m4\n"));
        assert_eq!(read_arch(&text).unwrap().as_deref(), Some("gcwc:n3:m4"));
        let mut restored = sample_store();
        from_checkpoint_expecting(&mut restored, &text, Some("gcwc:n3:m4")).unwrap();
        for ((_, a), (_, b)) in store.iter().zip(restored.iter()) {
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn arch_whitespace_is_sanitised() {
        let store = sample_store();
        let text = to_checkpoint_with_arch(&store, "two words");
        assert_eq!(read_arch(&text).unwrap().as_deref(), Some("two_words"));
    }

    #[test]
    fn arch_mismatch_is_rejected() {
        let store = sample_store();
        let text = to_checkpoint_with_arch(&store, "gcwc:n3:m4");
        let mut restored = sample_store();
        let err = from_checkpoint_expecting(&mut restored, &text, Some("gcwc:n9:m9")).unwrap_err();
        assert!(matches!(err, PersistError::Mismatch(_)), "{err}");
    }

    #[test]
    fn headerless_v0_still_loads() {
        let store = sample_store();
        // Strip the header line to emulate a pre-header checkpoint.
        let text = to_checkpoint(&store);
        let v0: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert_eq!(read_arch(&v0).unwrap(), None);
        let mut restored = sample_store();
        from_checkpoint_expecting(&mut restored, &v0, Some("anything")).unwrap();
        for ((_, a), (_, b)) in store.iter().zip(restored.iter()) {
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let text = "gcwc-checkpoint v99 arch\n";
        let mut store = sample_store();
        let err = from_checkpoint(&mut store, text).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
    }

    #[test]
    fn extra_parameters_are_rejected() {
        let store = sample_store();
        let text = to_checkpoint(&store);
        let mut small = ParamStore::new();
        small.add("layer.w", Matrix::zeros(3, 4));
        let err = from_checkpoint(&mut small, &text).unwrap_err();
        assert!(matches!(err, PersistError::Mismatch(_)), "{err}");
    }
}
