//! Shared forward kernels used by both the autodiff [`crate::Tape`] and
//! the tape-free inference path in `gcwc-core`.
//!
//! Both callers must produce **bit-identical** results, so the
//! arithmetic lives here exactly once: the tape's builder methods and
//! the inference engine call the same functions in the same order.
//! Every helper writes into caller-provided buffers (typically drawn
//! from a [`gcwc_linalg::BufferPool`]) and allocates nothing.

use gcwc_linalg::Matrix;

use crate::tape::{ConvSpec, PoolSpec};

/// Row-wise numerically-stabilised softmax, in place.
pub fn softmax_rows_in_place(v: &mut Matrix) {
    for i in 0..v.rows() {
        let row = v.row_mut(i);
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for t in row.iter_mut() {
            *t = (*t - max).exp();
            sum += *t;
        }
        for t in row.iter_mut() {
            *t /= sum;
        }
    }
}

/// Row-wise normalisation `y_ij = x_ij / (Σ_j x_ij + eps)`, in place.
pub fn normalize_rows_in_place(v: &mut Matrix, eps: f64) {
    for i in 0..v.rows() {
        let s: f64 = v.row(i).iter().sum::<f64>() + eps;
        for t in v.row_mut(i) {
            *t /= s;
        }
    }
}

/// Adds a `1 × c` bias row to every row of `v` in place.
pub fn add_row_broadcast_assign(v: &mut Matrix, bias: &Matrix) {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), v.cols(), "bias width mismatch");
    for i in 0..v.rows() {
        for (dst, src) in v.row_mut(i).iter_mut().zip(bias.row(0)) {
            *dst += src;
        }
    }
}

/// Accumulates one polynomial-convolution tap: for each group `g`,
/// `out[:, g·c_out..] += tx[:, g·c_in..] · θ` where `θ ∈ R^{c_in×c_out}`
/// is shared across groups. `out` must be zero-initialised before the
/// first tap; calling once per tap in basis order reproduces
/// `Σ_k M_k(graph)·x·θ_k` with the accumulation order fixed.
pub fn poly_conv_accumulate(tx: &Matrix, theta: &Matrix, out: &mut Matrix, groups: usize) {
    let c_in = theta.rows();
    let c_out = theta.cols();
    let n = tx.rows();
    debug_assert_eq!(tx.cols(), groups * c_in, "tap width mismatch");
    debug_assert_eq!(out.shape(), (n, groups * c_out), "output shape mismatch");
    for g in 0..groups {
        // out[:, g·c_out ..] += tx[:, g·c_in ..] · θ_k
        for i in 0..n {
            let tx_row = &tx.row(i)[g * c_in..(g + 1) * c_in];
            let out_row = &mut out.row_mut(i)[g * c_out..(g + 1) * c_out];
            for (ci, &a) in tx_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (o, &b) in out_row.iter_mut().zip(theta.row(ci)) {
                    *o += a * b;
                }
            }
        }
    }
}

/// Gathers a group-major `n × (groups·c)` matrix into `groups` rows of
/// length `n·c` (row `g` is the row-major flattening of group `g`'s
/// `n × c` block). Every element of `out` is overwritten.
pub fn group_rows_into(x: &Matrix, groups: usize, out: &mut Matrix) {
    let (n, total) = x.shape();
    assert_eq!(total % groups, 0, "columns not divisible by groups");
    let c = total / groups;
    debug_assert_eq!(out.shape(), (groups, n * c), "output shape mismatch");
    for g in 0..groups {
        let dst = out.row_mut(g);
        for i in 0..n {
            dst[i * c..(i + 1) * c].copy_from_slice(&x.row(i)[g * c..(g + 1) * c]);
        }
    }
}

/// Horizontally tiles `x` `times` times (`r × c` → `r × (times·c)`).
/// Every element of `out` is overwritten.
pub fn tile_cols_into(x: &Matrix, times: usize, out: &mut Matrix) {
    assert!(times >= 1, "tile count must be positive");
    let (r, c) = x.shape();
    debug_assert_eq!(out.shape(), (r, c * times), "output shape mismatch");
    for i in 0..r {
        for t in 0..times {
            out.row_mut(i)[t * c..(t + 1) * c].copy_from_slice(x.row(i));
        }
    }
}

/// Batched outer product: for a column `p ∈ R^{β×1}` and rows
/// `Z ∈ R^{n×m}`, writes `n × (β·m)` where block row `b` is the
/// row-major flattening of `p · Z[b,·]`. Every element of `out` is
/// overwritten.
pub fn batch_outer_into(col: &Matrix, rows: &Matrix, out: &mut Matrix) {
    assert_eq!(col.cols(), 1, "first operand must be a column vector");
    let (beta, n, m) = (col.rows(), rows.rows(), rows.cols());
    debug_assert_eq!(out.shape(), (n, beta * m), "output shape mismatch");
    for b in 0..n {
        for k in 0..beta {
            for j in 0..m {
                out[(b, k * m + j)] = col[(k, 0)] * rows[(b, j)];
            }
        }
    }
}

/// Batched 2-D convolution with `same` zero padding and stride 1,
/// written into `out` (`(batch·out_ch) × (h·w)`, fully overwritten).
///
/// `x` is `(batch·in_ch) × (h·w)`; `kernel` is `out_ch × (in_ch·kh·kw)`;
/// `bias` is `1 × out_ch`.
pub fn conv2d_forward_into(
    x: &Matrix,
    kernel: &Matrix,
    bias: &Matrix,
    spec: &ConvSpec,
    out: &mut Matrix,
) {
    let ConvSpec { batch, in_ch, out_ch, h, w, kh, kw } = *spec;
    assert_eq!(x.rows(), batch * in_ch, "conv input row mismatch");
    assert_eq!(x.cols(), h * w, "conv input col mismatch");
    assert_eq!(kernel.shape(), (out_ch, in_ch * kh * kw), "kernel shape mismatch");
    assert_eq!(bias.shape(), (1, out_ch), "bias shape mismatch");
    assert_eq!(out.shape(), (batch * out_ch, h * w), "conv output shape mismatch");
    let (ph0, pw0) = ((kh - 1) / 2, (kw - 1) / 2);
    for b in 0..batch {
        for oc in 0..out_ch {
            let orow = b * out_ch + oc;
            for i in 0..h {
                for j in 0..w {
                    let mut acc = bias[(0, oc)];
                    for ic in 0..in_ch {
                        let xrow = b * in_ch + ic;
                        for di in 0..kh {
                            let si = i as isize + di as isize - ph0 as isize;
                            if si < 0 || si >= h as isize {
                                continue;
                            }
                            for dj in 0..kw {
                                let sj = j as isize + dj as isize - pw0 as isize;
                                if sj < 0 || sj >= w as isize {
                                    continue;
                                }
                                let kcol = ic * kh * kw + di * kw + dj;
                                acc +=
                                    kernel[(oc, kcol)] * x[(xrow, si as usize * w + sj as usize)];
                            }
                        }
                    }
                    out[(orow, i * w + j)] = acc;
                }
            }
        }
    }
}

/// Batched 2-D max pooling with stride = window (floor semantics);
/// writes the pooled maxima and argmax indices into caller-provided
/// buffers (every element of both is overwritten).
pub fn maxpool2d_forward_into(x: &Matrix, spec: &PoolSpec, out: &mut Matrix, argmax: &mut [usize]) {
    let PoolSpec { batch, ch, h, w, ph, pw } = *spec;
    assert_eq!(x.rows(), batch * ch, "pool input row mismatch");
    assert_eq!(x.cols(), h * w, "pool input col mismatch");
    let (ho, wo) = (spec.out_h(), spec.out_w());
    assert_eq!(out.shape(), (batch * ch, ho * wo), "pool output shape mismatch");
    assert_eq!(argmax.len(), batch * ch * ho * wo, "argmax length mismatch");
    for r in 0..batch * ch {
        for oi in 0..ho {
            for oj in 0..wo {
                let mut best = f64::NEG_INFINITY;
                let mut best_idx = 0usize;
                for di in 0..ph {
                    for dj in 0..pw {
                        let idx = (oi * ph + di) * w + (oj * pw + dj);
                        if x[(r, idx)] > best {
                            best = x[(r, idx)];
                            best_idx = idx;
                        }
                    }
                }
                out[(r, oi * wo + oj)] = best;
                argmax[r * ho * wo + oi * wo + oj] = best_idx;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_matches_manual() {
        let mut v = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        softmax_rows_in_place(&mut v);
        assert!((v.row(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v[(0, 2)] > v[(0, 1)] && v[(0, 1)] > v[(0, 0)]);
    }

    #[test]
    fn normalize_rows_matches_manual() {
        let mut v = Matrix::from_rows(&[&[1.0, 3.0]]);
        normalize_rows_in_place(&mut v, 0.0);
        assert_eq!(v, Matrix::from_rows(&[&[0.25, 0.75]]));
    }

    #[test]
    fn tile_then_group_roundtrip_shapes() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut tiled = Matrix::zeros(2, 6);
        tile_cols_into(&x, 3, &mut tiled);
        assert_eq!(&tiled.row(0)[4..6], &[1.0, 2.0]);
        let mut grouped = Matrix::zeros(3, 4);
        group_rows_into(&tiled, 3, &mut grouped);
        // Each group's block equals x flattened row-major.
        for g in 0..3 {
            assert_eq!(grouped.row(g), &[1.0, 2.0, 3.0, 4.0]);
        }
    }

    #[test]
    fn batch_outer_known_values() {
        let col = Matrix::from_rows(&[&[2.0], &[3.0]]);
        let rows = Matrix::from_rows(&[&[1.0, 10.0], &[5.0, 7.0]]);
        let mut out = Matrix::zeros(2, 4);
        batch_outer_into(&col, &rows, &mut out);
        assert_eq!(out, Matrix::from_rows(&[&[2.0, 20.0, 3.0, 30.0], &[10.0, 14.0, 15.0, 21.0]]));
    }

    #[test]
    fn poly_conv_accumulate_single_group_is_matmul() {
        let tx = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 0.0]]);
        let theta = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0]]);
        let mut out = Matrix::zeros(2, 2);
        poly_conv_accumulate(&tx, &theta, &mut out, 1);
        assert!(out.approx_eq(&tx.matmul(&theta), 1e-12));
    }
}
