//! Weight initialisation.

use gcwc_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Glorot/Xavier uniform initialisation: entries drawn from
/// `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot_uniform(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-a..a))
}

/// Small-scale uniform initialisation `U(−scale, scale)` (embeddings).
pub fn uniform(rng: &mut StdRng, rows: usize, cols: usize, scale: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-scale..scale))
}

/// Zero initialisation (biases).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::rng::seeded;

    #[test]
    fn glorot_bounds() {
        let mut rng = seeded(1);
        let m = glorot_uniform(&mut rng, 100, 50);
        let a = (6.0 / 150.0f64).sqrt();
        assert!(m.max() < a && m.min() > -a);
        assert!(m.mean().abs() < 0.01);
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = seeded(2);
        let m = uniform(&mut rng, 64, 8, 0.05);
        assert!(m.max() < 0.05 && m.min() > -0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = glorot_uniform(&mut seeded(3), 4, 4);
        let b = glorot_uniform(&mut seeded(3), 4, 4);
        assert_eq!(a, b);
    }
}
