//! Optimizers: SGD and Adam with exponential learning-rate decay, L2
//! regularisation (weight decay) and global-norm gradient clipping —
//! the knobs of the paper's Table III (LR, Decay, Regul).

use gcwc_linalg::Matrix;

use crate::params::ParamStore;

/// Shared training hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OptimConfig {
    /// Initial learning rate (Table III "LR").
    pub learning_rate: f64,
    /// Per-epoch multiplicative decay (Table III "Decay").
    pub lr_decay: f64,
    /// L2 weight-decay coefficient (Table III "Regul").
    pub weight_decay: f64,
    /// Global gradient-norm clip (0 disables clipping).
    pub grad_clip: f64,
}

impl Default for OptimConfig {
    fn default() -> Self {
        Self { learning_rate: 1e-3, lr_decay: 1.0, weight_decay: 0.0, grad_clip: 5.0 }
    }
}

/// The Adam optimizer (Kingma & Ba) with the paper's schedule knobs.
#[derive(Debug)]
pub struct Adam {
    cfg: OptimConfig,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    epoch: u32,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

/// A deep copy of an [`Adam`] optimizer's mutable state: the step and
/// epoch counters plus both moment estimates. Used to snapshot the
/// optimizer before an update so a diverging step can be rolled back,
/// and to persist training state for bit-identical resume.
#[derive(Clone, Debug, Default)]
pub struct AdamState {
    /// Update step counter (bias-correction exponent).
    pub t: u64,
    /// Completed epochs (learning-rate decay exponent).
    pub epoch: u32,
    /// First-moment estimates, one per parameter.
    pub m: Vec<Matrix>,
    /// Second-moment estimates, one per parameter.
    pub v: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer for the parameters currently in `store`.
    pub fn new(store: &ParamStore, cfg: OptimConfig) -> Self {
        let m = store.iter().map(|(_, p)| Matrix::zeros(p.value.rows(), p.value.cols())).collect();
        let v = store.iter().map(|(_, p)| Matrix::zeros(p.value.rows(), p.value.cols())).collect();
        Self { cfg, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, epoch: 0, m, v }
    }

    /// Current effective learning rate (after decay).
    pub fn effective_lr(&self) -> f64 {
        self.cfg.learning_rate * self.cfg.lr_decay.powi(self.epoch as i32)
    }

    /// Signals the end of an epoch (applies learning-rate decay).
    pub fn end_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Copies the optimizer's mutable state into `dst`, reusing its
    /// buffers when the shapes already match (no allocation once warm).
    pub fn save_state(&self, dst: &mut AdamState) {
        dst.t = self.t;
        dst.epoch = self.epoch;
        copy_matrices(&self.m, &mut dst.m);
        copy_matrices(&self.v, &mut dst.v);
    }

    /// Restores state captured by [`Adam::save_state`].
    ///
    /// # Panics
    /// Panics if `src` has a different number of moment matrices than
    /// this optimizer (state from a different parameter set).
    pub fn restore_state(&mut self, src: &AdamState) {
        assert_eq!(src.m.len(), self.m.len(), "Adam state is for a different parameter set");
        assert_eq!(src.v.len(), self.v.len(), "Adam state is for a different parameter set");
        self.t = src.t;
        self.epoch = src.epoch;
        copy_matrices(&src.m, &mut self.m);
        copy_matrices(&src.v, &mut self.v);
    }

    /// Applies one update from the accumulated gradients, then leaves the
    /// gradients untouched (callers decide when to zero them).
    pub fn step(&mut self, store: &mut ParamStore) {
        // Gradient clipping by global norm.
        if self.cfg.grad_clip > 0.0 {
            let norm = store.grad_norm();
            if norm > self.cfg.grad_clip {
                store.scale_grads(self.cfg.grad_clip / norm);
            }
        }
        self.t += 1;
        let lr = self.effective_lr();
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, (_, p)) in store.iter_mut().enumerate() {
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            for ((g, val), (mi, vi)) in p
                .grad
                .as_slice()
                .iter()
                .zip(p.value.as_mut_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                // Decoupled-ish weight decay folded into the gradient,
                // matching the paper's "Regul" L2 penalty.
                let g = g + self.cfg.weight_decay * *val;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *val -= lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

/// Deep-copies `src` into `dst`, reusing `dst`'s buffers when every
/// shape matches (steady-state snapshots allocate nothing).
fn copy_matrices(src: &[Matrix], dst: &mut Vec<Matrix>) {
    let reusable =
        dst.len() == src.len() && src.iter().zip(dst.iter()).all(|(a, b)| a.shape() == b.shape());
    if reusable {
        for (a, b) in src.iter().zip(dst.iter_mut()) {
            b.copy_from(a);
        }
    } else {
        dst.clear();
        dst.extend(src.iter().cloned());
    }
}

/// Plain stochastic gradient descent (used by small baselines and tests).
#[derive(Debug)]
pub struct Sgd {
    cfg: OptimConfig,
    epoch: u32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(cfg: OptimConfig) -> Self {
        Self { cfg, epoch: 0 }
    }

    /// Signals the end of an epoch (applies learning-rate decay).
    pub fn end_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Applies one descent step.
    pub fn step(&mut self, store: &mut ParamStore) {
        if self.cfg.grad_clip > 0.0 {
            let norm = store.grad_norm();
            if norm > self.cfg.grad_clip {
                store.scale_grads(self.cfg.grad_clip / norm);
            }
        }
        let lr = self.cfg.learning_rate * self.cfg.lr_decay.powi(self.epoch as i32);
        let wd = self.cfg.weight_decay;
        for (_, p) in store.iter_mut() {
            for (val, g) in p.value.as_mut_slice().iter_mut().zip(p.grad.as_slice()) {
                *val -= lr * (g + wd * *val);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use crate::tape::Tape;

    /// Minimise (x - 3)^2 over a single scalar parameter.
    fn quadratic_loss(
        store: &ParamStore,
        id: crate::params::ParamId,
    ) -> (Tape, crate::tape::NodeId) {
        let mut tape = Tape::new();
        let x = tape.param(store, id);
        let target = tape.constant(Matrix::from_vec(1, 1, vec![3.0]));
        let d = tape.sub(x, target);
        let sq = tape.mul(d, d);
        let loss = tape.sum_all(sq);
        (tape, loss)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("x", Matrix::zeros(1, 1));
        let mut adam = Adam::new(&store, OptimConfig { learning_rate: 0.1, ..Default::default() });
        for _ in 0..300 {
            store.zero_grads();
            let (mut tape, loss) = quadratic_loss(&store, id);
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        let x = store.value(id)[(0, 0)];
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("x", Matrix::zeros(1, 1));
        let mut sgd = Sgd::new(OptimConfig { learning_rate: 0.1, ..Default::default() });
        for _ in 0..200 {
            store.zero_grads();
            let (mut tape, loss) = quadratic_loss(&store, id);
            tape.backward(loss, &mut store);
            sgd.step(&mut store);
        }
        let x = store.value(id)[(0, 0)];
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_state_roundtrip_restores_the_trajectory() {
        let mut store = ParamStore::new();
        let id = store.add("x", Matrix::zeros(1, 1));
        let cfg = OptimConfig { learning_rate: 0.1, ..Default::default() };
        let mut adam = Adam::new(&store, cfg);
        let step = |adam: &mut Adam, store: &mut ParamStore| {
            store.zero_grads();
            let (mut tape, loss) = quadratic_loss(store, id);
            tape.backward(loss, store);
            adam.step(store);
        };
        for _ in 0..5 {
            step(&mut adam, &mut store);
        }
        // Snapshot mid-run, continue, then roll back and replay: the
        // replayed trajectory must be bit-identical.
        let mut state = AdamState::default();
        adam.save_state(&mut state);
        let params_at_snap = store.value(id)[(0, 0)];
        for _ in 0..3 {
            step(&mut adam, &mut store);
        }
        let after = store.value(id)[(0, 0)];
        adam.restore_state(&state);
        *store.value_mut(id) = Matrix::filled(1, 1, params_at_snap);
        for _ in 0..3 {
            step(&mut adam, &mut store);
        }
        assert_eq!(store.value(id)[(0, 0)].to_bits(), after.to_bits());
    }

    #[test]
    fn lr_decay_reduces_effective_lr() {
        let store = ParamStore::new();
        let mut adam = Adam::new(
            &store,
            OptimConfig { learning_rate: 1.0, lr_decay: 0.5, ..Default::default() },
        );
        assert_eq!(adam.effective_lr(), 1.0);
        adam.end_epoch();
        assert_eq!(adam.effective_lr(), 0.5);
        adam.end_epoch();
        assert_eq!(adam.effective_lr(), 0.25);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut store = ParamStore::new();
        let id = store.add("x", Matrix::filled(1, 1, 10.0));
        let mut sgd = Sgd::new(OptimConfig {
            learning_rate: 0.1,
            weight_decay: 1.0,
            grad_clip: 0.0,
            ..Default::default()
        });
        // No loss gradient at all: decay alone must shrink the value.
        store.zero_grads();
        sgd.step(&mut store);
        assert!(store.value(id)[(0, 0)] < 10.0);
    }

    #[test]
    fn clipping_bounds_gradient_norm() {
        let mut store = ParamStore::new();
        let id = store.add("x", Matrix::zeros(1, 2));
        store.accumulate_grad(id, &Matrix::from_rows(&[&[30.0, 40.0]])); // norm 50
        let mut sgd =
            Sgd::new(OptimConfig { learning_rate: 1.0, grad_clip: 5.0, ..Default::default() });
        sgd.step(&mut store);
        // Clipped gradient = (3, 4); value = -(3, 4).
        assert!(store.value(id).approx_eq(&Matrix::from_rows(&[&[-3.0, -4.0]]), 1e-12));
    }
}
