//! Reverse-mode automatic differentiation over dense matrices.
//!
//! A [`Tape`] is a define-by-run computation graph: every builder method
//! evaluates its result eagerly and records the operation so that
//! [`Tape::backward`] can later push cotangents from a scalar loss back
//! to every parameter leaf. Tapes are rebuilt per training sample — the
//! matrices involved are small (≤ `8 600 × 16`), so construction cost is
//! negligible next to the matmuls.

use std::sync::Arc;

use gcwc_graph::{PolyBasis, PoolingMap};
use gcwc_linalg::Matrix;

use crate::params::{ParamId, ParamStore};

/// Identifies a node within a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId(usize);

/// Shape bookkeeping for 2-D convolutions (`same` padding, stride 1).
///
/// Tensors are laid out as matrices with `batch·channels` rows and `h·w`
/// columns (row-major image per row).
#[derive(Clone, Copy, Debug)]
pub struct ConvSpec {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
}

/// Shape bookkeeping for 2-D max pooling (stride = window, floor).
#[derive(Clone, Copy, Debug)]
pub struct PoolSpec {
    /// Batch size.
    pub batch: usize,
    /// Channels.
    pub ch: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Pool window height.
    pub ph: usize,
    /// Pool window width.
    pub pw: usize,
}

impl PoolSpec {
    /// Output height (`floor(h / ph)`).
    pub fn out_h(&self) -> usize {
        self.h / self.ph
    }

    /// Output width (`floor(w / pw)`).
    pub fn out_w(&self) -> usize {
        self.w / self.pw
    }
}

pub(crate) enum Op {
    Const,
    Param(ParamId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    DivEps {
        a: NodeId,
        b: NodeId,
        eps: f64,
    },
    Scale(NodeId, f64),
    MatMul(NodeId, NodeId),
    AddRowBroadcast {
        x: NodeId,
        bias: NodeId,
    },
    Tanh(NodeId),
    Sigmoid(NodeId),
    Relu(NodeId),
    LogEps {
        x: NodeId,
        eps: f64,
    },
    SoftmaxRows(NodeId),
    NormalizeRows {
        x: NodeId,
        eps: f64,
    },
    PowScalar {
        x: NodeId,
        p: f64,
    },
    SumAll(NodeId),
    Transpose(NodeId),
    Reshape {
        x: NodeId,
    },
    HstackList(Vec<NodeId>),
    SelectRow {
        x: NodeId,
        row: usize,
    },
    SelectCols {
        x: NodeId,
        start: usize,
    },
    TileCols {
        x: NodeId,
        times: usize,
    },
    Dropout {
        x: NodeId,
        mask: Matrix,
    },
    PolyConv {
        x: NodeId,
        thetas: Vec<NodeId>,
        basis: Arc<dyn PolyBasis>,
        saved: Vec<Matrix>,
        groups: usize,
    },
    GraphMaxPool {
        x: NodeId,
        map: Arc<PoolingMap>,
        argmax: Vec<usize>,
    },
    Conv2d {
        x: NodeId,
        kernel: NodeId,
        bias: NodeId,
        spec: ConvSpec,
    },
    MaxPool2d {
        x: NodeId,
        spec: PoolSpec,
        argmax: Vec<usize>,
    },
    BatchOuter {
        col: NodeId,
        rows: NodeId,
    },
    KlLossMasked {
        pred: NodeId,
        label: Matrix,
        row_mask: Vec<f64>,
        eps: f64,
    },
    MseMasked {
        pred: NodeId,
        label: Matrix,
        mask: Matrix,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// A define-by-run reverse-mode autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        debug_assert!(value.is_finite(), "non-finite value produced by tape op");
        self.nodes.push(Node { value, op });
        NodeId(self.nodes.len() - 1)
    }

    // ----- leaves --------------------------------------------------------

    /// Records a constant (no gradient flows into it).
    pub fn constant(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Const)
    }

    /// Records a parameter leaf, copying its current value in.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    // ----- arithmetic -----------------------------------------------------

    /// Elementwise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a) + self.value(b);
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference `a − b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a) - self.value(b);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).hadamard(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise quotient `a / (b + eps)`.
    pub fn div_eps(&mut self, a: NodeId, b: NodeId, eps: f64) -> NodeId {
        let v = self.value(a).zip_with(self.value(b), |x, y| x / (y + eps));
        self.push(v, Op::DivEps { a, b, eps })
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: NodeId, s: f64) -> NodeId {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Adds a `1 × c` bias row to every row of an `r × c` matrix.
    pub fn add_row_broadcast(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let xv = self.value(x);
        let bv = self.value(bias);
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(bv.cols(), xv.cols(), "bias width mismatch");
        let mut v = xv.clone();
        for i in 0..v.rows() {
            for (dst, src) in v.row_mut(i).iter_mut().zip(bv.row(0)) {
                *dst += src;
            }
        }
        self.push(v, Op::AddRowBroadcast { x, bias })
    }

    // ----- activations ----------------------------------------------------

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f64::tanh);
        self.push(v, Op::Tanh(x))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|t| 1.0 / (1.0 + (-t).exp()));
        self.push(v, Op::Sigmoid(x))
    }

    /// Elementwise rectifier.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|t| t.max(0.0));
        self.push(v, Op::Relu(x))
    }

    /// Elementwise `ln(x + eps)`.
    pub fn log_eps(&mut self, x: NodeId, eps: f64) -> NodeId {
        let v = self.value(x).map(|t| (t + eps).ln());
        self.push(v, Op::LogEps { x, eps })
    }

    /// Elementwise power `x^p` (requires `x > 0` when `p` is fractional).
    pub fn pow_scalar(&mut self, x: NodeId, p: f64) -> NodeId {
        let v = self.value(x).map(|t| t.powf(p));
        self.push(v, Op::PowScalar { x, p })
    }

    /// Row-wise softmax (numerically stabilised).
    pub fn softmax_rows(&mut self, x: NodeId) -> NodeId {
        let xv = self.value(x);
        let mut v = xv.clone();
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for t in row.iter_mut() {
                *t = (*t - max).exp();
                sum += *t;
            }
            for t in row.iter_mut() {
                *t /= sum;
            }
        }
        self.push(v, Op::SoftmaxRows(x))
    }

    /// Row-wise normalisation `y_ij = x_ij / (Σ_j x_ij + eps)`.
    ///
    /// Used for the Bayesian-inference combination (Eq. 10): inputs are
    /// positive, so the result is a valid distribution per row.
    pub fn normalize_rows(&mut self, x: NodeId, eps: f64) -> NodeId {
        let xv = self.value(x);
        let mut v = xv.clone();
        for i in 0..v.rows() {
            let s: f64 = v.row(i).iter().sum::<f64>() + eps;
            for t in v.row_mut(i) {
                *t /= s;
            }
        }
        self.push(v, Op::NormalizeRows { x, eps })
    }

    // ----- shape ----------------------------------------------------------

    /// Sums all entries into a `1 × 1` node.
    pub fn sum_all(&mut self, x: NodeId) -> NodeId {
        let v = Matrix::from_vec(1, 1, vec![self.value(x).sum()]);
        self.push(v, Op::SumAll(x))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).transpose();
        self.push(v, Op::Transpose(x))
    }

    /// Reinterprets the row-major data with a new shape.
    pub fn reshape(&mut self, x: NodeId, rows: usize, cols: usize) -> NodeId {
        let xv = self.value(x);
        assert_eq!(xv.len(), rows * cols, "reshape size mismatch");
        let v = Matrix::from_vec(rows, cols, xv.as_slice().to_vec());
        self.push(v, Op::Reshape { x })
    }

    /// Concatenates nodes side by side (equal row counts).
    pub fn hstack(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "hstack of nothing");
        let mut v = self.value(parts[0]).clone();
        for &p in &parts[1..] {
            v = v.hstack(self.value(p));
        }
        self.push(v, Op::HstackList(parts.to_vec()))
    }

    /// Extracts row `row` as a `1 × c` node.
    pub fn select_row(&mut self, x: NodeId, row: usize) -> NodeId {
        let v = Matrix::row_vector(self.value(x).row(row));
        self.push(v, Op::SelectRow { x, row })
    }

    /// Horizontally tiles `x` `times` times (`r × c` → `r × (times·c)`).
    ///
    /// Used to broadcast a shared per-filter bias across bucket groups.
    pub fn tile_cols(&mut self, x: NodeId, times: usize) -> NodeId {
        assert!(times >= 1, "tile count must be positive");
        let xv = self.value(x);
        let (r, c) = xv.shape();
        let mut v = Matrix::zeros(r, c * times);
        for i in 0..r {
            for t in 0..times {
                v.row_mut(i)[t * c..(t + 1) * c].copy_from_slice(xv.row(i));
            }
        }
        self.push(v, Op::TileCols { x, times })
    }

    /// Extracts the column block `start..start+len` as an `r × len` node.
    pub fn select_cols(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        let xv = self.value(x);
        assert!(start + len <= xv.cols(), "column block out of range");
        let mut v = Matrix::zeros(xv.rows(), len);
        for r in 0..xv.rows() {
            v.row_mut(r).copy_from_slice(&xv.row(r)[start..start + len]);
        }
        self.push(v, Op::SelectCols { x, start })
    }

    /// Inverted dropout with the given keep-mask (entries 0 or
    /// `1/(1−p)`); build the mask with
    /// [`crate::layers::dropout_mask`].
    pub fn dropout(&mut self, x: NodeId, mask: Matrix) -> NodeId {
        let v = self.value(x).hadamard(&mask);
        self.push(v, Op::Dropout { x, mask })
    }

    // ----- graph ops ------------------------------------------------------

    /// Graph polynomial convolution: `Σ_k M_k(graph) · x · θ_k`.
    ///
    /// `x` is `n × c_in`; each `θ_k` is `c_in × c_out`; the basis supplies
    /// the fixed operators `M_k` (Chebyshev of the scaled Laplacian for
    /// GCWC, random-walk powers for DR).
    pub fn poly_conv(&mut self, x: NodeId, thetas: &[NodeId], basis: Arc<dyn PolyBasis>) -> NodeId {
        self.poly_conv_grouped(x, thetas, basis, 1)
    }

    /// Grouped graph polynomial convolution.
    ///
    /// `x` is `n × (groups · c_in)` laid out group-major; the *same*
    /// `θ_k ∈ R^{c_in×c_out}` filters are applied to every group,
    /// producing `n × (groups · c_out)`. This is how GCWC shares filters
    /// across the `m` histogram buckets (paper §IV-B applies each filter
    /// to every bucket column) while paying the sparse basis expansion
    /// only once.
    pub fn poly_conv_grouped(
        &mut self,
        x: NodeId,
        thetas: &[NodeId],
        basis: Arc<dyn PolyBasis>,
        groups: usize,
    ) -> NodeId {
        assert_eq!(thetas.len(), basis.order(), "theta count must equal basis order");
        assert!(groups >= 1, "need at least one group");
        let xv = self.value(x);
        assert_eq!(xv.cols() % groups, 0, "columns not divisible by groups");
        let c_in = xv.cols() / groups;
        let c_out = self.value(thetas[0]).cols();
        let n = xv.rows();
        let saved = basis.forward(xv);
        let mut out = Matrix::zeros(n, groups * c_out);
        for (tx, &th) in saved.iter().zip(thetas) {
            let thv = &self.nodes[th.0].value;
            assert_eq!(thv.rows(), c_in, "theta input-channel mismatch");
            for g in 0..groups {
                // out[:, g·c_out ..] += tx[:, g·c_in ..] · θ_k
                for i in 0..n {
                    let tx_row = &tx.row(i)[g * c_in..(g + 1) * c_in];
                    let out_row = &mut out.row_mut(i)[g * c_out..(g + 1) * c_out];
                    for (ci, &a) in tx_row.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        for (o, &b) in out_row.iter_mut().zip(thv.row(ci)) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
        self.push(out, Op::PolyConv { x, thetas: thetas.to_vec(), basis, saved, groups })
    }

    /// Graph max pooling over precomputed clusters.
    pub fn graph_max_pool(&mut self, x: NodeId, map: Arc<PoolingMap>) -> NodeId {
        let (v, argmax) = map.max_forward(self.value(x));
        self.push(v, Op::GraphMaxPool { x, map, argmax })
    }

    // ----- dense conv ops (CP-CNN, classic CNN baseline) -------------------

    /// Batched 2-D convolution with `same` zero padding and stride 1.
    ///
    /// `x` is `(batch·in_ch) × (h·w)`; `kernel` is
    /// `out_ch × (in_ch·kh·kw)`; `bias` is `1 × out_ch`. Output is
    /// `(batch·out_ch) × (h·w)`.
    pub fn conv2d(&mut self, x: NodeId, kernel: NodeId, bias: NodeId, spec: ConvSpec) -> NodeId {
        let v = conv2d_forward(self.value(x), self.value(kernel), self.value(bias), &spec);
        self.push(v, Op::Conv2d { x, kernel, bias, spec })
    }

    /// Batched 2-D max pooling with stride = window (floor semantics).
    pub fn max_pool2d(&mut self, x: NodeId, spec: PoolSpec) -> NodeId {
        let (v, argmax) = maxpool2d_forward(self.value(x), &spec);
        self.push(v, Op::MaxPool2d { x, spec, argmax })
    }

    /// Batched outer product: for a column `p ∈ R^{β×1}` and rows
    /// `Z ∈ R^{n×m}`, produces `n × (β·m)` where block row `b` is the
    /// row-major flattening of `p · Z[b,·]` (the CP-CNN input maps,
    /// paper §V-B3).
    pub fn batch_outer(&mut self, col: NodeId, rows: NodeId) -> NodeId {
        let p = self.value(col);
        let z = self.value(rows);
        assert_eq!(p.cols(), 1, "first operand must be a column vector");
        let (beta, n, m) = (p.rows(), z.rows(), z.cols());
        let mut v = Matrix::zeros(n, beta * m);
        for b in 0..n {
            for k in 0..beta {
                for j in 0..m {
                    v[(b, k * m + j)] = p[(k, 0)] * z[(b, j)];
                }
            }
        }
        self.push(v, Op::BatchOuter { col, rows })
    }

    // ----- losses -----------------------------------------------------------

    /// The paper's masked KL loss (Eq. 3): the divergence
    /// `KL(w_i· ‖ ŵ_i·)` summed over covered rows,
    /// `L = Σ_i I_i Σ_j w_ij · ln((w_ij + ε)/(ŵ_ij + ε))`,
    /// where `pred = Ŵ`, `label = W`, and `row_mask[i] = I_i`.
    ///
    /// Note: Eq. 3 *as printed* weights the log-ratio by `ŵ` (the reverse
    /// direction), which contradicts both the equation's own name
    /// `KL(w‖ŵ)` and the forward-KL evaluation metric (Eq. 11); training
    /// the reverse direction is mode-seeking and measurably hurts MKLR.
    /// We implement the stated forward divergence.
    pub fn kl_loss_masked(
        &mut self,
        pred: NodeId,
        label: Matrix,
        row_mask: Vec<f64>,
        eps: f64,
    ) -> NodeId {
        let p = self.value(pred);
        assert_eq!(p.shape(), label.shape(), "label shape mismatch");
        assert_eq!(row_mask.len(), p.rows(), "mask length mismatch");
        let mut loss = 0.0;
        for i in 0..p.rows() {
            if row_mask[i] == 0.0 {
                continue;
            }
            for (w_hat, w) in p.row(i).iter().zip(label.row(i)) {
                loss += row_mask[i] * w * ((w + eps) / (w_hat + eps)).ln();
            }
        }
        let v = Matrix::from_vec(1, 1, vec![loss]);
        self.push(v, Op::KlLossMasked { pred, label, row_mask, eps })
    }

    /// Masked mean squared error:
    /// `L = Σ_ij mask_ij (pred_ij − label_ij)² / max(1, Σ mask)`.
    pub fn mse_masked(&mut self, pred: NodeId, label: Matrix, mask: Matrix) -> NodeId {
        let p = self.value(pred);
        assert_eq!(p.shape(), label.shape(), "label shape mismatch");
        assert_eq!(p.shape(), mask.shape(), "mask shape mismatch");
        let count: f64 = mask.sum().max(1.0);
        let mut loss = 0.0;
        for ((&pv, &lv), &mv) in p.as_slice().iter().zip(label.as_slice()).zip(mask.as_slice()) {
            loss += mv * (pv - lv) * (pv - lv);
        }
        let v = Matrix::from_vec(1, 1, vec![loss / count]);
        self.push(v, Op::MseMasked { pred, label, mask })
    }

    // ----- backward ---------------------------------------------------------

    /// Back-propagates from the scalar node `loss`, accumulating parameter
    /// gradients into `sink` — a [`ParamStore`] in serial training, or a
    /// private [`crate::params::GradBuffer`] per sample in data-parallel
    /// training.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&mut self, loss: NodeId, sink: &mut impl crate::params::GradSink) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        let n = self.nodes.len();
        let mut grads: Vec<Option<Matrix>> = (0..n).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for i in (0..n).rev() {
            let Some(g) = grads[i].take() else { continue };
            // Split borrows: the node being differentiated vs the grads
            // vec we accumulate into.
            let node = &self.nodes[i];
            match &node.op {
                Op::Const => {}
                Op::Param(pid) => sink.accumulate_grad(*pid, &g),
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let ga = g.hadamard(&self.nodes[b.0].value);
                    let gb = g.hadamard(&self.nodes[a.0].value);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::DivEps { a, b, eps } => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let ga = g.zip_with(bv, |gv, y| gv / (y + eps));
                    let gb = Matrix::from_fn(g.rows(), g.cols(), |r, c| {
                        let d = bv[(r, c)] + eps;
                        -g[(r, c)] * av[(r, c)] / (d * d)
                    });
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Scale(a, s) => accumulate(&mut grads, *a, g.scale(*s)),
                Op::MatMul(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let ga = g.matmul(&bv.transpose());
                    let gb = av.transpose().matmul(&g);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::AddRowBroadcast { x, bias } => {
                    let mut gb = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (dst, src) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *dst += src;
                        }
                    }
                    accumulate(&mut grads, *x, g);
                    accumulate(&mut grads, *bias, gb);
                }
                Op::Tanh(x) => {
                    let gx = g.zip_with(&node.value, |gv, y| gv * (1.0 - y * y));
                    accumulate(&mut grads, *x, gx);
                }
                Op::Sigmoid(x) => {
                    let gx = g.zip_with(&node.value, |gv, y| gv * y * (1.0 - y));
                    accumulate(&mut grads, *x, gx);
                }
                Op::Relu(x) => {
                    let gx = g.zip_with(&node.value, |gv, y| if y > 0.0 { gv } else { 0.0 });
                    accumulate(&mut grads, *x, gx);
                }
                Op::LogEps { x, eps } => {
                    let xv = &self.nodes[x.0].value;
                    let gx = g.zip_with(xv, |gv, t| gv / (t + eps));
                    accumulate(&mut grads, *x, gx);
                }
                Op::PowScalar { x, p } => {
                    let xv = &self.nodes[x.0].value;
                    let gx = g.zip_with(xv, |gv, t| gv * p * t.powf(p - 1.0));
                    accumulate(&mut grads, *x, gx);
                }
                Op::SoftmaxRows(x) => {
                    let y = &node.value;
                    let mut gx = Matrix::zeros(g.rows(), g.cols());
                    for r in 0..g.rows() {
                        let dot: f64 = g.row(r).iter().zip(y.row(r)).map(|(a, b)| a * b).sum();
                        for c in 0..g.cols() {
                            gx[(r, c)] = y[(r, c)] * (g[(r, c)] - dot);
                        }
                    }
                    accumulate(&mut grads, *x, gx);
                }
                Op::NormalizeRows { x, eps } => {
                    let xv = &self.nodes[x.0].value;
                    let y = &node.value;
                    let mut gx = Matrix::zeros(g.rows(), g.cols());
                    for r in 0..g.rows() {
                        let s: f64 = xv.row(r).iter().sum::<f64>() + eps;
                        let dot: f64 = g.row(r).iter().zip(y.row(r)).map(|(a, b)| a * b).sum();
                        for c in 0..g.cols() {
                            gx[(r, c)] = (g[(r, c)] - dot) / s;
                        }
                    }
                    accumulate(&mut grads, *x, gx);
                }
                Op::SumAll(x) => {
                    let s = g[(0, 0)];
                    let xv = &self.nodes[x.0].value;
                    accumulate(&mut grads, *x, Matrix::filled(xv.rows(), xv.cols(), s));
                }
                Op::Transpose(x) => {
                    accumulate(&mut grads, *x, g.transpose());
                }
                Op::Reshape { x } => {
                    let xv = &self.nodes[x.0].value;
                    let gx = Matrix::from_vec(xv.rows(), xv.cols(), g.as_slice().to_vec());
                    accumulate(&mut grads, *x, gx);
                }
                Op::HstackList(parts) => {
                    let mut offset = 0;
                    let part_shapes: Vec<(usize, usize)> =
                        parts.iter().map(|p| self.nodes[p.0].value.shape()).collect();
                    let parts = parts.clone();
                    for (&p, (rows, cols)) in parts.iter().zip(part_shapes) {
                        let mut gp = Matrix::zeros(rows, cols);
                        for r in 0..rows {
                            gp.row_mut(r).copy_from_slice(&g.row(r)[offset..offset + cols]);
                        }
                        offset += cols;
                        accumulate(&mut grads, p, gp);
                    }
                }
                Op::TileCols { x, times } => {
                    let xv = &self.nodes[x.0].value;
                    let (r, c) = xv.shape();
                    let mut gx = Matrix::zeros(r, c);
                    for i in 0..r {
                        for t in 0..*times {
                            for (dst, &src) in
                                gx.row_mut(i).iter_mut().zip(&g.row(i)[t * c..(t + 1) * c])
                            {
                                *dst += src;
                            }
                        }
                    }
                    accumulate(&mut grads, *x, gx);
                }
                Op::SelectCols { x, start } => {
                    let xv = &self.nodes[x.0].value;
                    let mut gx = Matrix::zeros(xv.rows(), xv.cols());
                    for r in 0..g.rows() {
                        gx.row_mut(r)[*start..*start + g.cols()].copy_from_slice(g.row(r));
                    }
                    accumulate(&mut grads, *x, gx);
                }
                Op::SelectRow { x, row } => {
                    let xv = &self.nodes[x.0].value;
                    let mut gx = Matrix::zeros(xv.rows(), xv.cols());
                    gx.row_mut(*row).copy_from_slice(g.row(0));
                    accumulate(&mut grads, *x, gx);
                }
                Op::Dropout { x, mask } => {
                    let gx = g.hadamard(mask);
                    accumulate(&mut grads, *x, gx);
                }
                Op::PolyConv { x, thetas, basis, saved, groups } => {
                    // Per tap k (summing over groups g):
                    //   dθ_k = Σ_g (M_k x)_gᵀ G_g
                    //   B_k|_g = G_g θ_kᵀ,  dx = Σ_k M_kᵀ B_k.
                    let groups = *groups;
                    let thetas = thetas.clone();
                    let n = g.rows();
                    let c_out = g.cols() / groups;
                    let xv_cols = self.nodes[x.0].value.cols();
                    let c_in = xv_cols / groups;
                    let mut cotangents = Vec::with_capacity(thetas.len());
                    for (tx, &th) in saved.iter().zip(&thetas) {
                        let thv = &self.nodes[th.0].value;
                        let mut gth = Matrix::zeros(c_in, c_out);
                        let mut b_k = Matrix::zeros(n, xv_cols);
                        for gi in 0..groups {
                            for i in 0..n {
                                let g_row = &g.row(i)[gi * c_out..(gi + 1) * c_out];
                                let tx_row = &tx.row(i)[gi * c_in..(gi + 1) * c_in];
                                for (ci, &a) in tx_row.iter().enumerate() {
                                    if a != 0.0 {
                                        for (dst, &gv) in gth.row_mut(ci).iter_mut().zip(g_row) {
                                            *dst += a * gv;
                                        }
                                    }
                                }
                                let b_row = &mut b_k.row_mut(i)[gi * c_in..(gi + 1) * c_in];
                                for (ci, dst) in b_row.iter_mut().enumerate() {
                                    *dst += g_row
                                        .iter()
                                        .zip(thv.row(ci))
                                        .map(|(&gv, &t)| gv * t)
                                        .sum::<f64>();
                                }
                            }
                        }
                        cotangents.push(b_k);
                        accumulate(&mut grads, th, gth);
                    }
                    let gx = basis.adjoint_combine(&cotangents);
                    accumulate(&mut grads, *x, gx);
                }
                Op::GraphMaxPool { x, map, argmax } => {
                    let gx = map.max_backward(&g, argmax);
                    accumulate(&mut grads, *x, gx);
                }
                Op::Conv2d { x, kernel, bias, spec } => {
                    let xv = &self.nodes[x.0].value;
                    let kv = &self.nodes[kernel.0].value;
                    let (gx, gk, gb) = conv2d_backward(xv, kv, &g, spec);
                    accumulate(&mut grads, *x, gx);
                    accumulate(&mut grads, *kernel, gk);
                    accumulate(&mut grads, *bias, gb);
                }
                Op::MaxPool2d { x, spec, argmax } => {
                    let gx = maxpool2d_backward(&g, spec, argmax);
                    accumulate(&mut grads, *x, gx);
                }
                Op::BatchOuter { col, rows } => {
                    let p = &self.nodes[col.0].value;
                    let z = &self.nodes[rows.0].value;
                    let (beta, n, m) = (p.rows(), z.rows(), z.cols());
                    let mut gp = Matrix::zeros(beta, 1);
                    let mut gz = Matrix::zeros(n, m);
                    for b in 0..n {
                        for k in 0..beta {
                            for j in 0..m {
                                let gv = g[(b, k * m + j)];
                                gp[(k, 0)] += gv * z[(b, j)];
                                gz[(b, j)] += gv * p[(k, 0)];
                            }
                        }
                    }
                    accumulate(&mut grads, *col, gp);
                    accumulate(&mut grads, *rows, gz);
                }
                Op::KlLossMasked { pred, label, row_mask, eps } => {
                    // d/dŵ [w · ln((w+ε)/(ŵ+ε))] = −w/(ŵ+ε).
                    let pv = &self.nodes[pred.0].value;
                    let go = g[(0, 0)];
                    let mut gp = Matrix::zeros(pv.rows(), pv.cols());
                    for r in 0..pv.rows() {
                        if row_mask[r] == 0.0 {
                            continue;
                        }
                        for c in 0..pv.cols() {
                            let w_hat = pv[(r, c)];
                            let w = label[(r, c)];
                            gp[(r, c)] = -go * row_mask[r] * w / (w_hat + eps);
                        }
                    }
                    accumulate(&mut grads, *pred, gp);
                }
                Op::MseMasked { pred, label, mask } => {
                    let pv = &self.nodes[pred.0].value;
                    let go = g[(0, 0)];
                    let count: f64 = mask.sum().max(1.0);
                    let gp = Matrix::from_fn(pv.rows(), pv.cols(), |r, c| {
                        go * 2.0 * mask[(r, c)] * (pv[(r, c)] - label[(r, c)]) / count
                    });
                    accumulate(&mut grads, *pred, gp);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Matrix>], id: NodeId, delta: Matrix) {
    match &mut grads[id.0] {
        Some(existing) => {
            assert_eq!(existing.shape(), delta.shape(), "gradient shape mismatch");
            for (dst, src) in existing.as_mut_slice().iter_mut().zip(delta.as_slice()) {
                *dst += src;
            }
        }
        slot @ None => *slot = Some(delta),
    }
}

// ----- dense conv kernels ----------------------------------------------------

fn conv2d_forward(x: &Matrix, kernel: &Matrix, bias: &Matrix, spec: &ConvSpec) -> Matrix {
    let ConvSpec { batch, in_ch, out_ch, h, w, kh, kw } = *spec;
    assert_eq!(x.rows(), batch * in_ch, "conv input row mismatch");
    assert_eq!(x.cols(), h * w, "conv input col mismatch");
    assert_eq!(kernel.shape(), (out_ch, in_ch * kh * kw), "kernel shape mismatch");
    assert_eq!(bias.shape(), (1, out_ch), "bias shape mismatch");
    let (ph0, pw0) = ((kh - 1) / 2, (kw - 1) / 2);
    let mut out = Matrix::zeros(batch * out_ch, h * w);
    for b in 0..batch {
        for oc in 0..out_ch {
            let orow = b * out_ch + oc;
            for i in 0..h {
                for j in 0..w {
                    let mut acc = bias[(0, oc)];
                    for ic in 0..in_ch {
                        let xrow = b * in_ch + ic;
                        for di in 0..kh {
                            let si = i as isize + di as isize - ph0 as isize;
                            if si < 0 || si >= h as isize {
                                continue;
                            }
                            for dj in 0..kw {
                                let sj = j as isize + dj as isize - pw0 as isize;
                                if sj < 0 || sj >= w as isize {
                                    continue;
                                }
                                let kcol = ic * kh * kw + di * kw + dj;
                                acc +=
                                    kernel[(oc, kcol)] * x[(xrow, si as usize * w + sj as usize)];
                            }
                        }
                    }
                    out[(orow, i * w + j)] = acc;
                }
            }
        }
    }
    out
}

fn conv2d_backward(
    x: &Matrix,
    kernel: &Matrix,
    g: &Matrix,
    spec: &ConvSpec,
) -> (Matrix, Matrix, Matrix) {
    let ConvSpec { batch, in_ch, out_ch, h, w, kh, kw } = *spec;
    let (ph0, pw0) = ((kh - 1) / 2, (kw - 1) / 2);
    let mut gx = Matrix::zeros(batch * in_ch, h * w);
    let mut gk = Matrix::zeros(out_ch, in_ch * kh * kw);
    let mut gb = Matrix::zeros(1, out_ch);
    for b in 0..batch {
        for oc in 0..out_ch {
            let orow = b * out_ch + oc;
            for i in 0..h {
                for j in 0..w {
                    let gv = g[(orow, i * w + j)];
                    if gv == 0.0 {
                        continue;
                    }
                    gb[(0, oc)] += gv;
                    for ic in 0..in_ch {
                        let xrow = b * in_ch + ic;
                        for di in 0..kh {
                            let si = i as isize + di as isize - ph0 as isize;
                            if si < 0 || si >= h as isize {
                                continue;
                            }
                            for dj in 0..kw {
                                let sj = j as isize + dj as isize - pw0 as isize;
                                if sj < 0 || sj >= w as isize {
                                    continue;
                                }
                                let kcol = ic * kh * kw + di * kw + dj;
                                let xidx = (xrow, si as usize * w + sj as usize);
                                gk[(oc, kcol)] += gv * x[xidx];
                                gx[xidx] += gv * kernel[(oc, kcol)];
                            }
                        }
                    }
                }
            }
        }
    }
    (gx, gk, gb)
}

fn maxpool2d_forward(x: &Matrix, spec: &PoolSpec) -> (Matrix, Vec<usize>) {
    let PoolSpec { batch, ch, h, w, ph, pw } = *spec;
    assert_eq!(x.rows(), batch * ch, "pool input row mismatch");
    assert_eq!(x.cols(), h * w, "pool input col mismatch");
    let (ho, wo) = (spec.out_h(), spec.out_w());
    assert!(ho > 0 && wo > 0, "pool window larger than input");
    let mut out = Matrix::zeros(batch * ch, ho * wo);
    let mut argmax = vec![0usize; batch * ch * ho * wo];
    for r in 0..batch * ch {
        for oi in 0..ho {
            for oj in 0..wo {
                let mut best = f64::NEG_INFINITY;
                let mut best_idx = 0usize;
                for di in 0..ph {
                    for dj in 0..pw {
                        let idx = (oi * ph + di) * w + (oj * pw + dj);
                        if x[(r, idx)] > best {
                            best = x[(r, idx)];
                            best_idx = idx;
                        }
                    }
                }
                out[(r, oi * wo + oj)] = best;
                argmax[r * ho * wo + oi * wo + oj] = best_idx;
            }
        }
    }
    (out, argmax)
}

fn maxpool2d_backward(g: &Matrix, spec: &PoolSpec, argmax: &[usize]) -> Matrix {
    let PoolSpec { batch, ch, h, w, .. } = *spec;
    let (ho, wo) = (spec.out_h(), spec.out_w());
    let mut gx = Matrix::zeros(batch * ch, h * w);
    for r in 0..batch * ch {
        for o in 0..ho * wo {
            gx[(r, argmax[r * ho * wo + o])] += g[(r, o)];
        }
    }
    gx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_are_distributions() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]));
        let y = tape.softmax_rows(x);
        let v = tape.value(y);
        for i in 0..2 {
            assert!((v.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(v.row(i).iter().all(|&p| p > 0.0));
        }
        // Monotone in the logits.
        assert!(v[(0, 2)] > v[(0, 1)] && v[(0, 1)] > v[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[1000.0, 1001.0]]));
        let b = tape.constant(Matrix::from_rows(&[&[0.0, 1.0]]));
        let sa = tape.softmax_rows(a);
        let sb = tape.softmax_rows(b);
        let (va, vb) = (tape.value(sa).clone(), tape.value(sb).clone());
        assert!(va.approx_eq(&vb, 1e-12));
        assert!(va.is_finite());
    }

    #[test]
    fn normalize_rows_normalises() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[2.0, 2.0], &[1.0, 3.0]]));
        let y = tape.normalize_rows(x, 0.0);
        assert_eq!(tape.value(y), &Matrix::from_rows(&[&[0.5, 0.5], &[0.25, 0.75]]));
    }

    #[test]
    fn conv2d_identity_kernel_is_identity() {
        // 1×1 kernel with weight 1 and zero bias reproduces the input.
        let mut tape = Tape::new();
        let spec = ConvSpec { batch: 2, in_ch: 1, out_ch: 1, h: 3, w: 4, kh: 1, kw: 1 };
        let input = Matrix::from_fn(2, 12, |i, j| (i * 12 + j) as f64);
        let x = tape.constant(input.clone());
        let k = tape.constant(Matrix::from_vec(1, 1, vec![1.0]));
        let b = tape.constant(Matrix::zeros(1, 1));
        let y = tape.conv2d(x, k, b, spec);
        assert_eq!(tape.value(y), &input);
    }

    #[test]
    fn conv2d_same_padding_shapes() {
        let mut tape = Tape::new();
        let spec = ConvSpec { batch: 1, in_ch: 2, out_ch: 3, h: 4, w: 5, kh: 2, kw: 2 };
        let x = tape.constant(Matrix::zeros(2, 20));
        let k = tape.constant(Matrix::zeros(3, 8));
        let b = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let y = tape.conv2d(x, k, b, spec);
        assert_eq!(tape.value(y).shape(), (3, 20));
        // Zero input, zero kernel: output = bias per channel.
        assert!(tape.value(y).row(0).iter().all(|&v| v == 1.0));
        assert!(tape.value(y).row(2).iter().all(|&v| v == 3.0));
    }

    #[test]
    fn maxpool2d_known_values() {
        let mut tape = Tape::new();
        // One 2×4 image: [[1,5,2,0],[3,4,9,8]] pooled 2×2 -> [5, 9].
        let spec = PoolSpec { batch: 1, ch: 1, h: 2, w: 4, ph: 2, pw: 2 };
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 9.0, 8.0]]));
        let y = tape.max_pool2d(x, spec);
        assert_eq!(tape.value(y), &Matrix::from_rows(&[&[5.0, 9.0]]));
    }

    #[test]
    fn batch_outer_known_values() {
        let mut tape = Tape::new();
        let col = tape.constant(Matrix::from_rows(&[&[2.0], &[3.0]])); // β = 2
        let rows = tape.constant(Matrix::from_rows(&[&[1.0, 10.0], &[5.0, 7.0]])); // n=2, m=2
        let y = tape.batch_outer(col, rows);
        // Block row 0: [2·1, 2·10, 3·1, 3·10].
        assert_eq!(
            tape.value(y),
            &Matrix::from_rows(&[&[2.0, 20.0, 3.0, 30.0], &[10.0, 14.0, 15.0, 21.0]])
        );
    }

    #[test]
    fn kl_loss_zero_for_exact_prediction() {
        let mut tape = Tape::new();
        let label = Matrix::from_rows(&[&[0.5, 0.5], &[0.9, 0.1]]);
        let pred = tape.constant(label.clone());
        let loss = tape.kl_loss_masked(pred, label, vec![1.0, 1.0], 1e-9);
        assert!(tape.value(loss)[(0, 0)].abs() < 1e-9);
    }

    #[test]
    fn kl_loss_ignores_masked_rows() {
        let mut tape = Tape::new();
        let label = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let pred = tape.constant(Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]));
        // Row 1 is badly wrong but masked out.
        let loss = tape.kl_loss_masked(pred, label, vec![1.0, 0.0], 1e-9);
        assert!(tape.value(loss)[(0, 0)].abs() < 1e-9);
    }

    #[test]
    fn mse_masked_counts_only_masked_cells() {
        let mut tape = Tape::new();
        let pred = tape.constant(Matrix::from_rows(&[&[1.0], &[5.0]]));
        let label = Matrix::from_rows(&[&[0.0], &[0.0]]);
        let mask = Matrix::from_rows(&[&[1.0], &[0.0]]);
        let loss = tape.mse_masked(pred, label, mask);
        assert_eq!(tape.value(loss)[(0, 0)], 1.0); // (1-0)² / 1
    }

    #[test]
    fn tile_and_select_are_inverse_on_first_block() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
        let tiled = tape.tile_cols(x, 3);
        assert_eq!(tape.value(tiled).cols(), 6);
        let back = tape.select_cols(tiled, 2, 2);
        assert_eq!(tape.value(back), &Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn transpose_and_reshape_values() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let t = tape.transpose(x);
        assert_eq!(tape.value(t), &Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        let r = tape.reshape(x, 1, 4);
        assert_eq!(tape.value(r), &Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
    }

    #[test]
    fn backward_requires_scalar_loss() {
        let mut store = ParamStore::new();
        let id = store.add("x", Matrix::zeros(2, 2));
        let mut tape = Tape::new();
        let x = tape.param(&store, id);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tape.backward(x, &mut store);
        }));
        assert!(result.is_err(), "non-scalar loss must panic");
    }
}
