//! Reverse-mode automatic differentiation over dense matrices.
//!
//! A [`Tape`] is a define-by-run computation graph: every builder method
//! evaluates its result eagerly and records the operation so that
//! [`Tape::backward`] can later push cotangents from a scalar loss back
//! to every parameter leaf. Tapes are rebuilt per training sample — the
//! matrices involved are small (≤ `8 600 × 16`), so construction cost is
//! negligible next to the matmuls.

use std::sync::Arc;

use gcwc_graph::{PolyBasis, PoolingMap};
use gcwc_linalg::{BufferPool, Matrix};
use rand::rngs::StdRng;
use rand::Rng;

use crate::ops;
use crate::params::{ParamId, ParamStore};

/// Identifies a node within a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId(usize);

/// Shape bookkeeping for 2-D convolutions (`same` padding, stride 1).
///
/// Tensors are laid out as matrices with `batch·channels` rows and `h·w`
/// columns (row-major image per row).
#[derive(Clone, Copy, Debug)]
pub struct ConvSpec {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
}

/// Shape bookkeeping for 2-D max pooling (stride = window, floor).
#[derive(Clone, Copy, Debug)]
pub struct PoolSpec {
    /// Batch size.
    pub batch: usize,
    /// Channels.
    pub ch: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Pool window height.
    pub ph: usize,
    /// Pool window width.
    pub pw: usize,
}

impl PoolSpec {
    /// Output height (`floor(h / ph)`).
    pub fn out_h(&self) -> usize {
        self.h / self.ph
    }

    /// Output width (`floor(w / pw)`).
    pub fn out_w(&self) -> usize {
        self.w / self.pw
    }
}

pub(crate) enum Op {
    Const,
    Param(ParamId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    DivEps {
        a: NodeId,
        b: NodeId,
        eps: f64,
    },
    Scale(NodeId, f64),
    MatMul(NodeId, NodeId),
    AddRowBroadcast {
        x: NodeId,
        bias: NodeId,
    },
    Tanh(NodeId),
    Sigmoid(NodeId),
    Relu(NodeId),
    LogEps {
        x: NodeId,
        eps: f64,
    },
    SoftmaxRows(NodeId),
    NormalizeRows {
        x: NodeId,
        eps: f64,
    },
    PowScalar {
        x: NodeId,
        p: f64,
    },
    SumAll(NodeId),
    Transpose(NodeId),
    Reshape {
        x: NodeId,
    },
    HstackList(Vec<NodeId>),
    GroupRows {
        x: NodeId,
        groups: usize,
    },
    SelectRow {
        x: NodeId,
        row: usize,
    },
    SelectCols {
        x: NodeId,
        start: usize,
    },
    TileCols {
        x: NodeId,
        times: usize,
    },
    Dropout {
        x: NodeId,
        mask: Matrix,
    },
    PolyConv {
        x: NodeId,
        thetas: Vec<NodeId>,
        basis: Arc<dyn PolyBasis>,
        saved: Vec<Matrix>,
        groups: usize,
    },
    GraphMaxPool {
        x: NodeId,
        map: Arc<PoolingMap>,
        argmax: Vec<usize>,
    },
    Conv2d {
        x: NodeId,
        kernel: NodeId,
        bias: NodeId,
        spec: ConvSpec,
    },
    MaxPool2d {
        x: NodeId,
        spec: PoolSpec,
        argmax: Vec<usize>,
    },
    BatchOuter {
        col: NodeId,
        rows: NodeId,
    },
    KlLossMasked {
        pred: NodeId,
        label: Matrix,
        row_mask: Vec<f64>,
        eps: f64,
    },
    MseMasked {
        pred: NodeId,
        label: Matrix,
        mask: Matrix,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// A define-by-run reverse-mode autodiff tape.
///
/// All node values and backward cotangents are drawn from an internal
/// [`BufferPool`]; after [`Tape::reset`] a rebuilt graph of the same
/// shape performs no heap allocation.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    pool: BufferPool,
    /// Backward scratch, kept across calls so the slot vector is not
    /// reallocated per sample.
    grads: Vec<Option<Matrix>>,
    /// Recycled `Vec<NodeId>` containers (hstack parts, poly-conv thetas).
    spare_ids: Vec<Vec<NodeId>>,
    /// Recycled argmax containers.
    spare_usize: Vec<Vec<usize>>,
    /// Recycled `Vec<Matrix>` containers (emptied; the matrices
    /// themselves live in the pool).
    spare_mats: Vec<Vec<Matrix>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the graph, parking every node value and op-owned buffer in
    /// the internal pool so the next sample's graph reuses the storage.
    pub fn reset(&mut self) {
        let Tape { nodes, pool, spare_ids, spare_usize, spare_mats, .. } = self;
        for node in nodes.drain(..) {
            pool.give(node.value);
            match node.op {
                Op::Dropout { mask, .. } => pool.give(mask),
                Op::PolyConv { mut thetas, mut saved, .. } => {
                    for m in saved.drain(..) {
                        pool.give(m);
                    }
                    spare_mats.push(saved);
                    thetas.clear();
                    spare_ids.push(thetas);
                }
                Op::GraphMaxPool { argmax, .. } | Op::MaxPool2d { argmax, .. } => {
                    spare_usize.push(argmax);
                }
                Op::HstackList(mut parts) => {
                    parts.clear();
                    spare_ids.push(parts);
                }
                Op::KlLossMasked { label, row_mask, .. } => {
                    pool.give(label);
                    pool.give_vec(row_mask);
                }
                Op::MseMasked { label, mask, .. } => {
                    pool.give(label);
                    pool.give(mask);
                }
                _ => {}
            }
        }
    }

    /// The internal buffer pool (hit/miss counters for diagnostics).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Mutable access to the buffer pool, for callers that stage their
    /// own scratch matrices (e.g. input corruption) before recording
    /// constants.
    pub fn pool_mut(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    /// Borrows a recycled (empty) `NodeId` scratch vector; return it
    /// with [`Tape::give_id_buf`] so steady-state forward passes that
    /// collect node ids (filter lists, hstack columns) do not allocate.
    pub fn take_id_buf(&mut self) -> Vec<NodeId> {
        self.spare_ids.pop().unwrap_or_default()
    }

    /// Returns a scratch vector borrowed with [`Tape::take_id_buf`].
    pub fn give_id_buf(&mut self, mut v: Vec<NodeId>) {
        // Every vector parked in `spare_ids` is empty — the op builders
        // that pop one extend it without clearing first.
        v.clear();
        self.spare_ids.push(v);
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        debug_assert!(value.is_finite(), "non-finite value produced by tape op");
        self.nodes.push(Node { value, op });
        NodeId(self.nodes.len() - 1)
    }

    // ----- leaves --------------------------------------------------------

    /// Records a constant (no gradient flows into it).
    pub fn constant(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Const)
    }

    /// Records a constant by copying into a pooled buffer (the
    /// allocation-free sibling of [`Tape::constant`]).
    pub fn constant_copied(&mut self, value: &Matrix) -> NodeId {
        let mut v = self.pool.take_raw(value.rows(), value.cols());
        v.copy_from(value);
        self.push(v, Op::Const)
    }

    /// Records a constant filled with `v`, bit-identical to
    /// `constant(Matrix::filled(rows, cols, v))` without the allocation.
    pub fn constant_filled(&mut self, rows: usize, cols: usize, v: f64) -> NodeId {
        let mut m = self.pool.take_raw(rows, cols);
        m.as_mut_slice().fill(v);
        self.push(m, Op::Const)
    }

    /// Records a `1 × len` constant row copied from a slice,
    /// bit-identical to `constant(Matrix::row_vector(row))`.
    pub fn constant_row(&mut self, row: &[f64]) -> NodeId {
        let mut m = self.pool.take_raw(1, row.len());
        m.as_mut_slice().copy_from_slice(row);
        self.push(m, Op::Const)
    }

    /// Records a parameter leaf, copying its current value in.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        let src = store.value(id);
        let mut v = self.pool.take_raw(src.rows(), src.cols());
        v.copy_from(src);
        self.push(v, Op::Param(id))
    }

    // ----- arithmetic -----------------------------------------------------

    /// Elementwise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
        let mut v = pool.take_raw(av.rows(), av.cols());
        av.zip_into(bv, &mut v, |x, y| x + y);
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference `a − b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
        let mut v = pool.take_raw(av.rows(), av.cols());
        av.zip_into(bv, &mut v, |x, y| x - y);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
        let mut v = pool.take_raw(av.rows(), av.cols());
        av.zip_into(bv, &mut v, |x, y| x * y);
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise quotient `a / (b + eps)`.
    pub fn div_eps(&mut self, a: NodeId, b: NodeId, eps: f64) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
        let mut v = pool.take_raw(av.rows(), av.cols());
        av.zip_into(bv, &mut v, |x, y| x / (y + eps));
        self.push(v, Op::DivEps { a, b, eps })
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: NodeId, s: f64) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let av = &nodes[a.0].value;
        let mut v = pool.take_raw(av.rows(), av.cols());
        av.map_into(&mut v, |x| x * s);
        self.push(v, Op::Scale(a, s))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
        let mut v = pool.take_raw(av.rows(), bv.cols());
        av.matmul_into(bv, &mut v);
        self.push(v, Op::MatMul(a, b))
    }

    /// Adds a `1 × c` bias row to every row of an `r × c` matrix.
    pub fn add_row_broadcast(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let xv = &nodes[x.0].value;
        let bv = &nodes[bias.0].value;
        let mut v = pool.take_raw(xv.rows(), xv.cols());
        v.copy_from(xv);
        ops::add_row_broadcast_assign(&mut v, bv);
        self.push(v, Op::AddRowBroadcast { x, bias })
    }

    // ----- activations ----------------------------------------------------

    fn map_pooled(&mut self, x: NodeId, f: impl Fn(f64) -> f64 + Sync) -> Matrix {
        let Tape { nodes, pool, .. } = self;
        let xv = &nodes[x.0].value;
        let mut v = pool.take_raw(xv.rows(), xv.cols());
        xv.map_into(&mut v, f);
        v
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let v = self.map_pooled(x, f64::tanh);
        self.push(v, Op::Tanh(x))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let v = self.map_pooled(x, |t| 1.0 / (1.0 + (-t).exp()));
        self.push(v, Op::Sigmoid(x))
    }

    /// Elementwise rectifier.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let v = self.map_pooled(x, |t| t.max(0.0));
        self.push(v, Op::Relu(x))
    }

    /// Elementwise `ln(x + eps)`.
    pub fn log_eps(&mut self, x: NodeId, eps: f64) -> NodeId {
        let v = self.map_pooled(x, |t| (t + eps).ln());
        self.push(v, Op::LogEps { x, eps })
    }

    /// Elementwise power `x^p` (requires `x > 0` when `p` is fractional).
    pub fn pow_scalar(&mut self, x: NodeId, p: f64) -> NodeId {
        let v = self.map_pooled(x, |t| t.powf(p));
        self.push(v, Op::PowScalar { x, p })
    }

    /// Row-wise softmax (numerically stabilised).
    pub fn softmax_rows(&mut self, x: NodeId) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let xv = &nodes[x.0].value;
        let mut v = pool.take_raw(xv.rows(), xv.cols());
        v.copy_from(xv);
        ops::softmax_rows_in_place(&mut v);
        self.push(v, Op::SoftmaxRows(x))
    }

    /// Row-wise normalisation `y_ij = x_ij / (Σ_j x_ij + eps)`.
    ///
    /// Used for the Bayesian-inference combination (Eq. 10): inputs are
    /// positive, so the result is a valid distribution per row.
    pub fn normalize_rows(&mut self, x: NodeId, eps: f64) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let xv = &nodes[x.0].value;
        let mut v = pool.take_raw(xv.rows(), xv.cols());
        v.copy_from(xv);
        ops::normalize_rows_in_place(&mut v, eps);
        self.push(v, Op::NormalizeRows { x, eps })
    }

    // ----- shape ----------------------------------------------------------

    /// Sums all entries into a `1 × 1` node.
    pub fn sum_all(&mut self, x: NodeId) -> NodeId {
        let s = self.value(x).sum();
        let mut v = self.pool.take_raw(1, 1);
        v[(0, 0)] = s;
        self.push(v, Op::SumAll(x))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, x: NodeId) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let xv = &nodes[x.0].value;
        let mut v = pool.take_raw(xv.cols(), xv.rows());
        xv.transpose_into(&mut v);
        self.push(v, Op::Transpose(x))
    }

    /// Reinterprets the row-major data with a new shape.
    pub fn reshape(&mut self, x: NodeId, rows: usize, cols: usize) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let xv = &nodes[x.0].value;
        assert_eq!(xv.len(), rows * cols, "reshape size mismatch");
        let mut v = pool.take_raw(rows, cols);
        v.as_mut_slice().copy_from_slice(xv.as_slice());
        self.push(v, Op::Reshape { x })
    }

    /// Gathers a group-major `n × (groups·c)` matrix into `groups` rows
    /// of length `n·c`: row `g` is the row-major flattening of the
    /// `n × c` block of group `g`.
    ///
    /// This is a pure permutation — element for element it equals
    /// `reshape(select_cols(x, g·c, c), 1, n·c)` stacked over `g` — and
    /// lets all groups share one batched matmul against a decoder
    /// weight instead of streaming it once per group.
    pub fn group_rows(&mut self, x: NodeId, groups: usize) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let xv = &nodes[x.0].value;
        let (n, total) = xv.shape();
        assert_eq!(total % groups, 0, "columns not divisible by groups");
        let c = total / groups;
        let mut v = pool.take_raw(groups, n * c);
        ops::group_rows_into(xv, groups, &mut v);
        self.push(v, Op::GroupRows { x, groups })
    }

    /// Concatenates nodes side by side (equal row counts).
    pub fn hstack(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "hstack of nothing");
        let Tape { nodes, pool, spare_ids, .. } = self;
        let rows = nodes[parts[0].0].value.rows();
        let total: usize = parts.iter().map(|p| nodes[p.0].value.cols()).sum();
        let mut v = pool.take_raw(rows, total);
        let mut offset = 0;
        for &p in parts {
            let pv = &nodes[p.0].value;
            assert_eq!(pv.rows(), rows, "hstack row mismatch");
            for r in 0..rows {
                v.row_mut(r)[offset..offset + pv.cols()].copy_from_slice(pv.row(r));
            }
            offset += pv.cols();
        }
        let mut ids = spare_ids.pop().unwrap_or_default();
        ids.extend_from_slice(parts);
        self.push(v, Op::HstackList(ids))
    }

    /// Extracts row `row` as a `1 × c` node.
    pub fn select_row(&mut self, x: NodeId, row: usize) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let xv = &nodes[x.0].value;
        let mut v = pool.take_raw(1, xv.cols());
        v.row_mut(0).copy_from_slice(xv.row(row));
        self.push(v, Op::SelectRow { x, row })
    }

    /// Horizontally tiles `x` `times` times (`r × c` → `r × (times·c)`).
    ///
    /// Used to broadcast a shared per-filter bias across bucket groups.
    pub fn tile_cols(&mut self, x: NodeId, times: usize) -> NodeId {
        assert!(times >= 1, "tile count must be positive");
        let Tape { nodes, pool, .. } = self;
        let xv = &nodes[x.0].value;
        let (r, c) = xv.shape();
        let mut v = pool.take_raw(r, c * times);
        ops::tile_cols_into(xv, times, &mut v);
        self.push(v, Op::TileCols { x, times })
    }

    /// Extracts the column block `start..start+len` as an `r × len` node.
    pub fn select_cols(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let xv = &nodes[x.0].value;
        assert!(start + len <= xv.cols(), "column block out of range");
        let mut v = pool.take_raw(xv.rows(), len);
        for r in 0..xv.rows() {
            v.row_mut(r).copy_from_slice(&xv.row(r)[start..start + len]);
        }
        self.push(v, Op::SelectCols { x, start })
    }

    /// Inverted dropout with the given keep-mask (entries 0 or
    /// `1/(1−p)`); build the mask with
    /// [`crate::layers::dropout_mask`], or use [`Tape::dropout_rng`] to
    /// draw it into a pooled buffer.
    pub fn dropout(&mut self, x: NodeId, mask: Matrix) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let xv = &nodes[x.0].value;
        let mut v = pool.take_raw(xv.rows(), xv.cols());
        xv.zip_into(&mask, &mut v, |a, b| a * b);
        self.push(v, Op::Dropout { x, mask })
    }

    /// Inverted dropout drawing the keep-mask from `rng` into a pooled
    /// buffer. Draw order and values are identical to
    /// [`crate::layers::dropout_mask`] followed by [`Tape::dropout`].
    pub fn dropout_rng(&mut self, x: NodeId, rng: &mut StdRng, p: f64) -> NodeId {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        let Tape { nodes, pool, .. } = self;
        let xv = &nodes[x.0].value;
        let mut mask = pool.take_raw(xv.rows(), xv.cols());
        if p == 0.0 {
            mask.as_mut_slice().fill(1.0);
        } else {
            let keep = 1.0 / (1.0 - p);
            for m in mask.as_mut_slice() {
                *m = if rng.random::<f64>() < p { 0.0 } else { keep };
            }
        }
        let mut v = pool.take_raw(xv.rows(), xv.cols());
        xv.zip_into(&mask, &mut v, |a, b| a * b);
        self.push(v, Op::Dropout { x, mask })
    }

    // ----- graph ops ------------------------------------------------------

    /// Graph polynomial convolution: `Σ_k M_k(graph) · x · θ_k`.
    ///
    /// `x` is `n × c_in`; each `θ_k` is `c_in × c_out`; the basis supplies
    /// the fixed operators `M_k` (Chebyshev of the scaled Laplacian for
    /// GCWC, random-walk powers for DR).
    pub fn poly_conv(&mut self, x: NodeId, thetas: &[NodeId], basis: Arc<dyn PolyBasis>) -> NodeId {
        self.poly_conv_grouped(x, thetas, basis, 1)
    }

    /// Grouped graph polynomial convolution.
    ///
    /// `x` is `n × (groups · c_in)` laid out group-major; the *same*
    /// `θ_k ∈ R^{c_in×c_out}` filters are applied to every group,
    /// producing `n × (groups · c_out)`. This is how GCWC shares filters
    /// across the `m` histogram buckets (paper §IV-B applies each filter
    /// to every bucket column) while paying the sparse basis expansion
    /// only once.
    pub fn poly_conv_grouped(
        &mut self,
        x: NodeId,
        thetas: &[NodeId],
        basis: Arc<dyn PolyBasis>,
        groups: usize,
    ) -> NodeId {
        assert_eq!(thetas.len(), basis.order(), "theta count must equal basis order");
        assert!(groups >= 1, "need at least one group");
        let Tape { nodes, pool, spare_ids, spare_mats, .. } = self;
        let xv = &nodes[x.0].value;
        assert_eq!(xv.cols() % groups, 0, "columns not divisible by groups");
        let c_in = xv.cols() / groups;
        let c_out = nodes[thetas[0].0].value.cols();
        let n = xv.rows();
        let mut saved = spare_mats.pop().unwrap_or_default();
        basis.forward_pooled(xv, pool, &mut saved);
        let mut out = pool.take(n, groups * c_out);
        for (tx, &th) in saved.iter().zip(thetas) {
            let thv = &nodes[th.0].value;
            assert_eq!(thv.rows(), c_in, "theta input-channel mismatch");
            ops::poly_conv_accumulate(tx, thv, &mut out, groups);
        }
        let mut ids = spare_ids.pop().unwrap_or_default();
        ids.extend_from_slice(thetas);
        self.push(out, Op::PolyConv { x, thetas: ids, basis, saved, groups })
    }

    /// Graph max pooling over precomputed clusters.
    pub fn graph_max_pool(&mut self, x: NodeId, map: Arc<PoolingMap>) -> NodeId {
        let Tape { nodes, pool, spare_usize, .. } = self;
        let xv = &nodes[x.0].value;
        let c = xv.cols();
        let mut v = pool.take_raw(map.num_outputs(), c);
        let mut argmax = spare_usize.pop().unwrap_or_default();
        argmax.clear();
        argmax.resize(map.num_outputs() * c, 0);
        map.max_forward_into(xv, &mut v, &mut argmax);
        self.push(v, Op::GraphMaxPool { x, map, argmax })
    }

    // ----- dense conv ops (CP-CNN, classic CNN baseline) -------------------

    /// Batched 2-D convolution with `same` zero padding and stride 1.
    ///
    /// `x` is `(batch·in_ch) × (h·w)`; `kernel` is
    /// `out_ch × (in_ch·kh·kw)`; `bias` is `1 × out_ch`. Output is
    /// `(batch·out_ch) × (h·w)`.
    pub fn conv2d(&mut self, x: NodeId, kernel: NodeId, bias: NodeId, spec: ConvSpec) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let mut v = pool.take_raw(spec.batch * spec.out_ch, spec.h * spec.w);
        ops::conv2d_forward_into(
            &nodes[x.0].value,
            &nodes[kernel.0].value,
            &nodes[bias.0].value,
            &spec,
            &mut v,
        );
        self.push(v, Op::Conv2d { x, kernel, bias, spec })
    }

    /// Batched 2-D max pooling with stride = window (floor semantics).
    pub fn max_pool2d(&mut self, x: NodeId, spec: PoolSpec) -> NodeId {
        let Tape { nodes, pool, spare_usize, .. } = self;
        let (ho, wo) = (spec.out_h(), spec.out_w());
        assert!(ho > 0 && wo > 0, "pool window larger than input");
        let mut v = pool.take_raw(spec.batch * spec.ch, ho * wo);
        let mut argmax = spare_usize.pop().unwrap_or_default();
        argmax.clear();
        argmax.resize(spec.batch * spec.ch * ho * wo, 0);
        ops::maxpool2d_forward_into(&nodes[x.0].value, &spec, &mut v, &mut argmax);
        self.push(v, Op::MaxPool2d { x, spec, argmax })
    }

    /// Batched outer product: for a column `p ∈ R^{β×1}` and rows
    /// `Z ∈ R^{n×m}`, produces `n × (β·m)` where block row `b` is the
    /// row-major flattening of `p · Z[b,·]` (the CP-CNN input maps,
    /// paper §V-B3).
    pub fn batch_outer(&mut self, col: NodeId, rows: NodeId) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let p = &nodes[col.0].value;
        let z = &nodes[rows.0].value;
        assert_eq!(p.cols(), 1, "first operand must be a column vector");
        let (beta, n, m) = (p.rows(), z.rows(), z.cols());
        let mut v = pool.take_raw(n, beta * m);
        for b in 0..n {
            for k in 0..beta {
                for j in 0..m {
                    v[(b, k * m + j)] = p[(k, 0)] * z[(b, j)];
                }
            }
        }
        self.push(v, Op::BatchOuter { col, rows })
    }

    // ----- losses -----------------------------------------------------------

    /// The paper's masked KL loss (Eq. 3): the divergence
    /// `KL(w_i· ‖ ŵ_i·)` summed over covered rows,
    /// `L = Σ_i I_i Σ_j w_ij · ln((w_ij + ε)/(ŵ_ij + ε))`,
    /// where `pred = Ŵ`, `label = W`, and `row_mask[i] = I_i`.
    ///
    /// Note: Eq. 3 *as printed* weights the log-ratio by `ŵ` (the reverse
    /// direction), which contradicts both the equation's own name
    /// `KL(w‖ŵ)` and the forward-KL evaluation metric (Eq. 11); training
    /// the reverse direction is mode-seeking and measurably hurts MKLR.
    /// We implement the stated forward divergence.
    pub fn kl_loss_masked(
        &mut self,
        pred: NodeId,
        label: Matrix,
        row_mask: Vec<f64>,
        eps: f64,
    ) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let p = &nodes[pred.0].value;
        assert_eq!(p.shape(), label.shape(), "label shape mismatch");
        assert_eq!(row_mask.len(), p.rows(), "mask length mismatch");
        let mut loss = 0.0;
        for i in 0..p.rows() {
            if row_mask[i] == 0.0 {
                continue;
            }
            for (w_hat, w) in p.row(i).iter().zip(label.row(i)) {
                loss += row_mask[i] * w * ((w + eps) / (w_hat + eps)).ln();
            }
        }
        let mut v = pool.take_raw(1, 1);
        v[(0, 0)] = loss;
        self.push(v, Op::KlLossMasked { pred, label, row_mask, eps })
    }

    /// [`Tape::kl_loss_masked`] copying the label and mask into pooled
    /// buffers instead of taking ownership (allocation-free in steady
    /// state).
    pub fn kl_loss_masked_ref(
        &mut self,
        pred: NodeId,
        label: &Matrix,
        row_mask: &[f64],
        eps: f64,
    ) -> NodeId {
        let mut l = self.pool.take_raw(label.rows(), label.cols());
        l.copy_from(label);
        let mut rm = self.pool.take_vec(row_mask.len());
        rm.copy_from_slice(row_mask);
        self.kl_loss_masked(pred, l, rm, eps)
    }

    /// Masked mean squared error:
    /// `L = Σ_ij mask_ij (pred_ij − label_ij)² / max(1, Σ mask)`.
    pub fn mse_masked(&mut self, pred: NodeId, label: Matrix, mask: Matrix) -> NodeId {
        let Tape { nodes, pool, .. } = self;
        let p = &nodes[pred.0].value;
        assert_eq!(p.shape(), label.shape(), "label shape mismatch");
        assert_eq!(p.shape(), mask.shape(), "mask shape mismatch");
        let count: f64 = mask.sum().max(1.0);
        let mut loss = 0.0;
        for ((&pv, &lv), &mv) in p.as_slice().iter().zip(label.as_slice()).zip(mask.as_slice()) {
            loss += mv * (pv - lv) * (pv - lv);
        }
        let mut v = pool.take_raw(1, 1);
        v[(0, 0)] = loss / count;
        self.push(v, Op::MseMasked { pred, label, mask })
    }

    /// [`Tape::mse_masked`] for a column prediction masked per row:
    /// the mask slice becomes the `len × 1` mask matrix, bit-identical
    /// to `mse_masked(pred, label, Matrix::from_vec(len, 1, row_mask))`.
    pub fn mse_masked_rows(&mut self, pred: NodeId, label: &Matrix, row_mask: &[f64]) -> NodeId {
        let mut l = self.pool.take_raw(label.rows(), label.cols());
        l.copy_from(label);
        let mut m = self.pool.take_raw(row_mask.len(), 1);
        m.as_mut_slice().copy_from_slice(row_mask);
        self.mse_masked(pred, l, m)
    }

    /// [`Tape::mse_masked`] copying the label and mask into pooled
    /// buffers instead of taking ownership.
    pub fn mse_masked_ref(&mut self, pred: NodeId, label: &Matrix, mask: &Matrix) -> NodeId {
        let mut l = self.pool.take_raw(label.rows(), label.cols());
        l.copy_from(label);
        let mut m = self.pool.take_raw(mask.rows(), mask.cols());
        m.copy_from(mask);
        self.mse_masked(pred, l, m)
    }

    // ----- backward ---------------------------------------------------------

    /// Back-propagates from the scalar node `loss`, accumulating parameter
    /// gradients into `sink` — a [`ParamStore`] in serial training, or a
    /// private [`crate::params::GradBuffer`] per sample in data-parallel
    /// training.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&mut self, loss: NodeId, sink: &mut impl crate::params::GradSink) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        let n = self.nodes.len();
        let mut grads = std::mem::take(&mut self.grads);
        grads.clear();
        grads.resize_with(n, || None);
        let mut seed = self.pool.take_raw(1, 1);
        seed[(0, 0)] = 1.0;
        grads[loss.0] = Some(seed);

        for i in (0..n).rev() {
            let Some(mut g) = grads[i].take() else { continue };
            // Split borrows: the nodes being read vs the pool and spare
            // containers being mutated.
            let Tape { nodes, pool, spare_mats, .. } = self;
            let node = &nodes[i];
            match &node.op {
                Op::Const => pool.give(g),
                Op::Param(pid) => {
                    sink.accumulate_grad(*pid, &g);
                    pool.give(g);
                }
                Op::Add(a, b) => {
                    accumulate_ref(pool, &mut grads, *a, &g);
                    accumulate_owned(pool, &mut grads, *b, g);
                }
                Op::Sub(a, b) => {
                    accumulate_ref(pool, &mut grads, *a, &g);
                    g.scale_assign(-1.0);
                    accumulate_owned(pool, &mut grads, *b, g);
                }
                Op::Mul(a, b) => {
                    let av = &nodes[a.0].value;
                    let bv = &nodes[b.0].value;
                    let mut ga = pool.take_raw(g.rows(), g.cols());
                    g.zip_into(bv, &mut ga, |x, y| x * y);
                    g.zip_assign(av, |x, y| x * y);
                    accumulate_owned(pool, &mut grads, *a, ga);
                    accumulate_owned(pool, &mut grads, *b, g);
                }
                Op::DivEps { a, b, eps } => {
                    let eps = *eps;
                    let av = &nodes[a.0].value;
                    let bv = &nodes[b.0].value;
                    let mut ga = pool.take_raw(g.rows(), g.cols());
                    g.zip_into(bv, &mut ga, |gv, y| gv / (y + eps));
                    let mut gb = pool.take_raw(g.rows(), g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            let d = bv[(r, c)] + eps;
                            gb[(r, c)] = -g[(r, c)] * av[(r, c)] / (d * d);
                        }
                    }
                    accumulate_owned(pool, &mut grads, *a, ga);
                    accumulate_owned(pool, &mut grads, *b, gb);
                    pool.give(g);
                }
                Op::Scale(a, s) => {
                    g.scale_assign(*s);
                    accumulate_owned(pool, &mut grads, *a, g);
                }
                Op::MatMul(a, b) => {
                    // dA = G·Bᵀ, dB = Aᵀ·G, via the fused transposed
                    // kernels — no transpose temporaries.
                    let av = &nodes[a.0].value;
                    let bv = &nodes[b.0].value;
                    let mut ga = pool.take_raw(av.rows(), av.cols());
                    g.matmul_nt_into(bv, &mut ga);
                    let mut gb = pool.take_raw(bv.rows(), bv.cols());
                    av.matmul_tn_into(&g, &mut gb);
                    accumulate_owned(pool, &mut grads, *a, ga);
                    accumulate_owned(pool, &mut grads, *b, gb);
                    pool.give(g);
                }
                Op::AddRowBroadcast { x, bias } => {
                    let mut gb = pool.take(1, g.cols());
                    for r in 0..g.rows() {
                        for (dst, src) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *dst += src;
                        }
                    }
                    accumulate_owned(pool, &mut grads, *x, g);
                    accumulate_owned(pool, &mut grads, *bias, gb);
                }
                Op::Tanh(x) => {
                    g.zip_assign(&node.value, |gv, y| gv * (1.0 - y * y));
                    accumulate_owned(pool, &mut grads, *x, g);
                }
                Op::Sigmoid(x) => {
                    g.zip_assign(&node.value, |gv, y| gv * y * (1.0 - y));
                    accumulate_owned(pool, &mut grads, *x, g);
                }
                Op::Relu(x) => {
                    g.zip_assign(&node.value, |gv, y| if y > 0.0 { gv } else { 0.0 });
                    accumulate_owned(pool, &mut grads, *x, g);
                }
                Op::LogEps { x, eps } => {
                    let eps = *eps;
                    g.zip_assign(&nodes[x.0].value, |gv, t| gv / (t + eps));
                    accumulate_owned(pool, &mut grads, *x, g);
                }
                Op::PowScalar { x, p } => {
                    let p = *p;
                    g.zip_assign(&nodes[x.0].value, |gv, t| gv * p * t.powf(p - 1.0));
                    accumulate_owned(pool, &mut grads, *x, g);
                }
                Op::SoftmaxRows(x) => {
                    // In place on `g`: the row dot is read out before any
                    // element of the row is overwritten.
                    let y = &node.value;
                    for r in 0..g.rows() {
                        let dot: f64 = g.row(r).iter().zip(y.row(r)).map(|(a, b)| a * b).sum();
                        for c in 0..g.cols() {
                            g[(r, c)] = y[(r, c)] * (g[(r, c)] - dot);
                        }
                    }
                    accumulate_owned(pool, &mut grads, *x, g);
                }
                Op::NormalizeRows { x, eps } => {
                    let xv = &nodes[x.0].value;
                    let y = &node.value;
                    for r in 0..g.rows() {
                        let s: f64 = xv.row(r).iter().sum::<f64>() + eps;
                        let dot: f64 = g.row(r).iter().zip(y.row(r)).map(|(a, b)| a * b).sum();
                        for c in 0..g.cols() {
                            g[(r, c)] = (g[(r, c)] - dot) / s;
                        }
                    }
                    accumulate_owned(pool, &mut grads, *x, g);
                }
                Op::SumAll(x) => {
                    let s = g[(0, 0)];
                    let xv = &nodes[x.0].value;
                    let mut gx = pool.take_raw(xv.rows(), xv.cols());
                    gx.as_mut_slice().fill(s);
                    accumulate_owned(pool, &mut grads, *x, gx);
                    pool.give(g);
                }
                Op::Transpose(x) => {
                    let mut gx = pool.take_raw(g.cols(), g.rows());
                    g.transpose_into(&mut gx);
                    accumulate_owned(pool, &mut grads, *x, gx);
                    pool.give(g);
                }
                Op::Reshape { x } => {
                    let xv = &nodes[x.0].value;
                    let mut gx = pool.take_raw(xv.rows(), xv.cols());
                    gx.as_mut_slice().copy_from_slice(g.as_slice());
                    accumulate_owned(pool, &mut grads, *x, gx);
                    pool.give(g);
                }
                Op::GroupRows { x, groups } => {
                    // Inverse permutation: scatter row `g` back into the
                    // `n × c` column block of group `g`.
                    let xv = &nodes[x.0].value;
                    let (n, total) = xv.shape();
                    let c = total / groups;
                    let mut gx = pool.take_raw(n, total);
                    for gi in 0..*groups {
                        let src = g.row(gi);
                        for i in 0..n {
                            gx.row_mut(i)[gi * c..(gi + 1) * c]
                                .copy_from_slice(&src[i * c..(i + 1) * c]);
                        }
                    }
                    accumulate_owned(pool, &mut grads, *x, gx);
                    pool.give(g);
                }
                Op::HstackList(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let (rows, cols) = nodes[p.0].value.shape();
                        let mut gp = pool.take_raw(rows, cols);
                        for r in 0..rows {
                            gp.row_mut(r).copy_from_slice(&g.row(r)[offset..offset + cols]);
                        }
                        offset += cols;
                        accumulate_owned(pool, &mut grads, p, gp);
                    }
                    pool.give(g);
                }
                Op::TileCols { x, times } => {
                    let xv = &nodes[x.0].value;
                    let (r2, c) = xv.shape();
                    let mut gx = pool.take(r2, c);
                    for i2 in 0..r2 {
                        for t in 0..*times {
                            for (dst, &src) in
                                gx.row_mut(i2).iter_mut().zip(&g.row(i2)[t * c..(t + 1) * c])
                            {
                                *dst += src;
                            }
                        }
                    }
                    accumulate_owned(pool, &mut grads, *x, gx);
                    pool.give(g);
                }
                Op::SelectCols { x, start } => {
                    let xv = &nodes[x.0].value;
                    let mut gx = pool.take(xv.rows(), xv.cols());
                    for r in 0..g.rows() {
                        gx.row_mut(r)[*start..*start + g.cols()].copy_from_slice(g.row(r));
                    }
                    accumulate_owned(pool, &mut grads, *x, gx);
                    pool.give(g);
                }
                Op::SelectRow { x, row } => {
                    let xv = &nodes[x.0].value;
                    let mut gx = pool.take(xv.rows(), xv.cols());
                    gx.row_mut(*row).copy_from_slice(g.row(0));
                    accumulate_owned(pool, &mut grads, *x, gx);
                    pool.give(g);
                }
                Op::Dropout { x, mask } => {
                    g.zip_assign(mask, |gv, m| gv * m);
                    accumulate_owned(pool, &mut grads, *x, g);
                }
                Op::PolyConv { x, thetas, basis, saved, groups } => {
                    // Per tap k (summing over groups g):
                    //   dθ_k = Σ_g (M_k x)_gᵀ G_g
                    //   B_k|_g = G_g θ_kᵀ,  dx = Σ_k M_kᵀ B_k.
                    let groups = *groups;
                    let n = g.rows();
                    let c_out = g.cols() / groups;
                    let xv_cols = nodes[x.0].value.cols();
                    let c_in = xv_cols / groups;
                    let mut cotangents = spare_mats.pop().unwrap_or_default();
                    for (tx, &th) in saved.iter().zip(thetas) {
                        let thv = &nodes[th.0].value;
                        let mut gth = pool.take(c_in, c_out);
                        let mut b_k = pool.take(n, xv_cols);
                        for gi in 0..groups {
                            for i2 in 0..n {
                                let g_row = &g.row(i2)[gi * c_out..(gi + 1) * c_out];
                                let tx_row = &tx.row(i2)[gi * c_in..(gi + 1) * c_in];
                                for (ci, &a) in tx_row.iter().enumerate() {
                                    if a != 0.0 {
                                        for (dst, &gv) in gth.row_mut(ci).iter_mut().zip(g_row) {
                                            *dst += a * gv;
                                        }
                                    }
                                }
                                let b_row = &mut b_k.row_mut(i2)[gi * c_in..(gi + 1) * c_in];
                                for (ci, dst) in b_row.iter_mut().enumerate() {
                                    *dst += g_row
                                        .iter()
                                        .zip(thv.row(ci))
                                        .map(|(&gv, &t)| gv * t)
                                        .sum::<f64>();
                                }
                            }
                        }
                        cotangents.push(b_k);
                        accumulate_owned(pool, &mut grads, th, gth);
                    }
                    let gx = basis.adjoint_combine_pooled(&cotangents, pool);
                    accumulate_owned(pool, &mut grads, *x, gx);
                    for m in cotangents.drain(..) {
                        pool.give(m);
                    }
                    spare_mats.push(cotangents);
                    pool.give(g);
                }
                Op::GraphMaxPool { x, map, argmax } => {
                    let mut gx = pool.take(map.num_inputs(), g.cols());
                    map.max_backward_into(&g, argmax, &mut gx);
                    accumulate_owned(pool, &mut grads, *x, gx);
                    pool.give(g);
                }
                Op::Conv2d { x, kernel, bias, spec } => {
                    let xv = &nodes[x.0].value;
                    let kv = &nodes[kernel.0].value;
                    let mut gx = pool.take(spec.batch * spec.in_ch, spec.h * spec.w);
                    let mut gk = pool.take(spec.out_ch, spec.in_ch * spec.kh * spec.kw);
                    let mut gb = pool.take(1, spec.out_ch);
                    conv2d_backward_into(xv, kv, &g, spec, &mut gx, &mut gk, &mut gb);
                    accumulate_owned(pool, &mut grads, *x, gx);
                    accumulate_owned(pool, &mut grads, *kernel, gk);
                    accumulate_owned(pool, &mut grads, *bias, gb);
                    pool.give(g);
                }
                Op::MaxPool2d { x, spec, argmax } => {
                    let mut gx = pool.take(spec.batch * spec.ch, spec.h * spec.w);
                    maxpool2d_backward_into(&g, spec, argmax, &mut gx);
                    accumulate_owned(pool, &mut grads, *x, gx);
                    pool.give(g);
                }
                Op::BatchOuter { col, rows } => {
                    let p = &nodes[col.0].value;
                    let z = &nodes[rows.0].value;
                    let (beta, n2, m) = (p.rows(), z.rows(), z.cols());
                    let mut gp = pool.take(beta, 1);
                    let mut gz = pool.take(n2, m);
                    for b in 0..n2 {
                        for k in 0..beta {
                            for j in 0..m {
                                let gv = g[(b, k * m + j)];
                                gp[(k, 0)] += gv * z[(b, j)];
                                gz[(b, j)] += gv * p[(k, 0)];
                            }
                        }
                    }
                    accumulate_owned(pool, &mut grads, *col, gp);
                    accumulate_owned(pool, &mut grads, *rows, gz);
                    pool.give(g);
                }
                Op::KlLossMasked { pred, label, row_mask, eps } => {
                    // d/dŵ [w · ln((w+ε)/(ŵ+ε))] = −w/(ŵ+ε).
                    let eps = *eps;
                    let pv = &nodes[pred.0].value;
                    let go = g[(0, 0)];
                    let mut gp = pool.take(pv.rows(), pv.cols());
                    for r in 0..pv.rows() {
                        if row_mask[r] == 0.0 {
                            continue;
                        }
                        for c in 0..pv.cols() {
                            let w_hat = pv[(r, c)];
                            let w = label[(r, c)];
                            gp[(r, c)] = -go * row_mask[r] * w / (w_hat + eps);
                        }
                    }
                    accumulate_owned(pool, &mut grads, *pred, gp);
                    pool.give(g);
                }
                Op::MseMasked { pred, label, mask } => {
                    let pv = &nodes[pred.0].value;
                    let go = g[(0, 0)];
                    let count: f64 = mask.sum().max(1.0);
                    let mut gp = pool.take_raw(pv.rows(), pv.cols());
                    for r in 0..pv.rows() {
                        for c in 0..pv.cols() {
                            gp[(r, c)] =
                                go * 2.0 * mask[(r, c)] * (pv[(r, c)] - label[(r, c)]) / count;
                        }
                    }
                    accumulate_owned(pool, &mut grads, *pred, gp);
                    pool.give(g);
                }
            }
        }
        // All slots were drained above; keep the (now empty) vector so the
        // next backward pass does not reallocate it.
        self.grads = grads;
    }
}

/// Folds an owned cotangent into the gradient slot for `id`, parking the
/// delta's storage in the pool when the slot already exists.
fn accumulate_owned(
    pool: &mut BufferPool,
    grads: &mut [Option<Matrix>],
    id: NodeId,
    delta: Matrix,
) {
    match &mut grads[id.0] {
        Some(existing) => {
            assert_eq!(existing.shape(), delta.shape(), "gradient shape mismatch");
            existing.add_assign(&delta);
            pool.give(delta);
        }
        slot @ None => *slot = Some(delta),
    }
}

/// Folds a borrowed cotangent into the gradient slot for `id` without
/// cloning: existing slots take an in-place add, empty slots receive a
/// pooled copy.
fn accumulate_ref(pool: &mut BufferPool, grads: &mut [Option<Matrix>], id: NodeId, delta: &Matrix) {
    match &mut grads[id.0] {
        Some(existing) => {
            assert_eq!(existing.shape(), delta.shape(), "gradient shape mismatch");
            existing.add_assign(delta);
        }
        slot @ None => {
            let mut m = pool.take_raw(delta.rows(), delta.cols());
            m.copy_from(delta);
            *slot = Some(m);
        }
    }
}

// ----- dense conv kernels ----------------------------------------------------
// (Forward kernels live in `crate::ops`, shared with tape-free
// inference; only the backward passes are tape-specific.)

/// Accumulates conv gradients into caller-provided **zeroed** buffers.
fn conv2d_backward_into(
    x: &Matrix,
    kernel: &Matrix,
    g: &Matrix,
    spec: &ConvSpec,
    gx: &mut Matrix,
    gk: &mut Matrix,
    gb: &mut Matrix,
) {
    let ConvSpec { batch, in_ch, out_ch, h, w, kh, kw } = *spec;
    let (ph0, pw0) = ((kh - 1) / 2, (kw - 1) / 2);
    assert_eq!(gx.shape(), (batch * in_ch, h * w), "gx shape mismatch");
    assert_eq!(gk.shape(), (out_ch, in_ch * kh * kw), "gk shape mismatch");
    assert_eq!(gb.shape(), (1, out_ch), "gb shape mismatch");
    for b in 0..batch {
        for oc in 0..out_ch {
            let orow = b * out_ch + oc;
            for i in 0..h {
                for j in 0..w {
                    let gv = g[(orow, i * w + j)];
                    if gv == 0.0 {
                        continue;
                    }
                    gb[(0, oc)] += gv;
                    for ic in 0..in_ch {
                        let xrow = b * in_ch + ic;
                        for di in 0..kh {
                            let si = i as isize + di as isize - ph0 as isize;
                            if si < 0 || si >= h as isize {
                                continue;
                            }
                            for dj in 0..kw {
                                let sj = j as isize + dj as isize - pw0 as isize;
                                if sj < 0 || sj >= w as isize {
                                    continue;
                                }
                                let kcol = ic * kh * kw + di * kw + dj;
                                let xidx = (xrow, si as usize * w + sj as usize);
                                gk[(oc, kcol)] += gv * x[xidx];
                                gx[xidx] += gv * kernel[(oc, kcol)];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Routes pooled gradients into a caller-provided **zeroed** buffer.
fn maxpool2d_backward_into(g: &Matrix, spec: &PoolSpec, argmax: &[usize], gx: &mut Matrix) {
    let PoolSpec { batch, ch, h, w, .. } = *spec;
    let (ho, wo) = (spec.out_h(), spec.out_w());
    assert_eq!(gx.shape(), (batch * ch, h * w), "pool grad shape mismatch");
    for r in 0..batch * ch {
        for o in 0..ho * wo {
            gx[(r, argmax[r * ho * wo + o])] += g[(r, o)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_are_distributions() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]));
        let y = tape.softmax_rows(x);
        let v = tape.value(y);
        for i in 0..2 {
            assert!((v.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(v.row(i).iter().all(|&p| p > 0.0));
        }
        // Monotone in the logits.
        assert!(v[(0, 2)] > v[(0, 1)] && v[(0, 1)] > v[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[1000.0, 1001.0]]));
        let b = tape.constant(Matrix::from_rows(&[&[0.0, 1.0]]));
        let sa = tape.softmax_rows(a);
        let sb = tape.softmax_rows(b);
        let (va, vb) = (tape.value(sa).clone(), tape.value(sb).clone());
        assert!(va.approx_eq(&vb, 1e-12));
        assert!(va.is_finite());
    }

    #[test]
    fn normalize_rows_normalises() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[2.0, 2.0], &[1.0, 3.0]]));
        let y = tape.normalize_rows(x, 0.0);
        assert_eq!(tape.value(y), &Matrix::from_rows(&[&[0.5, 0.5], &[0.25, 0.75]]));
    }

    #[test]
    fn conv2d_identity_kernel_is_identity() {
        // 1×1 kernel with weight 1 and zero bias reproduces the input.
        let mut tape = Tape::new();
        let spec = ConvSpec { batch: 2, in_ch: 1, out_ch: 1, h: 3, w: 4, kh: 1, kw: 1 };
        let input = Matrix::from_fn(2, 12, |i, j| (i * 12 + j) as f64);
        let x = tape.constant(input.clone());
        let k = tape.constant(Matrix::from_vec(1, 1, vec![1.0]));
        let b = tape.constant(Matrix::zeros(1, 1));
        let y = tape.conv2d(x, k, b, spec);
        assert_eq!(tape.value(y), &input);
    }

    #[test]
    fn conv2d_same_padding_shapes() {
        let mut tape = Tape::new();
        let spec = ConvSpec { batch: 1, in_ch: 2, out_ch: 3, h: 4, w: 5, kh: 2, kw: 2 };
        let x = tape.constant(Matrix::zeros(2, 20));
        let k = tape.constant(Matrix::zeros(3, 8));
        let b = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let y = tape.conv2d(x, k, b, spec);
        assert_eq!(tape.value(y).shape(), (3, 20));
        // Zero input, zero kernel: output = bias per channel.
        assert!(tape.value(y).row(0).iter().all(|&v| v == 1.0));
        assert!(tape.value(y).row(2).iter().all(|&v| v == 3.0));
    }

    #[test]
    fn maxpool2d_known_values() {
        let mut tape = Tape::new();
        // One 2×4 image: [[1,5,2,0],[3,4,9,8]] pooled 2×2 -> [5, 9].
        let spec = PoolSpec { batch: 1, ch: 1, h: 2, w: 4, ph: 2, pw: 2 };
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 9.0, 8.0]]));
        let y = tape.max_pool2d(x, spec);
        assert_eq!(tape.value(y), &Matrix::from_rows(&[&[5.0, 9.0]]));
    }

    #[test]
    fn batch_outer_known_values() {
        let mut tape = Tape::new();
        let col = tape.constant(Matrix::from_rows(&[&[2.0], &[3.0]])); // β = 2
        let rows = tape.constant(Matrix::from_rows(&[&[1.0, 10.0], &[5.0, 7.0]])); // n=2, m=2
        let y = tape.batch_outer(col, rows);
        // Block row 0: [2·1, 2·10, 3·1, 3·10].
        assert_eq!(
            tape.value(y),
            &Matrix::from_rows(&[&[2.0, 20.0, 3.0, 30.0], &[10.0, 14.0, 15.0, 21.0]])
        );
    }

    #[test]
    fn kl_loss_zero_for_exact_prediction() {
        let mut tape = Tape::new();
        let label = Matrix::from_rows(&[&[0.5, 0.5], &[0.9, 0.1]]);
        let pred = tape.constant(label.clone());
        let loss = tape.kl_loss_masked(pred, label, vec![1.0, 1.0], 1e-9);
        assert!(tape.value(loss)[(0, 0)].abs() < 1e-9);
    }

    #[test]
    fn kl_loss_ignores_masked_rows() {
        let mut tape = Tape::new();
        let label = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let pred = tape.constant(Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]));
        // Row 1 is badly wrong but masked out.
        let loss = tape.kl_loss_masked(pred, label, vec![1.0, 0.0], 1e-9);
        assert!(tape.value(loss)[(0, 0)].abs() < 1e-9);
    }

    #[test]
    fn mse_masked_counts_only_masked_cells() {
        let mut tape = Tape::new();
        let pred = tape.constant(Matrix::from_rows(&[&[1.0], &[5.0]]));
        let label = Matrix::from_rows(&[&[0.0], &[0.0]]);
        let mask = Matrix::from_rows(&[&[1.0], &[0.0]]);
        let loss = tape.mse_masked(pred, label, mask);
        assert_eq!(tape.value(loss)[(0, 0)], 1.0); // (1-0)² / 1
    }

    #[test]
    fn tile_and_select_are_inverse_on_first_block() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
        let tiled = tape.tile_cols(x, 3);
        assert_eq!(tape.value(tiled).cols(), 6);
        let back = tape.select_cols(tiled, 2, 2);
        assert_eq!(tape.value(back), &Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn transpose_and_reshape_values() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let t = tape.transpose(x);
        assert_eq!(tape.value(t), &Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        let r = tape.reshape(x, 1, 4);
        assert_eq!(tape.value(r), &Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
    }

    #[test]
    fn backward_requires_scalar_loss() {
        let mut store = ParamStore::new();
        let id = store.add("x", Matrix::zeros(2, 2));
        let mut tape = Tape::new();
        let x = tape.param(&store, id);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tape.backward(x, &mut store);
        }));
        assert!(result.is_err(), "non-scalar loss must panic");
    }
}
