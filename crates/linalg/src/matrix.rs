//! Dense, row-major `f64` matrices.
//!
//! The GCWC models operate on small-to-medium dense matrices (weight
//! matrices are `n × m` with `n ≤ 8 600`, `m ≤ 8`), so a simple contiguous
//! `Vec<f64>` representation with explicit loops is both adequate and easy
//! to verify. All shape mismatches panic: in this codebase a shape error is
//! always a programming bug, never a data condition.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major matrix of `f64` values.
///
/// ```
/// use gcwc_linalg::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (mostly for tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Builds a matrix where entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a single-column matrix from a slice.
    pub fn column(v: &[f64]) -> Self {
        Self::from_vec(v.len(), 1, v.to_vec())
    }

    /// Builds a single-row matrix from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Self::from_vec(1, v.len(), v.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let start = i * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        let start = i * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Copies column `j` out into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column {j} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` with `v`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert_eq!(v.len(), self.rows, "column length mismatch");
        for (i, &x) in v.iter().enumerate() {
            self[(i, j)] = x;
        }
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`, using the ambient thread count
    /// (see [`crate::parallel`]).
    ///
    /// Uses an ikj loop order so the inner loop streams over contiguous
    /// rows of both the output and `rhs` (see the perf-book guidance on
    /// cache-friendly access).
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.matmul_with(rhs, crate::parallel::current_threads())
    }

    /// Matrix product with an explicit thread count.
    ///
    /// Output rows are partitioned into contiguous chunks, one per
    /// thread, and every row is computed by the exact serial per-row
    /// loop — the result is bit-identical for every thread count.
    pub fn matmul_with(&self, rhs: &Matrix, threads: usize) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} * {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let cols = rhs.cols;
        let work = self.rows * self.cols * cols;
        let threads = if work < crate::parallel::MIN_PARALLEL_WORK { 1 } else { threads };
        // Resolved once on the calling thread — spawned chunk threads
        // don't see its thread-local tier overrides.
        let tier = crate::tile::resolve(work);
        crate::parallel::par_rows(&mut out.data, cols, threads, |start, chunk| {
            if tier == crate::tile::KernelTier::Tiled {
                crate::tile::matmul_nn_chunk(self, rhs, start, chunk);
                return;
            }
            for (r, o_row) in chunk.chunks_mut(cols.max(1)).enumerate() {
                let a_row = self.row(start + r);
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = rhs.row(k);
                    for (o, &b) in o_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        out
    }

    /// Matrix product computed into an existing `rows × rhs.cols`
    /// buffer (contents are fully overwritten, so a stale pooled buffer
    /// is fine).
    ///
    /// Bit-identical to [`Matrix::matmul`]: every output row is first
    /// zeroed, then accumulated by the exact same serial per-row loop,
    /// with the same work threshold and row partitioning.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} * {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(out.shape(), (self.rows, rhs.cols), "matmul_into output shape mismatch");
        let cols = rhs.cols;
        let work = self.rows * self.cols * cols;
        let threads = if work < crate::parallel::MIN_PARALLEL_WORK {
            1
        } else {
            crate::parallel::current_threads()
        };
        let tier = crate::tile::resolve(work);
        crate::parallel::par_rows(&mut out.data, cols, threads, |start, chunk| {
            if tier == crate::tile::KernelTier::Tiled {
                crate::tile::matmul_nn_chunk(self, rhs, start, chunk);
                return;
            }
            for (r, o_row) in chunk.chunks_mut(cols.max(1)).enumerate() {
                o_row.fill(0.0);
                let a_row = self.row(start + r);
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = rhs.row(k);
                    for (o, &b) in o_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        let mut out = vec![0.0; self.rows];
        let threads = if self.rows * self.cols < crate::parallel::MIN_PARALLEL_WORK {
            1
        } else {
            crate::parallel::current_threads()
        };
        crate::parallel::par_rows(&mut out, 1, threads, |start, chunk| {
            for (k, o) in chunk.iter_mut().enumerate() {
                *o = self.row(start + k).iter().zip(v).map(|(a, b)| a * b).sum();
            }
        });
        out
    }

    /// Applies `f` entrywise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        crate::parallel::par_map(&self.data, &mut out.data, crate::parallel::current_threads(), f);
        out
    }

    /// Applies `f` entrywise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Applies `f` entrywise into an existing same-shape buffer
    /// (fully overwritten). Bit-identical to [`Matrix::map`].
    pub fn map_into(&self, out: &mut Matrix, f: impl Fn(f64) -> f64 + Sync) {
        assert_eq!(self.shape(), out.shape(), "map_into shape mismatch");
        crate::parallel::par_map(&self.data, &mut out.data, crate::parallel::current_threads(), f);
    }

    /// Combines `self` and `rhs` entrywise into an existing buffer
    /// (fully overwritten). Bit-identical to [`Matrix::zip_with`].
    pub fn zip_into(&self, rhs: &Matrix, out: &mut Matrix, f: impl Fn(f64, f64) -> f64 + Sync) {
        assert_eq!(self.shape(), rhs.shape(), "zip_into shape mismatch");
        assert_eq!(self.shape(), out.shape(), "zip_into output shape mismatch");
        crate::parallel::par_zip(
            &self.data,
            &rhs.data,
            &mut out.data,
            crate::parallel::current_threads(),
            f,
        );
    }

    /// Combines each entry with the matching entry of `rhs` in place:
    /// `self[i] = f(self[i], rhs[i])`. Each element is computed by the
    /// same expression as [`Matrix::zip_with`], so the result is
    /// bit-identical to the out-of-place version.
    pub fn zip_assign(&mut self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) {
        assert_eq!(self.shape(), rhs.shape(), "zip_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a = f(*a, b);
        }
    }

    /// Adds `rhs` elementwise in place (`self += rhs`); bit-identical
    /// to `&self + &rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        self.zip_assign(rhs, |a, b| a + b);
    }

    /// Scales every entry in place (`self *= s`); bit-identical to
    /// [`Matrix::scale`].
    pub fn scale_assign(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Overwrites `self` with the contents of a same-shape `src`.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Fused `self · rhsᵀ` into an existing buffer (fully overwritten;
    /// a stale pooled buffer is fine), without materialising `rhsᵀ`.
    ///
    /// Bit-identical to `self.matmul_into(&rhs.transpose(), out)`: for
    /// each output element the products `self[i,k] · rhs[j,k]` are
    /// accumulated from `0.0` in ascending-`k` order, skipping the same
    /// `self[i,k] == 0` terms the plain kernel skips, with the same
    /// work threshold and output-row partitioning. Both operands are
    /// read row-major, so this is also faster than transpose-then-
    /// multiply.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.cols,
            "matmul_nt shape mismatch: {:?} * {:?}ᵀ",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(out.shape(), (self.rows, rhs.rows), "matmul_nt_into output shape mismatch");
        let cols = rhs.rows;
        let work = self.rows * self.cols * cols;
        let threads = if work < crate::parallel::MIN_PARALLEL_WORK {
            1
        } else {
            crate::parallel::current_threads()
        };
        let tier = crate::tile::resolve(work);
        crate::parallel::par_rows(&mut out.data, cols, threads, |start, chunk| {
            if tier == crate::tile::KernelTier::Tiled {
                crate::tile::matmul_nt_chunk(self, rhs, start, chunk);
                return;
            }
            for (r, o_row) in chunk.chunks_mut(cols.max(1)).enumerate() {
                let a_row = self.row(start + r);
                for (j, o) in o_row.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (&a, &b) in a_row.iter().zip(rhs.row(j)) {
                        if a == 0.0 {
                            continue;
                        }
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
    }

    /// Fused `selfᵀ · rhs` into an existing buffer (fully overwritten;
    /// a stale pooled buffer is fine), without materialising `selfᵀ`.
    ///
    /// Bit-identical to `self.transpose().matmul_into(&rhs, out)`: each
    /// output row `i` is zeroed, then accumulated with
    /// `out[i,·] += self[k,i] · rhs[k,·]` in ascending-`k` order,
    /// skipping the same `self[k,i] == 0` terms, with the same work
    /// threshold and output-row partitioning.
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows,
            rhs.rows,
            "matmul_tn shape mismatch: {:?}ᵀ * {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(out.shape(), (self.cols, rhs.cols), "matmul_tn_into output shape mismatch");
        let cols = rhs.cols;
        let work = self.rows * self.cols * cols;
        let threads = if work < crate::parallel::MIN_PARALLEL_WORK {
            1
        } else {
            crate::parallel::current_threads()
        };
        let tier = crate::tile::resolve(work);
        crate::parallel::par_rows(&mut out.data, cols, threads, |start, chunk| {
            if tier == crate::tile::KernelTier::Tiled {
                crate::tile::matmul_tn_chunk(self, rhs, start, chunk);
                return;
            }
            chunk.fill(0.0);
            for k in 0..self.rows {
                let a_row = self.row(k);
                let b_row = rhs.row(k);
                for (i, o_row) in chunk.chunks_mut(cols.max(1)).enumerate() {
                    let a = a_row[start + i];
                    if a == 0.0 {
                        continue;
                    }
                    for (o, &b) in o_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
    }

    /// Transposes `self` into an existing `cols × rows` buffer (fully
    /// overwritten). Bit-identical to [`Matrix::transpose`].
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(out.shape(), (self.cols, self.rows), "transpose_into shape mismatch");
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
    }

    /// Entrywise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Combines two same-shape matrices entrywise with `f`.
    pub fn zip_with(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64 + Sync) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip_with shape mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        crate::parallel::par_zip(
            &self.data,
            &rhs.data,
            &mut out.data,
            crate::parallel::current_threads(),
            f,
        );
        out
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Sum of all entries.
    ///
    /// Computed blockwise over a fixed partition (see
    /// [`crate::parallel::par_sum`]) so the rounding never depends on
    /// the thread count.
    pub fn sum(&self) -> f64 {
        crate::parallel::par_sum(&self.data, crate::parallel::current_threads())
    }

    /// Mean of all entries (`NaN` for an empty matrix).
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Maximum entry (`-inf` for an empty matrix).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum entry (`inf` for an empty matrix).
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::parallel::par_sum_map(&self.data, crate::parallel::current_threads(), |x| x * x)
            .sqrt()
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Returns `true` when row `i` is entirely zero.
    pub fn row_is_zero(&self, i: usize) -> bool {
        self.row(i).iter().all(|&x| x == 0.0)
    }

    /// Stacks `self` on top of `other` (column counts must match).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Concatenates `self` and `other` side by side (row counts must match).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Extracts the sub-matrix of the given rows (in the given order).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Entrywise approximate equality within `tol`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self.data.iter().zip(&rhs.data).all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.map(|x| -x)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:9.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "{}]", if self.cols > 12 { ", ..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.row_is_zero(0));
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let v = [3.0, 4.0];
        let mv = a.matvec(&v);
        let mm = a.matmul(&Matrix::column(&v));
        assert_eq!(mv, mm.col(0));
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn set_col_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.col(0), vec![0.0; 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 10.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(-&a, Matrix::from_rows(&[&[-1.0, -2.0]]));
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.vstack(&b), Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        assert_eq!(a.hstack(&b), Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
    }

    #[test]
    fn select_rows_reorders() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s, Matrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum(), 6.0);
        assert_eq!(m.mean(), 1.5);
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.min(), -2.0);
        assert_eq!(m.row_sums(), vec![-1.0, 7.0]);
        assert!((m.frobenius_norm() - 30.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn finiteness_check() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(0, 0)] = 1.0 + 1e-9;
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
    }

    fn bits(m: &Matrix) -> Vec<u64> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn matmul_into_matches_out_of_place() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.3], &[0.0, 4.25, -1.0]]);
        let b = Matrix::from_rows(&[&[0.7, 2.0], &[-3.0, 0.125], &[9.0, -0.4]]);
        let mut out = Matrix::filled(2, 2, f64::NAN); // stale buffer
        a.matmul_into(&b, &mut out);
        assert_eq!(bits(&out), bits(&a.matmul(&b)));
    }

    #[test]
    fn in_place_family_matches_out_of_place() {
        let a = Matrix::from_rows(&[&[1.5, -2.0], &[0.3, 4.25]]);
        let b = Matrix::from_rows(&[&[0.7, 2.0], &[-3.0, 0.125]]);

        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(bits(&c), bits(&(&a + &b)));

        let mut c = a.clone();
        c.scale_assign(-1.5);
        assert_eq!(bits(&c), bits(&a.scale(-1.5)));

        let mut c = a.clone();
        c.zip_assign(&b, |x, y| x * y);
        assert_eq!(bits(&c), bits(&a.zip_with(&b, |x, y| x * y)));

        let mut out = Matrix::filled(2, 2, f64::NAN);
        a.map_into(&mut out, |x| x.tanh());
        assert_eq!(bits(&out), bits(&a.map(|x| x.tanh())));

        let mut out = Matrix::filled(2, 2, f64::NAN);
        a.zip_into(&b, &mut out, |x, y| x - y);
        assert_eq!(bits(&out), bits(&a.zip_with(&b, |x, y| x - y)));

        let mut out = Matrix::filled(2, 2, f64::NAN);
        a.transpose_into(&mut out);
        assert_eq!(bits(&out), bits(&a.transpose()));

        let mut out = Matrix::filled(2, 2, f64::NAN);
        out.copy_from(&a);
        assert_eq!(bits(&out), bits(&a));
    }
}
