//! Matrix decompositions: Cholesky factorisation and triangular solves.
//!
//! Used by the Gaussian-process baseline to solve `(K + σ²I) α = y` for a
//! symmetric positive-definite kernel matrix `K`.

use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

/// Errors from numeric decompositions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecompError {
    /// The input matrix was not square.
    NotSquare,
    /// A non-positive pivot was encountered; the matrix is not positive
    /// definite (within floating-point tolerance).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
}

impl std::fmt::Display for DecompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompError::NotSquare => write!(f, "matrix is not square"),
            DecompError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for DecompError {}

impl Cholesky {
    /// Factorises a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed, not
    /// checked.
    pub fn new(a: &Matrix) -> Result<Self, DecompError> {
        if a.rows() != a.cols() {
            return Err(DecompError::NotSquare);
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(DecompError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward then backward substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "solve rhs length mismatch");
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// log-determinant of `A`: `2 Σ log L[i][i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for B with full rank => SPD.
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.factor();
        let rec = l.matmul(&l.transpose());
        assert!(rec.approx_eq(&a, 1e-10), "{rec:?} vs {a:?}");
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = ch.solve(&b);
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-10);
        }
    }

    #[test]
    fn identity_solve_is_noop() {
        let ch = Cholesky::new(&Matrix::identity(4)).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ch.solve(&b), b.to_vec());
        assert!((ch.log_det()).abs() < 1e-12);
    }

    #[test]
    fn log_det_known() {
        // diag(2, 3): det = 6.
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - 6.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        assert_eq!(Cholesky::new(&Matrix::zeros(2, 3)).unwrap_err(), DecompError::NotSquare);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(Cholesky::new(&a), Err(DecompError::NotPositiveDefinite { .. })));
    }
}
