//! Reusable buffer pooling for allocation-free steady-state compute.
//!
//! The training hot loop builds and tears down thousands of small-to-
//! medium matrices per step. A [`BufferPool`] keeps the backing
//! `Vec<f64>` storage on a length-keyed free list so a steady-state
//! step performs no heap allocation at all: buffers are taken from the
//! pool, filled by an `_into` kernel, and eventually given back.
//!
//! Pooling is keyed by *length*, not shape — a `2 × 6` buffer can be
//! reborn as `3 × 4` — because the dense kernels only ever care about
//! the contiguous row-major storage.
//!
//! # Bit-identity
//!
//! Pooled buffers never change numeric results: [`BufferPool::take`]
//! returns a zero-filled matrix exactly like `Matrix::zeros`, and
//! [`BufferPool::take_raw`] (stale contents) is only sound for kernels
//! that define every output element before reading it — each `_into`
//! kernel documents which contract it needs.

use std::collections::HashMap;

use crate::matrix::Matrix;

/// A length-keyed free list of matrix storage buffers.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: HashMap<usize, Vec<Vec<f64>>>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a raw `len`-element vector. Contents are unspecified
    /// (stale values from a previous user); length is exactly `len`.
    pub fn take_vec(&mut self, len: usize) -> Vec<f64> {
        if let Some(v) = self.free.get_mut(&len).and_then(Vec::pop) {
            self.hits += 1;
            debug_assert_eq!(v.len(), len);
            v
        } else {
            self.misses += 1;
            vec![0.0; len]
        }
    }

    /// Returns a vector's storage to the pool.
    pub fn give_vec(&mut self, v: Vec<f64>) {
        if !v.is_empty() {
            self.free.entry(v.len()).or_default().push(v);
        }
    }

    /// Takes a `rows × cols` matrix with **unspecified contents**.
    ///
    /// Only pass the result to kernels that write every element before
    /// reading it (`matmul_into`, `map_into`, `copy_from`, …).
    pub fn take_raw(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take_vec(rows * cols))
    }

    /// Takes a zero-filled `rows × cols` matrix, bit-identical to
    /// `Matrix::zeros(rows, cols)`.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = self.take_raw(rows, cols);
        m.as_mut_slice().fill(0.0);
        m
    }

    /// Returns a matrix's storage to the pool.
    pub fn give(&mut self, m: Matrix) {
        self.give_vec(m.into_vec());
    }

    /// Takes a zeroed matrix wrapped in an RAII guard that returns the
    /// storage to this pool when dropped.
    pub fn guard(&mut self, rows: usize, cols: usize) -> PoolGuard<'_> {
        let buf = self.take(rows, cols);
        PoolGuard { pool: self, buf: Some(buf) }
    }

    /// Number of `take*` calls served from the free list.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of `take*` calls that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total buffers currently parked on the free list.
    pub fn parked(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }
}

/// An RAII handle to a pooled matrix: derefs to [`Matrix`] and returns
/// the storage to its [`BufferPool`] on drop. Use
/// [`PoolGuard::detach`] to keep the matrix instead.
#[derive(Debug)]
pub struct PoolGuard<'p> {
    pool: &'p mut BufferPool,
    buf: Option<Matrix>,
}

impl PoolGuard<'_> {
    /// Consumes the guard, keeping the matrix (it will not be returned
    /// to the pool automatically).
    pub fn detach(mut self) -> Matrix {
        self.buf.take().expect("guard buffer present until drop")
    }
}

impl std::ops::Deref for PoolGuard<'_> {
    type Target = Matrix;
    fn deref(&self) -> &Matrix {
        self.buf.as_ref().expect("guard buffer present until drop")
    }
}

impl std::ops::DerefMut for PoolGuard<'_> {
    fn deref_mut(&mut self) -> &mut Matrix {
        self.buf.as_mut().expect("guard buffer present until drop")
    }
}

impl Drop for PoolGuard<'_> {
    fn drop(&mut self) {
        if let Some(m) = self.buf.take() {
            self.pool.give(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_roundtrip_reuses_storage() {
        let mut pool = BufferPool::new();
        let a = pool.take(2, 3);
        assert_eq!(a, Matrix::zeros(2, 3));
        assert_eq!(pool.misses(), 1);
        pool.give(a);
        assert_eq!(pool.parked(), 1);
        // Same length, different shape: storage is reused.
        let b = pool.take_raw(3, 2);
        assert_eq!(b.shape(), (3, 2));
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn take_is_zeroed_even_after_reuse() {
        let mut pool = BufferPool::new();
        let mut a = pool.take(2, 2);
        a.as_mut_slice().fill(7.5);
        pool.give(a);
        let b = pool.take(2, 2);
        assert_eq!(b, Matrix::zeros(2, 2));
    }

    #[test]
    fn guard_returns_storage_on_drop() {
        let mut pool = BufferPool::new();
        {
            let mut g = pool.guard(4, 1);
            g[(0, 0)] = 1.0;
            assert_eq!(g.shape(), (4, 1));
        }
        assert_eq!(pool.parked(), 1);
    }

    #[test]
    fn guard_detach_keeps_matrix() {
        let mut pool = BufferPool::new();
        let m = pool.guard(1, 3).detach();
        assert_eq!(m.shape(), (1, 3));
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn empty_vectors_are_not_pooled() {
        let mut pool = BufferPool::new();
        pool.give(Matrix::zeros(0, 5));
        assert_eq!(pool.parked(), 0);
    }
}
