//! Kernel-tier selection and cache-blocked (tiled) dense kernels.
//!
//! The scale sweep (ISSUE 6 / PAPER §2) runs the CI network enlarged up
//! to ×50 (8 600 edges). At that size the naive row-streaming matmul
//! re-reads every `rhs` row once per output row and keeps no operand in
//! registers; the tiled kernels here block the *output* into 4×8
//! register tiles so each loaded `rhs` value is reused across 4 output
//! rows and each accumulator lives in a register for the whole `k`
//! sweep.
//!
//! ## The bit-identity contract
//!
//! Every kernel in this workspace is `to_bits`-identical across thread
//! counts (see [`crate::parallel`]); the tiled tier extends that
//! guarantee across *tiers*: tiles reorder only the `i`/`j` loops,
//! **never** the `k`-accumulation order. Each output element is still
//! accumulated from `0.0` in ascending-`k` order, and the per-term
//! `a == 0.0` skip of the naive kernels is preserved verbatim (skipping
//! a term is *not* the same as adding `0.0 · b` when `b` is `inf`/`NaN`
//! or the accumulator is `-0.0`). Consequently naive and tiled results
//! are bit-identical for every input, and the tier choice is a pure
//! performance knob — `crates/linalg/tests/tiled_equivalence.rs` is the
//! contract's property-test net.
//!
//! ## Tier resolution, in priority order
//!
//! 1. the `GCWC_KERNEL_TIER` environment variable (`naive`/`tiled`,
//!    read once per process) — CI forces both tiers through the whole
//!    test suite with it,
//! 2. a thread-local override installed by [`with_tier`] (tests,
//!    benches),
//! 3. the process-global tier, set via [`set_global_tier`],
//! 4. a thread-local *default* installed by [`with_default_tier`] —
//!    this is how the encoder threads its plan-time
//!    [`KernelTier::for_nodes`] choice into the kernels without forcing
//!    callers that explicitly asked for a tier,
//! 5. automatic choice from the kernel's work size
//!    ([`TILED_MIN_WORK`]).

use crate::matrix::Matrix;
use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which implementation the dense kernels dispatch to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelTier {
    /// The straightforward row-streaming loops.
    Naive,
    /// Cache-blocked 4×8 register-tile kernels (same `k` order,
    /// bit-identical to [`KernelTier::Naive`]).
    Tiled,
}

/// Output-tile height: each tile accumulates 4 output rows at once.
pub const TILE_MR: usize = 4;
/// Output-tile width: each tile accumulates 8 output columns at once,
/// two f64×4 vector registers per row.
pub const TILE_NR: usize = 8;

/// Automatic tier selection picks [`KernelTier::Tiled`] once a kernel
/// has at least this many multiply-adds (`rows · k · cols`); below it
/// the blocking bookkeeping costs more than the reuse saves.
pub const TILED_MIN_WORK: usize = 1 << 15;

/// Node counts at or above this choose [`KernelTier::Tiled`] at plan
/// time (see [`KernelTier::for_nodes`]). The CI network (n = 172) stays
/// naive; every enlarged grid in the scale sweep (n ≥ 860) tiles.
pub const TILED_MIN_NODES: usize = 256;

impl KernelTier {
    /// Plan-time tier choice from the graph's node count: grids with at
    /// least [`TILED_MIN_NODES`] nodes use the tiled kernels.
    pub fn for_nodes(n: usize) -> Self {
        if n >= TILED_MIN_NODES {
            KernelTier::Tiled
        } else {
            KernelTier::Naive
        }
    }
}

/// Process-global tier; 0 = unset, 1 = naive, 2 = tiled.
static GLOBAL_TIER: AtomicU8 = AtomicU8::new(0);
/// `GCWC_KERNEL_TIER`, parsed once per process.
static ENV_TIER: OnceLock<Option<KernelTier>> = OnceLock::new();

thread_local! {
    /// Per-thread forced tier; 0 = no override.
    static TIER_OVERRIDE: Cell<u8> = const { Cell::new(0) };
    /// Per-thread plan-time default; 0 = none installed.
    static TIER_DEFAULT: Cell<u8> = const { Cell::new(0) };
}

fn enc(t: KernelTier) -> u8 {
    match t {
        KernelTier::Naive => 1,
        KernelTier::Tiled => 2,
    }
}

fn dec(v: u8) -> Option<KernelTier> {
    match v {
        1 => Some(KernelTier::Naive),
        2 => Some(KernelTier::Tiled),
        _ => None,
    }
}

/// The tier forced by `GCWC_KERNEL_TIER`, if set to a recognised value.
pub fn env_tier() -> Option<KernelTier> {
    *ENV_TIER.get_or_init(|| match std::env::var("GCWC_KERNEL_TIER") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "naive" => Some(KernelTier::Naive),
            "tiled" => Some(KernelTier::Tiled),
            _ => None,
        },
        Err(_) => None,
    })
}

/// Resolves the tier a kernel with `work` multiply-adds will use right
/// now on this thread (see the module docs for the priority order).
pub fn resolve(work: usize) -> KernelTier {
    if let Some(t) = env_tier() {
        return t;
    }
    if let Some(t) = dec(TIER_OVERRIDE.with(Cell::get)) {
        return t;
    }
    if let Some(t) = dec(GLOBAL_TIER.load(Ordering::Relaxed)) {
        return t;
    }
    if let Some(t) = dec(TIER_DEFAULT.with(Cell::get)) {
        return t;
    }
    if work >= TILED_MIN_WORK {
        KernelTier::Tiled
    } else {
        KernelTier::Naive
    }
}

/// Sets the process-global tier (`None` re-enables automatic
/// selection). `GCWC_KERNEL_TIER` and [`with_tier`] still take
/// precedence.
pub fn set_global_tier(tier: Option<KernelTier>) {
    GLOBAL_TIER.store(tier.map_or(0, enc), Ordering::Relaxed);
}

/// Runs `f` with this thread's kernel tier forced to `tier` (restored
/// afterwards, panic-safe; nested calls stack). `GCWC_KERNEL_TIER`
/// still wins — CI uses the environment to force one tier through
/// everything, including code under `with_tier`.
pub fn with_tier<T>(tier: KernelTier, f: impl FnOnce() -> T) -> T {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            TIER_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let previous = TIER_OVERRIDE.with(|c| c.replace(enc(tier)));
    let _restore = Restore(previous);
    f()
}

/// Runs `f` with `tier` installed as this thread's *default* tier —
/// consulted only when neither the environment, nor [`with_tier`], nor
/// [`set_global_tier`] forces a choice. This is the plan-time hook: the
/// encoder wraps its forward passes in the tier its `ConvPlan` picked,
/// without overriding anything a test or bench explicitly forced.
pub fn with_default_tier<T>(tier: KernelTier, f: impl FnOnce() -> T) -> T {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            TIER_DEFAULT.with(|c| c.set(self.0));
        }
    }
    let previous = TIER_DEFAULT.with(|c| c.replace(enc(tier)));
    let _restore = Restore(previous);
    f()
}

/// Instantiates a tiled chunk kernel twice — once for the baseline
/// target and once compiled with AVX2 enabled (runtime-detected) — and
/// defines the dispatching wrapper. The AVX2 copy is the *same scalar
/// Rust body*; the feature only widens the compiler's autovectorization
/// of the independent per-column lanes, so the operation order (and
/// therefore every bit of the result) is unchanged. Rust never
/// contracts `mul + add` into FMA, so enabling the feature cannot
/// change rounding either.
macro_rules! simd_dispatch {
    ($(#[$meta:meta])* $name:ident, $impl_name:ident, $avx_name:ident) => {
        $(#[$meta])*
        pub(crate) fn $name(a: &Matrix, b: &Matrix, start: usize, chunk: &mut [f64]) {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: AVX2 support was just confirmed at runtime.
                    unsafe {
                        return $avx_name(a, b, start, chunk);
                    }
                }
            }
            $impl_name(a, b, start, chunk)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx_name(a: &Matrix, b: &Matrix, start: usize, chunk: &mut [f64]) {
            $impl_name(a, b, start, chunk)
        }
    };
}

simd_dispatch!(
    /// Tiled body for one [`crate::parallel::par_rows`] chunk of
    /// `out = a · b` (`start` is the chunk's first output row).
    ///
    /// Blocks the chunk into [`TILE_MR`]×[`TILE_NR`] output tiles; each
    /// tile's accumulators start at `0.0` and sweep `k` in ascending
    /// order with the naive kernel's `a == 0.0` skip, so every element
    /// matches the serial loop bit-for-bit.
    matmul_nn_chunk,
    matmul_nn_chunk_impl,
    matmul_nn_chunk_avx2
);

/// L2-level blocking: row blocks of this many output rows sweep all
/// column panels before the next block starts, so a `rows × TILE_NR`
/// panel of `b` is re-read from cache, not memory, for every micro-tile
/// in the strip. Purely an `i`/`j` iteration reorder — `k` order within
/// each output element is untouched.
const STRIP_ROWS: usize = 128;

#[inline(always)]
fn matmul_nn_chunk_impl(a: &Matrix, b: &Matrix, start: usize, chunk: &mut [f64]) {
    let cols = b.cols();
    if cols == 0 {
        return;
    }
    let rows = chunk.len() / cols;
    let kk = a.cols();
    let mut s0 = 0;
    while s0 < rows {
        let strip = STRIP_ROWS.min(rows - s0);
        let mut j0 = 0;
        while j0 < cols {
            let nr = TILE_NR.min(cols - j0);
            let mut i0 = s0;
            while i0 < s0 + strip {
                let mr = TILE_MR.min(s0 + strip - i0);
                let mut acc = [[0.0f64; TILE_NR]; TILE_MR];
                if mr == TILE_MR && nr == TILE_NR {
                    let ar: [&[f64]; TILE_MR] = [
                        a.row(start + i0),
                        a.row(start + i0 + 1),
                        a.row(start + i0 + 2),
                        a.row(start + i0 + 3),
                    ];
                    for k in 0..kk {
                        let bq: &[f64; TILE_NR] =
                            b.row(k)[j0..j0 + TILE_NR].try_into().expect("tile width");
                        for (acc_r, a_row) in acc.iter_mut().zip(ar) {
                            let av = a_row[k];
                            if av == 0.0 {
                                continue;
                            }
                            for (o, &bv) in acc_r.iter_mut().zip(bq) {
                                *o += av * bv;
                            }
                        }
                    }
                } else {
                    for k in 0..kk {
                        let brow = &b.row(k)[j0..j0 + nr];
                        for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
                            let av = a.row(start + i0 + r)[k];
                            if av == 0.0 {
                                continue;
                            }
                            for (o, &bv) in acc_r[..nr].iter_mut().zip(brow) {
                                *o += av * bv;
                            }
                        }
                    }
                }
                for (r, acc_r) in acc.iter().enumerate().take(mr) {
                    let at = (i0 + r) * cols + j0;
                    chunk[at..at + nr].copy_from_slice(&acc_r[..nr]);
                }
                i0 += mr;
            }
            j0 += nr;
        }
        s0 += strip;
    }
}

simd_dispatch!(
    /// Tiled body for one chunk of `out = a · bᵀ` (`start` is the
    /// chunk's first output row; output columns index rows of `b`).
    ///
    /// Same contract as [`matmul_nn_chunk`]: ascending-`k` accumulation
    /// from `0.0` with the naive `a == 0.0` skip, bit-identical to
    /// [`Matrix::matmul_nt_into`]'s serial element loop.
    matmul_nt_chunk,
    matmul_nt_chunk_impl,
    matmul_nt_chunk_avx2
);

#[inline(always)]
fn matmul_nt_chunk_impl(a: &Matrix, b: &Matrix, start: usize, chunk: &mut [f64]) {
    let cols = b.rows();
    if cols == 0 {
        return;
    }
    let rows = chunk.len() / cols;
    let kk = a.cols();
    let mut i0 = 0;
    while i0 < rows {
        let mr = TILE_MR.min(rows - i0);
        let mut j0 = 0;
        while j0 < cols {
            let nr = TILE_NR.min(cols - j0);
            let mut acc = [[0.0f64; TILE_NR]; TILE_MR];
            if mr == TILE_MR && nr == TILE_NR {
                let ar: [&[f64]; TILE_MR] = [
                    a.row(start + i0),
                    a.row(start + i0 + 1),
                    a.row(start + i0 + 2),
                    a.row(start + i0 + 3),
                ];
                let br: [&[f64]; TILE_NR] = [
                    b.row(j0),
                    b.row(j0 + 1),
                    b.row(j0 + 2),
                    b.row(j0 + 3),
                    b.row(j0 + 4),
                    b.row(j0 + 5),
                    b.row(j0 + 6),
                    b.row(j0 + 7),
                ];
                for k in 0..kk {
                    let bv = [
                        br[0][k], br[1][k], br[2][k], br[3][k], br[4][k], br[5][k], br[6][k],
                        br[7][k],
                    ];
                    for (acc_r, a_row) in acc.iter_mut().zip(ar) {
                        let av = a_row[k];
                        if av == 0.0 {
                            continue;
                        }
                        for (o, &b) in acc_r.iter_mut().zip(&bv) {
                            *o += av * b;
                        }
                    }
                }
            } else {
                for k in 0..kk {
                    for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
                        let av = a.row(start + i0 + r)[k];
                        if av == 0.0 {
                            continue;
                        }
                        for (c, o) in acc_r[..nr].iter_mut().enumerate() {
                            *o += av * b.row(j0 + c)[k];
                        }
                    }
                }
            }
            for (r, acc_r) in acc.iter().enumerate().take(mr) {
                let at = (i0 + r) * cols + j0;
                chunk[at..at + nr].copy_from_slice(&acc_r[..nr]);
            }
            j0 += nr;
        }
        i0 += mr;
    }
}

simd_dispatch!(
    /// Tiled body for one chunk of `out = aᵀ · b` (`start` is the
    /// chunk's first output row, i.e. the first *column* of `a` this
    /// chunk owns; `k` sweeps the rows of `a`/`b`).
    ///
    /// Same contract as [`matmul_nn_chunk`]: ascending-`k` accumulation
    /// from `0.0` with the naive `a == 0.0` skip, bit-identical to
    /// [`Matrix::matmul_tn_into`]'s serial loop.
    matmul_tn_chunk,
    matmul_tn_chunk_impl,
    matmul_tn_chunk_avx2
);

#[inline(always)]
fn matmul_tn_chunk_impl(a: &Matrix, b: &Matrix, start: usize, chunk: &mut [f64]) {
    let cols = b.cols();
    if cols == 0 {
        return;
    }
    let rows = chunk.len() / cols;
    let kk = a.rows();
    let mut s0 = 0;
    while s0 < rows {
        let strip = STRIP_ROWS.min(rows - s0);
        let mut j0 = 0;
        while j0 < cols {
            let nr = TILE_NR.min(cols - j0);
            let mut i0 = s0;
            while i0 < s0 + strip {
                let mr = TILE_MR.min(s0 + strip - i0);
                let mut acc = [[0.0f64; TILE_NR]; TILE_MR];
                if mr == TILE_MR && nr == TILE_NR {
                    for k in 0..kk {
                        let a_row = a.row(k);
                        let avs: &[f64; TILE_MR] = a_row[start + i0..start + i0 + TILE_MR]
                            .try_into()
                            .expect("tile height");
                        let bq: &[f64; TILE_NR] =
                            b.row(k)[j0..j0 + TILE_NR].try_into().expect("tile width");
                        for (acc_r, &av) in acc.iter_mut().zip(avs) {
                            if av == 0.0 {
                                continue;
                            }
                            for (o, &bv) in acc_r.iter_mut().zip(bq) {
                                *o += av * bv;
                            }
                        }
                    }
                } else {
                    for k in 0..kk {
                        let a_row = a.row(k);
                        let bq = &b.row(k)[j0..j0 + nr];
                        for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
                            let av = a_row[start + i0 + r];
                            if av == 0.0 {
                                continue;
                            }
                            for (o, &bv) in acc_r[..nr].iter_mut().zip(bq) {
                                *o += av * bv;
                            }
                        }
                    }
                }
                for (r, acc_r) in acc.iter().enumerate().take(mr) {
                    let at = (i0 + r) * cols + j0;
                    chunk[at..at + nr].copy_from_slice(&acc_r[..nr]);
                }
                i0 += mr;
            }
            j0 += nr;
        }
        s0 += strip;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(m: &Matrix) -> Vec<u64> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    fn messy(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Deterministic values with sign changes and exact zeros so the
        // zero-skip path is exercised.
        Matrix::from_fn(rows, cols, |i, j| {
            let h = (i as u64)
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(j as u64)
                .wrapping_mul(1_442_695_040_888_963_407)
                .wrapping_add(seed);
            if h.is_multiple_of(7) {
                0.0
            } else {
                ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.0005) * 3.7
            }
        })
    }

    #[test]
    fn for_nodes_thresholds() {
        assert_eq!(KernelTier::for_nodes(172), KernelTier::Naive);
        assert_eq!(KernelTier::for_nodes(TILED_MIN_NODES), KernelTier::Tiled);
        assert_eq!(KernelTier::for_nodes(8600), KernelTier::Tiled);
    }

    #[test]
    fn resolution_precedence() {
        match env_tier() {
            // Under GCWC_KERNEL_TIER the environment wins over everything.
            Some(forced) => {
                with_tier(KernelTier::Naive, || assert_eq!(resolve(usize::MAX), forced));
                with_tier(KernelTier::Tiled, || assert_eq!(resolve(0), forced));
                with_default_tier(KernelTier::Tiled, || assert_eq!(resolve(0), forced));
            }
            None => {
                // Auto: by work size.
                assert_eq!(resolve(0), KernelTier::Naive);
                assert_eq!(resolve(TILED_MIN_WORK), KernelTier::Tiled);
                // Default beats auto, override beats default, and an
                // outer override survives an inner default.
                with_default_tier(KernelTier::Tiled, || {
                    assert_eq!(resolve(0), KernelTier::Tiled);
                    with_tier(KernelTier::Naive, || {
                        assert_eq!(resolve(usize::MAX), KernelTier::Naive);
                    });
                    assert_eq!(resolve(0), KernelTier::Tiled);
                });
                with_tier(KernelTier::Naive, || {
                    with_default_tier(KernelTier::Tiled, || {
                        assert_eq!(resolve(usize::MAX), KernelTier::Naive);
                    });
                });
                assert_eq!(resolve(0), KernelTier::Naive);
            }
        }
    }

    #[test]
    fn with_tier_restores_on_panic() {
        if env_tier().is_some() {
            return;
        }
        let result = std::panic::catch_unwind(|| with_tier(KernelTier::Tiled, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(resolve(0), KernelTier::Naive);
    }

    #[test]
    fn tiled_matmul_bit_matches_naive_across_shapes() {
        // Sizes straddling the 4×8 tile: exact multiples, ragged tails,
        // and degenerate single rows/columns.
        for (m, k, n) in
            [(1, 1, 1), (4, 8, 8), (5, 3, 9), (12, 16, 8), (13, 7, 17), (33, 12, 1), (1, 20, 31)]
        {
            let a = messy(m, k, 1);
            let b = messy(k, n, 2);
            let naive = with_tier(KernelTier::Naive, || a.matmul(&b));
            let tiled = with_tier(KernelTier::Tiled, || a.matmul(&b));
            assert_eq!(bits(&naive), bits(&tiled), "nn {m}x{k}x{n}");

            let c = messy(n, k, 4); // a(m,k) · c(n,k)ᵀ → (m,n)
            let mut nt_n = Matrix::filled(m, n, f64::NAN);
            let mut nt_t = Matrix::filled(m, n, f64::NAN);
            with_tier(KernelTier::Naive, || a.matmul_nt_into(&c, &mut nt_n));
            with_tier(KernelTier::Tiled, || a.matmul_nt_into(&c, &mut nt_t));
            assert_eq!(bits(&nt_n), bits(&nt_t), "nt {m}x{k}x{n}");

            let e = messy(m, n, 5); // a(m,k)ᵀ · e(m,n) → (k,n)
            let mut tn_n = Matrix::filled(k, n, f64::NAN);
            let mut tn_t = Matrix::filled(k, n, f64::NAN);
            with_tier(KernelTier::Naive, || a.matmul_tn_into(&e, &mut tn_n));
            with_tier(KernelTier::Tiled, || a.matmul_tn_into(&e, &mut tn_t));
            assert_eq!(bits(&tn_n), bits(&tn_t), "tn {m}x{k}x{n}");
        }
    }

    #[test]
    fn zero_skip_is_preserved_for_non_finite_operands() {
        // Skipping a zero `a` term must remain a skip in the tiled
        // kernels: adding `0.0 · inf = NaN` would poison the element.
        let mut a = Matrix::zeros(5, 9);
        a[(0, 3)] = 2.0;
        a[(4, 8)] = -1.5;
        let mut b = messy(9, 10, 9);
        b[(0, 0)] = f64::INFINITY;
        b[(1, 1)] = f64::NAN;
        let naive = with_tier(KernelTier::Naive, || a.matmul(&b));
        let tiled = with_tier(KernelTier::Tiled, || a.matmul(&b));
        assert_eq!(bits(&naive), bits(&tiled));
        assert!(naive[(1, 0)] == 0.0, "fully-skipped row stays exactly zero");
    }
}
