//! Seeded random-number helpers shared across the workspace.
//!
//! Every stochastic component (simulator, initialisers, removal masking,
//! bagging) takes an explicit `&mut StdRng` so experiments are exactly
//! reproducible from a single seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a `u64` seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a standard normal deviate via the Box–Muller transform.
///
/// Implemented locally so the workspace does not need `rand_distr`.
pub fn normal(rng: &mut StdRng) -> f64 {
    // Avoid ln(0) by sampling from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, std²)`.
pub fn normal_with(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    mean + std * normal(rng)
}

/// Samples a Poisson-distributed count via Knuth's method.
///
/// Adequate for the small rates (`λ ≲ 50`) of per-interval record counts.
pub fn poisson(rng: &mut StdRng, lambda: f64) -> usize {
    assert!(lambda >= 0.0, "negative Poisson rate");
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            // Defensive bound; unreachable for the rates used here.
            return k;
        }
    }
}

/// Fisher–Yates shuffle.
pub fn shuffle<T>(rng: &mut StdRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// Chooses `k` distinct indices from `0..n` uniformly at random.
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_indices(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} from {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    shuffle(rng, &mut idx);
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_with_shifts_and_scales() {
        let mut rng = seeded(9);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal_with(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let mut rng = seeded(3);
        let n = 20_000;
        let lambda = 4.5;
        let total: usize = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut rng = seeded(3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = seeded(11);
        let idx = sample_indices(&mut rng, 100, 40);
        assert_eq!(idx.len(), 40);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40, "indices must be distinct");
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = seeded(5);
        let mut v: Vec<usize> = (0..50).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
