//! Compressed sparse row (CSR) matrices.
//!
//! Graph Laplacians and Chebyshev recursions over them are sparse: a road
//! edge graph has a handful of neighbours per edge, so applying `T_k(L̃)`
//! as sparse matrix–vector products turns the graph convolution from
//! `O(n²)` into `O(|A|)` per filter tap. Only the operations the models
//! need are implemented.

use crate::matrix::Matrix;

/// A sparse matrix in compressed sparse row format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes the entries of row `i`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Rows sorted by `(nnz, row)`: the tiled kernel tier processes the
    /// rows of each chunk in this bucketed order so same-cost rows run
    /// back to back (better branch/prefetch behaviour in the Chebyshev
    /// recurrences). Precomputed here so the steady state never
    /// allocates. Row results are independent and each row's CSR-entry
    /// accumulation order is untouched, so the reordering is
    /// bit-identical to the natural order.
    bucket_order: Vec<u32>,
}

/// Row-product accumulators up to this width (2 KiB) live on the stack
/// inside the fused kernels (`axpby`, `clenshaw_step`); wider rows fall
/// back to a heap buffer. Feature widths in this codebase are bounded
/// by `groups × channels` (≤ 128 for HIST-8 with 8 groups), so the hot
/// path never allocates.
const ACC_STACK_COLS: usize = 256;

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed. Zero-valued entries are dropped.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for (r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            if v != 0.0 {
                per_row[r].push((c, v));
            }
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for entries in &mut per_row {
            entries.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < entries.len() {
                let c = entries[k].0;
                let mut v = 0.0;
                while k < entries.len() && entries[k].0 == c {
                    v += entries[k].1;
                    k += 1;
                }
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        assert!(rows <= u32::MAX as usize, "row count exceeds bucket-order index width");
        let mut bucket_order: Vec<u32> = (0..rows as u32).collect();
        bucket_order.sort_unstable_by_key(|&r| (row_ptr[r as usize + 1] - row_ptr[r as usize], r));
        Self { rows, cols, row_ptr, col_idx, values, bucket_order }
    }

    /// Converts a dense matrix into CSR form, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut triplets = Vec::new();
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        Self::from_triplets(m.rows(), m.cols(), triplets)
    }

    /// The `n × n` identity in CSR form.
    pub fn identity(n: usize) -> Self {
        Self::from_triplets(n, n, (0..n).map(|i| (i, i, 1.0)))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(row, col, value)` of all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| self.row_entries(i).map(move |(c, v)| (i, c, v)))
    }

    /// Iterates over `(col, value)` pairs of row `i`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[range.clone()].iter().copied().zip(self.values[range].iter().copied())
    }

    /// Reads the entry at `(i, j)` (zero when not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row_entries(i).find(|&(c, _)| c == j).map_or(0.0, |(_, v)| v)
    }

    /// Runs `body(row, dst_row)` over every output row of one
    /// `par_rows` chunk. The naive tier walks rows in natural order;
    /// the tiled tier walks them in the precomputed nnz-bucketed order
    /// (`bucket_order` restricted to the chunk, an alloc-free scan).
    /// Rows are independent and each row's own accumulation order is
    /// untouched, so both orders produce bit-identical results.
    fn for_chunk_rows(
        &self,
        tier: crate::tile::KernelTier,
        start: usize,
        cols: usize,
        chunk: &mut [f64],
        mut body: impl FnMut(usize, &mut [f64]),
    ) {
        let width = cols.max(1);
        if tier == crate::tile::KernelTier::Tiled {
            let rows_in_chunk = chunk.len() / width;
            for &ri in &self.bucket_order {
                let ri = ri as usize;
                if ri < start || ri >= start + rows_in_chunk {
                    continue;
                }
                let at = (ri - start) * width;
                body(ri, &mut chunk[at..at + width]);
            }
        } else {
            for (r, dst) in chunk.chunks_mut(width).enumerate() {
                body(start + r, dst);
            }
        }
    }

    /// Sparse matrix × dense vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        let mut out = vec![0.0; self.rows];
        let threads = if self.nnz() < crate::parallel::MIN_PARALLEL_WORK {
            1
        } else {
            crate::parallel::current_threads()
        };
        crate::parallel::par_rows(&mut out, 1, threads, |start, chunk| {
            for (k, o) in chunk.iter_mut().enumerate() {
                *o = self.row_entries(start + k).map(|(c, x)| x * v[c]).sum();
            }
        });
        out
    }

    /// Sparse × dense matrix product, returning a dense matrix; uses
    /// the ambient thread count (see [`crate::parallel`]).
    pub fn matmul_dense(&self, rhs: &Matrix) -> Matrix {
        self.matmul_dense_with(rhs, crate::parallel::current_threads())
    }

    /// Sparse × dense matrix product with an explicit thread count.
    ///
    /// Output rows are partitioned into contiguous per-thread chunks
    /// and each row is accumulated by the exact serial loop, so the
    /// result is bit-identical for every thread count.
    pub fn matmul_dense_with(&self, rhs: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.cols, rhs.rows(), "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        let cols = rhs.cols();
        let threads =
            if self.nnz() * cols.max(1) < crate::parallel::MIN_PARALLEL_WORK { 1 } else { threads };
        let tier = crate::tile::resolve(self.nnz() * cols.max(1));
        crate::parallel::par_rows(out.as_mut_slice(), cols, threads, |start, chunk| {
            self.for_chunk_rows(tier, start, cols, chunk, |row, dst| {
                for (c, v) in self.row_entries(row) {
                    let src = rhs.row(c);
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += v * s;
                    }
                }
            });
        });
        out
    }

    /// Sparse × dense product into an existing `rows × rhs.cols`
    /// buffer (fully overwritten; a stale pooled buffer is fine).
    ///
    /// Bit-identical to [`CsrMatrix::matmul_dense`]: each output row is
    /// zeroed, then accumulated in CSR entry order by the exact serial
    /// loop, with the same work threshold and row partitioning.
    pub fn matmul_dense_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows(), "matmul shape mismatch");
        assert_eq!(out.shape(), (self.rows, rhs.cols()), "matmul_dense_into shape mismatch");
        let cols = rhs.cols();
        let threads = if self.nnz() * cols.max(1) < crate::parallel::MIN_PARALLEL_WORK {
            1
        } else {
            crate::parallel::current_threads()
        };
        let tier = crate::tile::resolve(self.nnz() * cols.max(1));
        crate::parallel::par_rows(out.as_mut_slice(), cols, threads, |start, chunk| {
            self.for_chunk_rows(tier, start, cols, chunk, |row, dst| {
                dst.fill(0.0);
                for (c, v) in self.row_entries(row) {
                    let src = rhs.row(c);
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += v * s;
                    }
                }
            });
        });
    }

    /// Fused sparse product-and-update `y ← α·(A·x) + β·y` in one pass.
    ///
    /// Bit-identical to the composition
    /// `&A.matmul_dense(&x).scale(α) + &y.scale(β)`: the row product is
    /// accumulated from `0.0` in CSR entry order exactly like
    /// [`CsrMatrix::matmul_dense`], then each element performs the same
    /// two roundings (`α·acc`, `+ β·y`) the composition performs.
    pub fn axpby(&self, alpha: f64, x: &Matrix, beta: f64, y: &mut Matrix) {
        assert_eq!(self.cols, x.rows(), "axpby shape mismatch");
        assert_eq!(y.shape(), (self.rows, x.cols()), "axpby output shape mismatch");
        let cols = x.cols();
        let threads = if self.nnz() * cols.max(1) < crate::parallel::MIN_PARALLEL_WORK {
            1
        } else {
            crate::parallel::current_threads()
        };
        let tier = crate::tile::resolve(self.nnz() * cols.max(1));
        crate::parallel::par_rows(y.as_mut_slice(), cols, threads, |start, chunk| {
            // Stack accumulator for the common narrow case keeps the
            // steady-state training step heap-allocation-free.
            let mut stack = [0.0f64; ACC_STACK_COLS];
            let mut heap = Vec::new();
            let acc: &mut [f64] = if cols <= ACC_STACK_COLS {
                &mut stack[..cols]
            } else {
                heap.resize(cols, 0.0);
                &mut heap
            };
            self.for_chunk_rows(tier, start, cols, chunk, |row, dst| {
                acc.fill(0.0);
                for (c, v) in self.row_entries(row) {
                    let src = x.row(c);
                    for (d, &s) in acc.iter_mut().zip(src) {
                        *d += v * s;
                    }
                }
                for (d, &a) in dst.iter_mut().zip(acc.iter()) {
                    *d = alpha * a + beta * *d;
                }
            });
        });
    }

    /// Fused Chebyshev recurrence step `out ← 2·(A·x) − prev` in one
    /// pass (`A` is the scaled Laplacian `L̃` in the ChebNet use).
    ///
    /// Bit-identical to `&A.matmul_dense(&x).scale(2.0) - &prev`: the
    /// row product accumulates from `0.0` in CSR entry order, then each
    /// element computes `acc·2.0 − prev` — the exact roundings of the
    /// three-pass composition, in one pass with zero temporaries.
    pub fn cheb_step_into(&self, x: &Matrix, prev: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, x.rows(), "cheb_step shape mismatch");
        assert_eq!(prev.shape(), (self.rows, x.cols()), "cheb_step prev shape mismatch");
        assert_eq!(out.shape(), (self.rows, x.cols()), "cheb_step output shape mismatch");
        let cols = x.cols();
        let threads = if self.nnz() * cols.max(1) < crate::parallel::MIN_PARALLEL_WORK {
            1
        } else {
            crate::parallel::current_threads()
        };
        let tier = crate::tile::resolve(self.nnz() * cols.max(1));
        crate::parallel::par_rows(out.as_mut_slice(), cols, threads, |start, chunk| {
            self.for_chunk_rows(tier, start, cols, chunk, |row, dst| {
                dst.fill(0.0);
                for (c, v) in self.row_entries(row) {
                    let src = x.row(c);
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += v * s;
                    }
                }
                let p_row = prev.row(row);
                for (d, &p) in dst.iter_mut().zip(p_row) {
                    *d = *d * 2.0 - p;
                }
            });
        });
    }

    /// Fused Clenshaw adjoint step `c2 ← (b + s·(A·x)) − c2` in place.
    ///
    /// One pass of the Clenshaw recurrence used by the Chebyshev
    /// adjoint: with `s = 2.0` this is `c_k = b_k + 2L̃c_{k+1} − c_{k+2}`
    /// updating the `c_{k+2}` buffer in place (the caller then swaps
    /// buffers); `s = 1.0` gives the final combine. Bit-identical to
    /// `&(&b + &A.matmul_dense(&x).scale(s)) - &c2` — multiplying by
    /// `1.0` is exact in IEEE 754, so the `s = 1.0` case also matches
    /// the unscaled composition.
    pub fn clenshaw_step(&self, b: &Matrix, x: &Matrix, s: f64, c2: &mut Matrix) {
        assert_eq!(self.cols, x.rows(), "clenshaw shape mismatch");
        assert_eq!(b.shape(), (self.rows, x.cols()), "clenshaw b shape mismatch");
        assert_eq!(c2.shape(), b.shape(), "clenshaw c2 shape mismatch");
        let cols = x.cols();
        let threads = if self.nnz() * cols.max(1) < crate::parallel::MIN_PARALLEL_WORK {
            1
        } else {
            crate::parallel::current_threads()
        };
        let tier = crate::tile::resolve(self.nnz() * cols.max(1));
        crate::parallel::par_rows(c2.as_mut_slice(), cols, threads, |start, chunk| {
            // Stack accumulator for the common narrow case keeps the
            // steady-state training step heap-allocation-free.
            let mut stack = [0.0f64; ACC_STACK_COLS];
            let mut heap = Vec::new();
            let acc: &mut [f64] = if cols <= ACC_STACK_COLS {
                &mut stack[..cols]
            } else {
                heap.resize(cols, 0.0);
                &mut heap
            };
            self.for_chunk_rows(tier, start, cols, chunk, |row, dst| {
                acc.fill(0.0);
                for (c, v) in self.row_entries(row) {
                    let src = x.row(c);
                    for (d, &sv) in acc.iter_mut().zip(src) {
                        *d += v * sv;
                    }
                }
                let b_row = b.row(row);
                for ((d, &a), &bv) in dst.iter_mut().zip(acc.iter()).zip(b_row) {
                    *d = (bv + s * a) - *d;
                }
            });
        });
    }

    /// Transpose (CSR → CSR of the transposed matrix).
    pub fn transpose(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(self.cols, self.rows, self.iter().map(|(r, c, v)| (c, r, v)))
    }

    /// Scales every stored entry by `s`.
    pub fn scale(&self, s: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= s;
        }
        out
    }

    /// Converts back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (i, j, v) in self.iter() {
            m[(i, j)] = v;
        }
        m
    }

    /// Sum of two sparse matrices of identical shape.
    pub fn add(&self, rhs: &CsrMatrix) -> CsrMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add shape mismatch");
        CsrMatrix::from_triplets(self.rows, self.cols, self.iter().chain(rhs.iter()))
    }

    /// Row sums (degree vector when `self` is an adjacency matrix).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row_entries(i).map(|(_, v)| v).sum()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 3 ]
        CsrMatrix::from_triplets(2, 3, [(0, 0, 1.0), (0, 2, 2.0), (1, 2, 3.0)])
    }

    #[test]
    fn from_triplets_and_get() {
        let m = sample();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 2), 3.0);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(1, 1, [(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let m = CsrMatrix::from_triplets(1, 2, [(0, 0, 1.0), (0, 0, -1.0), (0, 1, 2.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn dense_roundtrip() {
        let d = Matrix::from_rows(&[&[0.0, 1.5], &[-2.0, 0.0]]);
        assert_eq!(CsrMatrix::from_dense(&d).to_dense(), d);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let v = [1.0, 10.0, 100.0];
        assert_eq!(m.matvec(&v), m.to_dense().matvec(&v));
    }

    #[test]
    fn matmul_dense_matches_dense() {
        let m = sample();
        let rhs = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.matmul_dense(&rhs), m.to_dense().matmul(&rhs));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn add_and_scale() {
        let m = sample();
        let two = m.add(&m);
        assert_eq!(two.to_dense(), m.to_dense().scale(2.0));
        assert_eq!(m.scale(2.0).to_dense(), two.to_dense());
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i = CsrMatrix::identity(4);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&v), v.to_vec());
    }

    #[test]
    fn row_sums_degree() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 3.0]);
    }

    fn bits(m: &Matrix) -> Vec<u64> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn matmul_dense_into_matches_out_of_place() {
        let m = sample();
        let rhs = Matrix::from_rows(&[&[1.5, -2.0], &[0.25, 4.0], &[-5.0, 0.1]]);
        let mut out = Matrix::filled(2, 2, f64::NAN); // stale buffer
        m.matmul_dense_into(&rhs, &mut out);
        assert_eq!(bits(&out), bits(&m.matmul_dense(&rhs)));
    }

    #[test]
    fn axpby_matches_composition() {
        let m = sample();
        let x = Matrix::from_rows(&[&[0.3, 1.0], &[-0.7, 2.0], &[1.1, -3.0]]);
        let y0 = Matrix::from_rows(&[&[5.0, -1.0], &[2.5, 0.5]]);
        let (alpha, beta) = (0.75, -1.25);
        let expect = &m.matmul_dense(&x).scale(alpha) + &y0.scale(beta);
        let mut y = y0.clone();
        m.axpby(alpha, &x, beta, &mut y);
        assert_eq!(bits(&y), bits(&expect));
    }

    #[test]
    fn cheb_step_into_matches_composition() {
        let m = sample();
        let x = Matrix::from_rows(&[&[0.3, 1.0], &[-0.7, 2.0], &[1.1, -3.0]]);
        let prev = Matrix::from_rows(&[&[0.9, -0.2], &[0.0, 7.0]]);
        let expect = &m.matmul_dense(&x).scale(2.0) - &prev;
        let mut out = Matrix::filled(2, 2, f64::NAN);
        m.cheb_step_into(&x, &prev, &mut out);
        assert_eq!(bits(&out), bits(&expect));
    }

    #[test]
    fn tiled_row_order_matches_natural_order_bitwise() {
        use crate::tile::{with_tier, KernelTier};
        // Irregular nnz per row so the bucket order genuinely permutes.
        let n = 37;
        let m = CsrMatrix::from_triplets(
            n,
            n,
            (0..n).flat_map(|i| {
                (0..=(i % 5)).map(move |d| (i, (i + d * 3) % n, 0.1 * (i + d + 1) as f64))
            }),
        );
        let rhs = Matrix::from_fn(n, 6, |i, j| ((i * 7 + j) as f64).sin());
        let prev = Matrix::from_fn(n, 6, |i, j| ((i + j) as f64).cos());
        let naive = with_tier(KernelTier::Naive, || m.matmul_dense(&rhs));
        let tiled = with_tier(KernelTier::Tiled, || m.matmul_dense(&rhs));
        assert_eq!(bits(&naive), bits(&tiled));
        let mut out_n = Matrix::filled(n, 6, f64::NAN);
        let mut out_t = Matrix::filled(n, 6, f64::NAN);
        with_tier(KernelTier::Naive, || m.cheb_step_into(&rhs, &prev, &mut out_n));
        with_tier(KernelTier::Tiled, || m.cheb_step_into(&rhs, &prev, &mut out_t));
        assert_eq!(bits(&out_n), bits(&out_t));
        with_tier(KernelTier::Naive, || m.clenshaw_step(&prev, &rhs, 2.0, &mut out_n));
        with_tier(KernelTier::Tiled, || m.clenshaw_step(&prev, &rhs, 2.0, &mut out_t));
        assert_eq!(bits(&out_n), bits(&out_t));
        with_tier(KernelTier::Naive, || m.axpby(0.75, &rhs, -1.25, &mut out_n));
        with_tier(KernelTier::Tiled, || m.axpby(0.75, &rhs, -1.25, &mut out_t));
        assert_eq!(bits(&out_n), bits(&out_t));
    }

    #[test]
    fn clenshaw_step_matches_composition() {
        let m = sample();
        let x = Matrix::from_rows(&[&[0.3, 1.0], &[-0.7, 2.0], &[1.1, -3.0]]);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let c2_0 = Matrix::from_rows(&[&[0.5, -0.5], &[0.125, 9.0]]);
        for s in [2.0, 1.0] {
            let expect = &(&b + &m.matmul_dense(&x).scale(s)) - &c2_0;
            let mut c2 = c2_0.clone();
            m.clenshaw_step(&b, &x, s, &mut c2);
            assert_eq!(bits(&c2), bits(&expect));
        }
    }
}
