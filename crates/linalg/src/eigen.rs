//! Eigenvalue estimation by power iteration.
//!
//! The scaled Laplacian `L̃ = 2L/λmax − I` of Simplified ChebNet needs the
//! largest eigenvalue of the (symmetric, positive semi-definite) graph
//! Laplacian. Power iteration on a sparse `L` converges quickly and is
//! exact enough for the rescaling purpose — the paper's models only need
//! the spectrum of `L̃` to lie in `[−1, 1]`.

use crate::sparse::CsrMatrix;

/// Estimates the largest-magnitude eigenvalue of a symmetric sparse matrix.
///
/// Deterministic start vector (all ones plus a small index-dependent tilt so
/// the start is never orthogonal to the dominant eigenvector of common graph
/// Laplacians). Iterates until the Rayleigh quotient stabilises within
/// `tol` or `max_iter` iterations elapse.
pub fn largest_eigenvalue(m: &CsrMatrix, max_iter: usize, tol: f64) -> f64 {
    assert_eq!(m.rows(), m.cols(), "matrix must be square");
    let n = m.rows();
    if n == 0 {
        return 0.0;
    }
    // Deterministic start with a non-linear per-index perturbation so the
    // vector is not orthogonal to dominant eigenvectors of common graph
    // Laplacians (a linear ramp would be orthogonal to e.g. (1,-2,1)).
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
            1.0 + (h as f64 / (1u64 << 24) as f64) * 0.5
        })
        .collect();
    normalize(&mut v);
    let mut lambda = f64::NAN;
    for iter in 0..max_iter {
        let mut w = m.matvec(&v);
        let new_lambda = dot(&v, &w);
        let norm = l2(&w);
        if norm == 0.0 {
            // v is in the null space; eigenvalue estimate along this
            // direction is 0, restart is pointless for PSD Laplacians.
            return new_lambda;
        }
        for x in &mut w {
            *x /= norm;
        }
        // Skip the convergence check on the first few iterations: the
        // deterministic start vector can sit almost entirely in the null
        // space of a graph Laplacian, making early Rayleigh quotients
        // spuriously stable near zero.
        let converged = iter >= 3 && (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0);
        lambda = new_lambda;
        v = w;
        if converged {
            break;
        }
    }
    lambda
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn l2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = l2(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn diagonal_matrix() {
        let d = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let m = CsrMatrix::from_dense(&d);
        let l = largest_eigenvalue(&m, 200, 1e-12);
        assert!((l - 3.0).abs() < 1e-9, "got {l}");
    }

    #[test]
    fn known_symmetric_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = CsrMatrix::from_dense(&Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]));
        let l = largest_eigenvalue(&m, 500, 1e-12);
        assert!((l - 3.0).abs() < 1e-8, "got {l}");
    }

    #[test]
    fn path_graph_laplacian() {
        // Laplacian of the path a-b-c: eigenvalues 0, 1, 3.
        let lap = Matrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        let m = CsrMatrix::from_dense(&lap);
        let l = largest_eigenvalue(&m, 1000, 1e-12);
        assert!((l - 3.0).abs() < 1e-6, "got {l}");
    }

    #[test]
    fn zero_matrix() {
        let m = CsrMatrix::from_triplets(3, 3, []);
        assert_eq!(largest_eigenvalue(&m, 10, 1e-9), 0.0);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::from_triplets(0, 0, []);
        assert_eq!(largest_eigenvalue(&m, 10, 1e-9), 0.0);
    }
}
