//! Deterministic data-parallel execution helpers.
//!
//! Every parallel kernel in the workspace partitions its *output* into
//! contiguous row chunks and computes each chunk with exactly the same
//! per-row loop as the serial path. Because no two threads ever combine
//! partial sums — each output element is produced by one thread running
//! the serial per-element recurrence — results are **bit-identical for
//! every thread count**, including 1. Reductions use a fixed block
//! partition (independent of thread count) with a sequential combine,
//! which gives the same guarantee.
//!
//! Thread-count resolution, in priority order:
//! 1. a thread-local override installed by [`with_threads`] (used by
//!    tests and by training workers to disable nested parallelism),
//! 2. the process-global count, set explicitly via
//!    [`set_global_threads`] or lazily from the `GCWC_THREADS`
//!    environment variable,
//! 3. `std::thread::available_parallelism()`.
//!
//! `GCWC_THREADS=1` (or `with_threads(1, ..)`) runs the exact serial
//! path with zero thread spawns.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-global resolved thread count; 0 = not yet resolved.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override; 0 = no override.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Parallel kernels only engage when a chunk has at least this many
/// f64 operations to amortise thread spawn cost (~10 µs each).
pub const MIN_PARALLEL_WORK: usize = 1 << 15;

/// Fixed block length for deterministic reductions. The block
/// partition — and therefore the rounding of the blockwise sum — never
/// depends on the thread count.
pub const REDUCE_BLOCK: usize = 4096;

/// A resolved thread count (always ≥ 1).
///
/// `Threads::auto()` follows the override → global → `GCWC_THREADS` →
/// `available_parallelism` chain; `Threads::fixed(n)` pins a count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Threads(usize);

impl Threads {
    /// The ambient thread count (see module docs for resolution order).
    pub fn auto() -> Self {
        Threads(current_threads())
    }

    /// A pinned thread count (`0` is treated as "auto").
    pub fn fixed(n: usize) -> Self {
        if n == 0 {
            Self::auto()
        } else {
            Threads(n)
        }
    }

    /// The resolved count, ≥ 1.
    #[inline]
    pub fn get(self) -> usize {
        self.0
    }
}

fn env_or_available() -> usize {
    if let Ok(v) = std::env::var("GCWC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The thread count parallel kernels will use right now on this thread.
pub fn current_threads() -> usize {
    let over = THREAD_OVERRIDE.with(Cell::get);
    if over != 0 {
        return over;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    let resolved = env_or_available();
    // Benign race: every thread resolves the same value.
    GLOBAL_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Sets the process-global thread count (`0` re-enables lazy
/// resolution from the environment). Thread-local overrides from
/// [`with_threads`] still take precedence.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Runs `f` with the calling thread's kernel thread count pinned to
/// `n` (restored afterwards, panic-safe). Nested calls stack.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let previous = THREAD_OVERRIDE.with(|c| c.replace(n.max(1)));
    let _restore = Restore(previous);
    f()
}

/// Splits `out` (a row-major buffer of `row_len`-element rows) into at
/// most `threads` contiguous row chunks and runs
/// `body(first_row, chunk)` on each, one chunk per thread (the first
/// chunk runs on the calling thread).
///
/// `body` must compute each row identically to the serial path; since
/// chunk boundaries fall only *between* rows, the result is then
/// bit-identical for every thread count.
pub fn par_rows<F>(out: &mut [f64], row_len: usize, threads: usize, body: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let rows = out.len().checked_div(row_len).unwrap_or(0);
    debug_assert_eq!(rows * row_len, out.len(), "buffer is not a whole number of rows");
    let threads = threads.clamp(1, rows.max(1));
    if threads == 1 {
        body(0, out);
        return;
    }
    std::thread::scope(|scope| {
        let body = &body;
        let mut rest = out;
        let mut first_row = 0usize;
        let mut own: Option<(usize, &mut [f64])> = None;
        for t in 0..threads {
            let n_rows = rows / threads + usize::from(t < rows % threads);
            let (chunk, tail) = rest.split_at_mut(n_rows * row_len);
            rest = tail;
            let start = first_row;
            first_row += n_rows;
            if t == 0 {
                own = Some((start, chunk));
            } else {
                scope.spawn(move || body(start, chunk));
            }
        }
        let (start, chunk) = own.expect("threads >= 2 implies a first chunk");
        body(start, chunk);
    });
}

/// Deterministic elementwise map: `dst[i] = f(src[i])`.
///
/// Parallelised over fixed-position chunks when the slice is large
/// enough; bitwise equal to the serial map at any thread count.
pub fn par_map(src: &[f64], dst: &mut [f64], threads: usize, f: impl Fn(f64) -> f64 + Sync) {
    assert_eq!(src.len(), dst.len(), "par_map length mismatch");
    let threads = if src.len() < MIN_PARALLEL_WORK { 1 } else { threads };
    par_rows(dst, 1, threads, |start, chunk| {
        for (k, d) in chunk.iter_mut().enumerate() {
            *d = f(src[start + k]);
        }
    });
}

/// Deterministic elementwise zip: `dst[i] = f(a[i], b[i])`.
pub fn par_zip(
    a: &[f64],
    b: &[f64],
    dst: &mut [f64],
    threads: usize,
    f: impl Fn(f64, f64) -> f64 + Sync,
) {
    assert_eq!(a.len(), b.len(), "par_zip length mismatch");
    assert_eq!(a.len(), dst.len(), "par_zip length mismatch");
    let threads = if a.len() < MIN_PARALLEL_WORK { 1 } else { threads };
    par_rows(dst, 1, threads, |start, chunk| {
        for (k, d) in chunk.iter_mut().enumerate() {
            *d = f(a[start + k], b[start + k]);
        }
    });
}

/// Deterministic blockwise reduction: `Σ f(x)` over fixed
/// [`REDUCE_BLOCK`]-element blocks, block partials combined in block
/// order. The float rounding depends only on the (fixed) block
/// partition, never on the thread count.
pub fn par_sum_map(xs: &[f64], threads: usize, f: impl Fn(f64) -> f64 + Sync) -> f64 {
    if xs.len() <= REDUCE_BLOCK {
        return xs.iter().map(|&x| f(x)).sum();
    }
    let n_blocks = xs.len().div_ceil(REDUCE_BLOCK);
    let mut partials = vec![0.0f64; n_blocks];
    let threads = if xs.len() < MIN_PARALLEL_WORK { 1 } else { threads };
    par_rows(&mut partials, 1, threads, |start, chunk| {
        for (k, p) in chunk.iter_mut().enumerate() {
            let lo = (start + k) * REDUCE_BLOCK;
            let hi = (lo + REDUCE_BLOCK).min(xs.len());
            *p = xs[lo..hi].iter().map(|&x| f(x)).sum();
        }
    });
    partials.iter().sum()
}

/// Deterministic blockwise sum of a slice (see [`par_sum_map`]).
pub fn par_sum(xs: &[f64], threads: usize) -> f64 {
    par_sum_map(xs, threads, |x| x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_resolution_prefers_override() {
        let ambient = current_threads();
        assert!(ambient >= 1);
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(5, || assert_eq!(current_threads(), 5));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), ambient);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = current_threads();
        let result = std::panic::catch_unwind(|| with_threads(7, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn threads_fixed_zero_is_auto() {
        with_threads(4, || {
            assert_eq!(Threads::fixed(0).get(), 4);
            assert_eq!(Threads::fixed(2).get(), 2);
            assert_eq!(Threads::auto().get(), 4);
        });
    }

    #[test]
    fn par_rows_covers_every_row_once() {
        for threads in [1, 2, 3, 4, 7, 64] {
            let rows = 13;
            let row_len = 3;
            let mut out = vec![0.0; rows * row_len];
            par_rows(&mut out, row_len, threads, |start, chunk| {
                for r in 0..chunk.len() / row_len {
                    for c in 0..row_len {
                        chunk[r * row_len + c] += ((start + r) * row_len + c) as f64;
                    }
                }
            });
            let expect: Vec<f64> = (0..rows * row_len).map(|i| i as f64).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_rows_handles_degenerate_shapes() {
        let mut empty: Vec<f64> = Vec::new();
        par_rows(&mut empty, 0, 4, |_, chunk| assert!(chunk.is_empty()));
        par_rows(&mut empty, 5, 4, |_, chunk| assert!(chunk.is_empty()));
        let mut one = vec![0.0];
        par_rows(&mut one, 1, 8, |start, chunk| {
            assert_eq!(start, 0);
            chunk[0] = 9.0;
        });
        assert_eq!(one, vec![9.0]);
    }

    #[test]
    fn par_map_and_zip_match_serial_bitwise() {
        let n = MIN_PARALLEL_WORK + 123;
        let a: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 1e3).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos() * 1e-3).collect();
        let serial_map: Vec<f64> = a.iter().map(|&x| x.exp().ln_1p()).collect();
        let serial_zip: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x * y + y).collect();
        for threads in [1, 2, 4, 8] {
            let mut dst = vec![0.0; n];
            par_map(&a, &mut dst, threads, |x| x.exp().ln_1p());
            assert_eq!(dst, serial_map, "map, threads = {threads}");
            par_zip(&a, &b, &mut dst, threads, |x, y| x * y + y);
            assert_eq!(dst, serial_zip, "zip, threads = {threads}");
        }
    }

    #[test]
    fn par_sum_is_thread_count_invariant() {
        let n = 3 * REDUCE_BLOCK + 17;
        let xs: Vec<f64> =
            (0..n).map(|i| ((i * 2_654_435_761) % 1_000) as f64 * 1e-3 - 0.4).collect();
        let reference = par_sum(&xs, 1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(par_sum(&xs, threads).to_bits(), reference.to_bits());
        }
        let plain: f64 = xs.iter().sum();
        assert!((reference - plain).abs() < 1e-9);
    }

    #[test]
    fn par_sum_small_slices_match_plain_sum_exactly() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        assert_eq!(par_sum(&xs, 8).to_bits(), xs.iter().sum::<f64>().to_bits());
    }
}
