//! # gcwc-linalg
//!
//! Linear-algebra substrate for the GCWC reproduction: dense row-major
//! matrices, CSR sparse matrices, Cholesky factorisation, power-iteration
//! eigenvalue estimation, and seeded randomness helpers.
//!
//! Everything here is deliberately dependency-free (except `rand`) and
//! sized for the paper's workloads: weight matrices up to `8 600 × 8` and
//! graph Laplacians with a handful of neighbours per node.

#![warn(missing_docs)]

pub mod decomp;
pub mod eigen;
pub mod matrix;
pub mod parallel;
pub mod pool;
pub mod rng;
pub mod sparse;
pub mod tile;

pub use decomp::{Cholesky, DecompError};
pub use matrix::Matrix;
pub use parallel::Threads;
pub use pool::{BufferPool, PoolGuard};
pub use sparse::CsrMatrix;
pub use tile::KernelTier;
