//! Property-based tests for the linear-algebra substrate.

use gcwc_linalg::{Cholesky, CsrMatrix, Matrix};
use proptest::prelude::*;

/// Strategy: a small matrix with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 3), b in matrix(3, 3), c in matrix(3, 3)) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn transpose_reverses_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn addition_commutes(a in matrix(4, 4), b in matrix(4, 4)) {
        prop_assert!((&a + &b).approx_eq(&(&b + &a), 1e-12));
    }

    #[test]
    fn hadamard_commutes(a in matrix(3, 5), b in matrix(3, 5)) {
        prop_assert!(a.hadamard(&b).approx_eq(&b.hadamard(&a), 1e-12));
    }

    #[test]
    fn scale_is_linear(a in matrix(3, 3), s in -5.0f64..5.0, t in -5.0f64..5.0) {
        let left = a.scale(s + t);
        let right = &a.scale(s) + &a.scale(t);
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn csr_roundtrip(a in matrix(4, 6)) {
        let sparse = CsrMatrix::from_dense(&a);
        prop_assert_eq!(sparse.to_dense(), a);
    }

    #[test]
    fn csr_matvec_matches_dense(a in matrix(4, 5), v in proptest::collection::vec(-3.0f64..3.0, 5)) {
        let sparse = CsrMatrix::from_dense(&a);
        let lhs = sparse.matvec(&v);
        let rhs = a.matvec(&v);
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-10);
        }
    }

    #[test]
    fn csr_transpose_matches_dense(a in matrix(3, 7)) {
        let sparse = CsrMatrix::from_dense(&a);
        prop_assert_eq!(sparse.transpose().to_dense(), a.transpose());
    }

    #[test]
    fn cholesky_solves_spd_systems(l_entries in proptest::collection::vec(0.2f64..2.0, 6),
                                   b in proptest::collection::vec(-4.0f64..4.0, 3)) {
        // Build SPD A = L Lᵀ + I from a random lower-triangular L.
        let mut l = Matrix::zeros(3, 3);
        let mut idx = 0;
        for i in 0..3 {
            for j in 0..=i {
                l[(i, j)] = l_entries[idx];
                idx += 1;
            }
        }
        let a = &l.matmul(&l.transpose()) + &Matrix::identity(3);
        let ch = Cholesky::new(&a).expect("SPD by construction");
        let x = ch.solve(&b);
        let ax = a.matvec(&x);
        for (lhs, rhs) in ax.iter().zip(&b) {
            prop_assert!((lhs - rhs).abs() < 1e-8, "residual {} vs {}", lhs, rhs);
        }
    }

    #[test]
    fn frobenius_norm_triangle_inequality(a in matrix(4, 4), b in matrix(4, 4)) {
        let sum = &a + &b;
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn select_rows_preserves_content(a in matrix(5, 3), i in 0usize..5, j in 0usize..5) {
        let s = a.select_rows(&[i, j]);
        prop_assert_eq!(s.row(0), a.row(i));
        prop_assert_eq!(s.row(1), a.row(j));
    }
}
