//! Property-test net for the kernel-tier contract: the tiled kernels
//! must be `to_bits`-identical to the naive kernels for every input,
//! every thread count, and every tier-forcing mechanism.
//!
//! Each case compares three computations per kernel:
//! 1. the kernel with the tier forced to naive (`with_tier`),
//! 2. the kernel with the tier forced to tiled (`with_tier`),
//! 3. a hand-written reference loop in this file with the naive
//!    kernel's exact accumulation order (ascending `k` from `0.0`,
//!    skipping `a == 0.0` terms).
//!
//! CI additionally runs this suite under both `GCWC_KERNEL_TIER`
//! values; the environment outranks `with_tier`, so under forcing the
//! first two computations collapse to one tier — the reference loop
//! (3) keeps the comparison meaningful either way.
//!
//! Sizes deliberately straddle the 4×8 tile (n ∈ {1, 7, 96, 171, 301},
//! none a multiple of the tile width) and run at 1 and 4 threads.

use gcwc_linalg::parallel::with_threads;
use gcwc_linalg::tile::{with_tier, KernelTier};
use gcwc_linalg::{CsrMatrix, Matrix};
use proptest::prelude::*;

const SIZES: [usize; 5] = [1, 7, 96, 171, 301];
const THREADS: [usize; 2] = [1, 4];
/// Inner dimension for the dense cases; not a multiple of 4 or 8.
const KDIM: usize = 9;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic matrix with sign changes and ~1/7 exact zeros so the
/// kernels' zero-skip path is exercised.
fn gen(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed;
    Matrix::from_fn(rows, cols, |_, _| {
        let h = splitmix(&mut state);
        if h.is_multiple_of(7) {
            0.0
        } else {
            ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.0005) * 3.7
        }
    })
}

/// Banded sparse n×n matrix with irregular per-row nnz (0–3 entries).
fn gen_csr(n: usize, seed: u64) -> CsrMatrix {
    let mut state = seed;
    let mut triplets = Vec::new();
    for i in 0..n {
        for d in 0..(i % 4) {
            let col = (i + d * 5) % n;
            let h = splitmix(&mut state);
            let v = ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.1;
            if v != 0.0 {
                triplets.push((i, col, v));
            }
        }
    }
    CsrMatrix::from_triplets(n, n, triplets)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Reference `a · b` with the naive kernel's accumulation order.
fn ref_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(i, k)];
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += av * b[(k, j)];
            }
        }
    }
    out
}

/// Reference `a · bᵀ` with the naive kernel's accumulation order.
fn ref_matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                let av = a[(i, k)];
                if av == 0.0 {
                    continue;
                }
                acc += av * b[(j, k)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// Reference `aᵀ · b` with the naive kernel's accumulation order.
fn ref_matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for k in 0..a.rows() {
        for i in 0..a.cols() {
            let av = a[(k, i)];
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += av * b[(k, j)];
            }
        }
    }
    out
}

/// Reference sparse × dense in CSR entry order.
fn ref_csr_matmul(m: &CsrMatrix, rhs: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), rhs.cols());
    for i in 0..m.rows() {
        for (c, v) in m.row_entries(i) {
            for j in 0..rhs.cols() {
                out[(i, j)] += v * rhs[(c, j)];
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matmul_tiers_bit_identical(
        n_idx in 0usize..SIZES.len(),
        t_idx in 0usize..THREADS.len(),
        seed in 0u64..u64::MAX,
    ) {
        let n = SIZES[n_idx];
        let a = gen(n, KDIM, seed);
        let b = gen(KDIM, n, seed ^ 1);
        let reference = ref_matmul(&a, &b);
        with_threads(THREADS[t_idx], || {
            let naive = with_tier(KernelTier::Naive, || a.matmul(&b));
            let tiled = with_tier(KernelTier::Tiled, || a.matmul(&b));
            prop_assert_eq!(bits(&naive), bits(&reference), "naive vs reference, n={}", n);
            prop_assert_eq!(bits(&tiled), bits(&reference), "tiled vs reference, n={}", n);

            let mut out = Matrix::filled(n, n, f64::NAN); // stale buffer
            with_tier(KernelTier::Tiled, || a.matmul_into(&b, &mut out));
            prop_assert_eq!(bits(&out), bits(&reference), "tiled matmul_into, n={}", n);
            Ok(())
        })?;
    }

    #[test]
    fn matmul_nt_into_tiers_bit_identical(
        n_idx in 0usize..SIZES.len(),
        t_idx in 0usize..THREADS.len(),
        seed in 0u64..u64::MAX,
    ) {
        let n = SIZES[n_idx];
        let a = gen(n, KDIM, seed);
        let c = gen(n, KDIM, seed ^ 2);
        let reference = ref_matmul_nt(&a, &c);
        with_threads(THREADS[t_idx], || {
            let mut naive = Matrix::filled(n, n, f64::NAN);
            let mut tiled = Matrix::filled(n, n, f64::NAN);
            with_tier(KernelTier::Naive, || a.matmul_nt_into(&c, &mut naive));
            with_tier(KernelTier::Tiled, || a.matmul_nt_into(&c, &mut tiled));
            prop_assert_eq!(bits(&naive), bits(&reference), "naive vs reference, n={}", n);
            prop_assert_eq!(bits(&tiled), bits(&reference), "tiled vs reference, n={}", n);
            Ok(())
        })?;
    }

    #[test]
    fn matmul_tn_into_tiers_bit_identical(
        n_idx in 0usize..SIZES.len(),
        t_idx in 0usize..THREADS.len(),
        seed in 0u64..u64::MAX,
    ) {
        let n = SIZES[n_idx];
        let a = gen(KDIM, n, seed ^ 3);
        let b = gen(KDIM, n, seed ^ 4);
        let reference = ref_matmul_tn(&a, &b);
        with_threads(THREADS[t_idx], || {
            let mut naive = Matrix::filled(n, n, f64::NAN);
            let mut tiled = Matrix::filled(n, n, f64::NAN);
            with_tier(KernelTier::Naive, || a.matmul_tn_into(&b, &mut naive));
            with_tier(KernelTier::Tiled, || a.matmul_tn_into(&b, &mut tiled));
            prop_assert_eq!(bits(&naive), bits(&reference), "naive vs reference, n={}", n);
            prop_assert_eq!(bits(&tiled), bits(&reference), "tiled vs reference, n={}", n);
            Ok(())
        })?;
    }

    #[test]
    fn csr_matmul_dense_into_tiers_bit_identical(
        n_idx in 0usize..SIZES.len(),
        t_idx in 0usize..THREADS.len(),
        seed in 0u64..u64::MAX,
    ) {
        let n = SIZES[n_idx];
        let m = gen_csr(n, seed ^ 5);
        let rhs = gen(n, 8, seed ^ 6);
        let reference = ref_csr_matmul(&m, &rhs);
        with_threads(THREADS[t_idx], || {
            let mut naive = Matrix::filled(n, 8, f64::NAN);
            let mut tiled = Matrix::filled(n, 8, f64::NAN);
            with_tier(KernelTier::Naive, || m.matmul_dense_into(&rhs, &mut naive));
            with_tier(KernelTier::Tiled, || m.matmul_dense_into(&rhs, &mut tiled));
            prop_assert_eq!(bits(&naive), bits(&reference), "naive vs reference, n={}", n);
            prop_assert_eq!(bits(&tiled), bits(&reference), "tiled vs reference, n={}", n);

            // The fused Chebyshev step must reorder rows identically.
            let prev = gen(n, 8, seed ^ 7);
            let mut step_n = Matrix::filled(n, 8, f64::NAN);
            let mut step_t = Matrix::filled(n, 8, f64::NAN);
            with_tier(KernelTier::Naive, || m.cheb_step_into(&rhs, &prev, &mut step_n));
            with_tier(KernelTier::Tiled, || m.cheb_step_into(&rhs, &prev, &mut step_t));
            prop_assert_eq!(bits(&step_n), bits(&step_t), "cheb_step_into tiers, n={}", n);
            Ok(())
        })?;
    }
}
