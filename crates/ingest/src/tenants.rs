//! Per-tenant ingestion lanes: each tenant (one city, one graph) runs
//! its **own** [`Pipeline`] (durable log + sliding window) and its own
//! [`RefreshDriver`] over its own model registry. Lanes share nothing
//! mutable, so one tenant's stream volume, sealing cadence, refresh
//! rollbacks, or checkpoint failures cannot perturb another tenant's
//! lane — the ingest-side mirror of the serving layer's per-tenant
//! engines ([`gcwc_serve::TenantRegistry`]).
//!
//! Determinism carries over per lane: a tenant's lane consumes exactly
//! the record stream routed to it, so its refreshes are bit-identical
//! to a single-tenant process fed the same stream, regardless of what
//! other tenants do in between.

use std::collections::BTreeMap;

use gcwc_serve::TenantId;

use crate::pipeline::Pipeline;
use crate::record::SpeedRecord;
use crate::refresh::{RefreshDriver, RefreshOutcome};
use crate::window::SealedSlot;
use crate::IngestError;

/// One tenant's complete ingestion lane: pipeline, refresh driver, and
/// the sealed-slot backlog between the two.
pub struct IngestLane {
    pipeline: Pipeline,
    driver: RefreshDriver,
    /// Slots sealed by the pipeline but not yet consumed by a refresh
    /// (the driver's `trained_upto` watermark decides consumption; the
    /// newest `holdout` slots stay here as future training slots).
    sealed: Vec<SealedSlot>,
}

impl IngestLane {
    /// A lane over the given pipeline and driver.
    pub fn new(pipeline: Pipeline, driver: RefreshDriver) -> Self {
        Self { pipeline, driver, sealed: Vec::new() }
    }

    /// Ingests one record into this lane (durable log append, then
    /// window fold — see [`Pipeline::ingest`]).
    pub fn ingest(&mut self, rec: SpeedRecord) -> Result<bool, IngestError> {
        self.pipeline.ingest(rec)
    }

    /// Seals every slot the watermark has passed, then attempts one
    /// refresh over the accumulated sealed backlog. `NotReady` keeps
    /// the backlog intact; an applied or rolled-back refresh prunes
    /// the slots the driver consumed.
    pub fn poll_refresh(&mut self) -> Result<RefreshOutcome, IngestError> {
        self.pipeline.seal_ready()?;
        self.refresh_backlog()
    }

    /// End-of-stream variant of [`IngestLane::poll_refresh`]: seals
    /// every open slot regardless of the watermark first.
    pub fn finish_refresh(&mut self) -> Result<RefreshOutcome, IngestError> {
        self.pipeline.seal_all()?;
        self.refresh_backlog()
    }

    fn refresh_backlog(&mut self) -> Result<RefreshOutcome, IngestError> {
        self.sealed.extend(self.pipeline.take_sealed());
        let outcome = self.driver.refresh(&self.sealed)?;
        // Slots below the driver's watermark were consumed (trained on
        // or quarantined); holdout slots stay eligible for later
        // training and are retained.
        let upto = self.driver.trained_upto();
        self.sealed.retain(|s| s.slot >= upto);
        Ok(outcome)
    }

    /// Sealed slots waiting for a refresh to consume them.
    pub fn backlog(&self) -> usize {
        self.sealed.len()
    }

    /// The lane's pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The lane's pipeline, mutably (e.g. for `flush` on shutdown).
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// The lane's refresh driver.
    pub fn driver(&self) -> &RefreshDriver {
        &self.driver
    }

    /// The lane's refresh driver, mutably (e.g. for
    /// [`RefreshDriver::install_initial`]).
    pub fn driver_mut(&mut self) -> &mut RefreshDriver {
        &mut self.driver
    }
}

/// The per-tenant lane table of a multi-tenant ingest process. Routing
/// is by [`TenantId`]; a record addressed to an unregistered tenant is
/// refused with [`IngestError::UnknownTenant`] and touches no lane.
#[derive(Default)]
pub struct TenantLanes {
    lanes: BTreeMap<u64, IngestLane>,
}

impl TenantLanes {
    /// An empty lane table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a tenant's lane.
    ///
    /// # Panics
    /// Panics if `id` is already registered (mirrors
    /// [`gcwc_serve::TenantRegistry::register`]).
    pub fn register(&mut self, id: TenantId, lane: IngestLane) -> &mut IngestLane {
        let prev = self.lanes.insert(id.0, lane);
        assert!(prev.is_none(), "ingest lane for tenant {id} registered twice");
        self.lanes.get_mut(&id.0).unwrap()
    }

    /// Looks a lane up by tenant id.
    pub fn lane(&self, id: TenantId) -> Option<&IngestLane> {
        self.lanes.get(&id.0)
    }

    /// Looks a lane up by tenant id, mutably.
    pub fn lane_mut(&mut self, id: TenantId) -> Option<&mut IngestLane> {
        self.lanes.get_mut(&id.0)
    }

    /// Routes one record to its tenant's lane.
    pub fn ingest(&mut self, id: TenantId, rec: SpeedRecord) -> Result<bool, IngestError> {
        self.lane_mut(id).ok_or(IngestError::UnknownTenant(id.0))?.ingest(rec)
    }

    /// Runs [`IngestLane::poll_refresh`] on every lane, ascending by
    /// tenant id. One lane's error does not stop the sweep — lanes are
    /// independent — so each tenant's outcome is reported separately.
    pub fn poll_refresh_all(&mut self) -> Vec<(TenantId, Result<RefreshOutcome, IngestError>)> {
        self.lanes.iter_mut().map(|(&id, lane)| (TenantId(id), lane.poll_refresh())).collect()
    }

    /// Registered tenant ids, ascending.
    pub fn ids(&self) -> Vec<TenantId> {
        self.lanes.keys().map(|&id| TenantId(id)).collect()
    }

    /// Number of registered lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when no lane is registered.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }
}
