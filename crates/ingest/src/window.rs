//! Sliding-window aggregation: records → per-slot `W` weight matrices.
//!
//! Records are folded into per-(slot, edge) speed lists; a slot is
//! **sealed** — its histograms built into a [`WeightMatrix`] — once
//! the *watermark* (maximum observed event time minus the grace
//! window) passes the slot's end. Records for a not-yet-sealed slot
//! are accepted no matter how late they arrive relative to other
//! records; records for an already-sealed slot are counted and
//! dropped.
//!
//! **Determinism.** Sealed matrices depend only on the *set* of
//! records accepted into the slot, never their arrival order: the
//! histogram build counts bucket memberships (exact integer
//! increments) and divides once, and the coverage rule is a pure count
//! threshold. Feeding any permutation or chunking of the same record
//! stream and then sealing yields `to_bits`-identical matrices —
//! pinned by the `determinism` proptest suite.

use std::collections::BTreeMap;

use gcwc::TrainSample;
use gcwc_traffic::{Context, HistogramSpec, WeightMatrix};

use crate::record::SpeedRecord;
use crate::IngestError;

/// Shape of the sliding window.
#[derive(Clone, Copy, Debug)]
pub struct WindowConfig {
    /// Number of edges `n` in the served graph.
    pub num_edges: usize,
    /// Histogram specification shared with training/serving.
    pub spec: HistogramSpec,
    /// Slot length in seconds (the paper's 15-min slots: 900).
    pub slot_secs: u64,
    /// Slots per day (96 in the paper); slot index modulo this is the
    /// time-of-day context, and whole days rotate the day-of-week.
    pub slots_per_day: usize,
    /// Grace window in seconds: a slot seals only once the maximum
    /// observed event time exceeds its end by this much, so records up
    /// to `grace_secs` out of order are still accepted.
    pub grace_secs: u64,
    /// An edge's histogram instantiates only from at least this many
    /// records (the `min_records` of `TrafficData::ground_truth`).
    pub min_records: usize,
    /// Sealed slots retained for fine-tuning + validation; older ones
    /// slide out.
    pub retain_slots: usize,
}

impl WindowConfig {
    /// The paper's slot shape (15-min slots, 96/day) over `n` edges
    /// with a one-slot grace window and a two-day retention.
    pub fn paper(num_edges: usize, spec: HistogramSpec) -> Self {
        Self {
            num_edges,
            spec,
            slot_secs: 900,
            slots_per_day: 96,
            grace_secs: 900,
            min_records: 3,
            retain_slots: 192,
        }
    }
}

/// Per-edge record lists of one open slot, recycled across slots so
/// the steady-state intake path stays allocation-free.
struct SlotAccum {
    speeds: Vec<Vec<f64>>,
    count: usize,
}

impl SlotAccum {
    fn new(num_edges: usize) -> Self {
        Self { speeds: (0..num_edges).map(|_| Vec::new()).collect(), count: 0 }
    }

    fn reset(&mut self) {
        for v in &mut self.speeds {
            v.clear(); // keeps capacity for the next slot
        }
        self.count = 0;
    }
}

/// One sealed time slot: the observed weight matrix plus its context.
#[derive(Clone, Debug)]
pub struct SealedSlot {
    /// Global slot index (`timestamp / slot_secs`).
    pub slot: u64,
    /// The slot's observed `W`: per-edge speed histograms, zero rows
    /// for edges below the record threshold.
    pub weights: WeightMatrix,
    /// Context of the slot (time-of-day / day-of-week / coverage).
    pub context: Context,
    /// Records folded into the slot.
    pub records: usize,
}

impl SealedSlot {
    /// An estimation-task training sample: complete the slot's own
    /// matrix, scored on its covered rows — the streaming analogue of
    /// `build_samples(.., TaskKind::Estimation, ..)`.
    pub fn to_sample(&self, index: usize) -> TrainSample {
        TrainSample {
            snapshot_index: index,
            input: self.weights.matrix().clone(),
            label: self.weights.matrix().clone(),
            label_mask: self.weights.row_flags(),
            context: self.context.clone(),
            history: Vec::new(),
        }
    }
}

/// The sliding-window aggregator; see the module docs.
pub struct Aggregator {
    cfg: WindowConfig,
    /// Open slots by slot index (`BTreeMap` so sealing walks them in
    /// time order).
    open: BTreeMap<u64, SlotAccum>,
    /// Recycled accumulators of previously sealed slots.
    free: Vec<SlotAccum>,
    /// Sealed slots, oldest first, at most `retain_slots`.
    sealed: Vec<SealedSlot>,
    /// Every slot below this index is closed: records for it are late.
    sealed_upto: u64,
    /// Maximum event time observed (drives the watermark).
    max_ts: u64,
    accepted: u64,
    late_dropped: u64,
}

impl Aggregator {
    /// An empty window.
    pub fn new(cfg: WindowConfig) -> Self {
        assert!(cfg.num_edges > 0, "aggregator needs at least one edge");
        assert!(cfg.slot_secs > 0, "slot length must be positive");
        assert!(cfg.slots_per_day > 0, "slots_per_day must be positive");
        Self {
            cfg,
            open: BTreeMap::new(),
            free: Vec::new(),
            sealed: Vec::new(),
            sealed_upto: 0,
            max_ts: 0,
            accepted: 0,
            late_dropped: 0,
        }
    }

    /// The window configuration.
    pub fn config(&self) -> &WindowConfig {
        &self.cfg
    }

    /// Offers one record. Returns `true` when it was folded into an
    /// open slot, `false` when its slot already sealed (counted as a
    /// late drop). Allocation-free once the slot's per-edge buffers
    /// are warm.
    pub fn offer(&mut self, rec: SpeedRecord) -> bool {
        assert!(
            (rec.edge as usize) < self.cfg.num_edges,
            "record edge {} out of range {}",
            rec.edge,
            self.cfg.num_edges
        );
        let slot = rec.slot(self.cfg.slot_secs);
        if slot < self.sealed_upto {
            self.late_dropped += 1;
            return false;
        }
        if rec.timestamp > self.max_ts {
            self.max_ts = rec.timestamp;
        }
        let accum = self.open.entry(slot).or_insert_with(|| {
            self.free.pop().unwrap_or_else(|| SlotAccum::new(self.cfg.num_edges))
        });
        accum.speeds[rec.edge as usize].push(rec.speed);
        accum.count += 1;
        self.accepted += 1;
        true
    }

    /// Event-time watermark: everything at or before this instant is
    /// considered complete.
    pub fn watermark(&self) -> u64 {
        self.max_ts.saturating_sub(self.cfg.grace_secs)
    }

    /// Seals every open slot whose end the watermark has passed,
    /// appending the results to `out` in slot order, and returns how
    /// many sealed. Sealing is transactional per slot: the
    /// `ingest.slot.seal` failpoint is evaluated *before* any state
    /// changes, so an injected failure leaves the slot open and a
    /// retry seals it identically.
    pub fn seal_ready(&mut self, out: &mut Vec<SealedSlot>) -> Result<usize, IngestError> {
        // Slots with id < close_before end at or before the watermark.
        let close_before = self.watermark() / self.cfg.slot_secs;
        let mut sealed = 0usize;
        while let Some((&slot, _)) = self.open.first_key_value() {
            if slot >= close_before {
                break;
            }
            self.seal_slot(slot, out)?;
            sealed += 1;
        }
        if close_before > self.sealed_upto {
            self.sealed_upto = close_before;
        }
        Ok(sealed)
    }

    /// Seals every open slot regardless of the watermark — shutdown
    /// and end-of-stream path.
    pub fn seal_all(&mut self, out: &mut Vec<SealedSlot>) -> Result<usize, IngestError> {
        let mut sealed = 0usize;
        while let Some((&slot, _)) = self.open.first_key_value() {
            self.seal_slot(slot, out)?;
            self.sealed_upto = self.sealed_upto.max(slot + 1);
            sealed += 1;
        }
        Ok(sealed)
    }

    fn seal_slot(&mut self, slot: u64, out: &mut Vec<SealedSlot>) -> Result<(), IngestError> {
        if gcwc_failpoint::triggered(crate::failsite::SLOT_SEAL) {
            return Err(IngestError::Injected(crate::failsite::SLOT_SEAL));
        }
        let mut accum = self.open.remove(&slot).expect("slot is open");
        let rows: Vec<Option<Vec<f64>>> = accum
            .speeds
            .iter()
            .map(|r| if r.len() >= self.cfg.min_records { self.cfg.spec.build(r) } else { None })
            .collect();
        let weights = WeightMatrix::from_rows(rows, self.cfg.spec.buckets);
        let row_flags = weights.row_flags();
        let context = Context {
            time_of_day: (slot % self.cfg.slots_per_day as u64) as usize,
            day_of_week: ((slot / self.cfg.slots_per_day as u64) % 7) as usize,
            intervals_per_day: self.cfg.slots_per_day,
            row_flags,
        };
        let sealed = SealedSlot { slot, weights, context, records: accum.count };
        out.push(sealed.clone());
        self.sealed.push(sealed);
        if self.sealed.len() > self.cfg.retain_slots {
            let excess = self.sealed.len() - self.cfg.retain_slots;
            self.sealed.drain(..excess);
        }
        accum.reset();
        self.free.push(accum);
        Ok(())
    }

    /// Sealed slots still inside the retention window, oldest first.
    pub fn sealed(&self) -> &[SealedSlot] {
        &self.sealed
    }

    /// Slots currently open (accumulating records).
    pub fn open_slots(&self) -> usize {
        self.open.len()
    }

    /// Records accepted into slots.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Records dropped because their slot had already sealed.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WindowConfig {
        WindowConfig {
            num_edges: 4,
            spec: HistogramSpec::hist4(),
            slot_secs: 100,
            slots_per_day: 8,
            grace_secs: 50,
            min_records: 2,
            retain_slots: 16,
        }
    }

    fn rec(edge: u32, t: u64, v: f64) -> SpeedRecord {
        SpeedRecord { edge, timestamp: t, speed: v }
    }

    #[test]
    fn watermark_sealing_respects_grace() {
        let mut agg = Aggregator::new(cfg());
        agg.offer(rec(0, 10, 5.0));
        agg.offer(rec(0, 20, 6.0));
        let mut out = Vec::new();
        // Watermark = 20 - 50 (saturating) = 0: nothing seals.
        assert_eq!(agg.seal_ready(&mut out).unwrap(), 0);
        // Event at t=149: watermark 99 < 100, slot 0 still open.
        agg.offer(rec(1, 149, 7.0));
        assert_eq!(agg.seal_ready(&mut out).unwrap(), 0);
        // Event at t=150: watermark 100 closes slot 0.
        agg.offer(rec(1, 150, 8.0));
        assert_eq!(agg.seal_ready(&mut out).unwrap(), 1);
        assert_eq!(out[0].slot, 0);
        assert_eq!(out[0].records, 2);
    }

    #[test]
    fn late_records_within_grace_are_accepted_then_dropped_after_seal() {
        let mut agg = Aggregator::new(cfg());
        agg.offer(rec(0, 10, 5.0));
        // t=140 advances the watermark to 90: slot 0 (end 100) is
        // still open, so this "late" record for it is accepted.
        agg.offer(rec(1, 140, 9.0));
        assert!(agg.offer(rec(0, 50, 6.0)));
        let mut out = Vec::new();
        agg.offer(rec(2, 160, 9.0)); // watermark 110 seals slot 0
        assert_eq!(agg.seal_ready(&mut out).unwrap(), 1);
        // Slot 0 is sealed now: the same record is counted + dropped.
        assert!(!agg.offer(rec(0, 50, 6.0)));
        assert_eq!(agg.late_dropped(), 1);
        assert_eq!(agg.accepted(), 4);
    }

    #[test]
    fn sealed_matrix_matches_direct_histogram_build() {
        let mut agg = Aggregator::new(cfg());
        let speeds = [1.0, 2.0, 11.0, 25.0];
        for (i, &v) in speeds.iter().enumerate() {
            agg.offer(rec(0, 10 + i as u64, v));
        }
        agg.offer(rec(1, 20, 5.0)); // below min_records -> uncovered
        let mut out = Vec::new();
        agg.seal_all(&mut out).unwrap();
        assert_eq!(out.len(), 1);
        let w = &out[0].weights;
        assert!(w.is_covered(0));
        assert!(!w.is_covered(1));
        let expect = HistogramSpec::hist4().build(&speeds).unwrap();
        assert_eq!(w.row(0).unwrap(), &expect[..]);
    }

    #[test]
    fn context_tracks_time_of_day_and_weekday() {
        let mut agg = Aggregator::new(cfg());
        // Slot 9 = day 1, time-of-day 1 (8 slots/day).
        agg.offer(rec(0, 910, 5.0));
        agg.offer(rec(0, 920, 5.0));
        let mut out = Vec::new();
        agg.seal_all(&mut out).unwrap();
        assert_eq!(out[0].slot, 9);
        assert_eq!(out[0].context.time_of_day, 1);
        assert_eq!(out[0].context.day_of_week, 1);
    }

    #[test]
    fn retention_slides_old_slots_out() {
        let mut small = cfg();
        small.retain_slots = 2;
        let mut agg = Aggregator::new(small);
        for slot in 0..5u64 {
            agg.offer(rec(0, slot * 100 + 1, 5.0));
            agg.offer(rec(0, slot * 100 + 2, 6.0));
        }
        let mut out = Vec::new();
        agg.seal_all(&mut out).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(agg.sealed().len(), 2);
        assert_eq!(agg.sealed()[0].slot, 3);
        assert_eq!(agg.sealed()[1].slot, 4);
    }

    #[test]
    fn empty_slots_between_records_produce_no_sealed_slot() {
        let mut agg = Aggregator::new(cfg());
        agg.offer(rec(0, 10, 5.0));
        agg.offer(rec(0, 20, 5.0));
        agg.offer(rec(0, 510, 7.0)); // slots 1..4 empty
        agg.offer(rec(0, 520, 7.0));
        let mut out = Vec::new();
        agg.seal_all(&mut out).unwrap();
        assert_eq!(out.iter().map(|s| s.slot).collect::<Vec<_>>(), vec![0, 5]);
    }
}
