//! Streaming ingestion and incremental refresh: the "live city" loop.
//!
//! The paper completes stochastic weights per time slot from observed
//! traffic; production traffic is an unbounded *stream* of speed
//! records. This crate closes the stream → train → serve loop on top
//! of the existing pieces:
//!
//! ```text
//! producers ─▶ Intake (bounded MPSC, backpressure)
//!                 │ drain
//!                 ▼
//!             Pipeline ──▶ RecordLog   (append-only crash-safe segments)
//!                 │
//!                 └──────▶ Aggregator  (sliding window, watermark sealing)
//!                              │ sealed slot W matrices
//!                              ▼
//!                         RefreshDriver (warm-start fine-tune, validate,
//!                              │         atomic hot-swap or rollback)
//!                              ▼
//!                         ModelRegistry ──▶ Engine ──▶ clients
//! ```
//!
//! Determinism is load-bearing throughout: slot `W` matrices are built
//! by exact bucket counting, so any arrival order of the same record
//! set seals bit-identical matrices, and a refresh consumes the model
//! RNG exactly like one offline fit — a refreshed server answers
//! bit-identically to a model trained offline on the same data.

#![warn(missing_docs)]

pub mod intake;
pub mod log;
pub mod pipeline;
pub mod record;
pub mod refresh;
pub mod tenants;
pub mod window;

pub use intake::{Intake, IntakeHandle};
pub use log::RecordLog;
pub use pipeline::Pipeline;
pub use record::SpeedRecord;
pub use refresh::{RefreshConfig, RefreshDriver, RefreshOutcome, ShardedFactory};
pub use tenants::{IngestLane, TenantLanes};
pub use window::{Aggregator, SealedSlot, WindowConfig};

/// Failpoint site names this crate evaluates (see `gcwc_failpoint`;
/// sites are inert unless the `failpoints` feature is enabled *and*
/// the site is armed).
pub mod failsite {
    /// Record-log append. `err` refuses the record with a typed I/O
    /// error (the in-memory buffer is untouched); `panic` kills the
    /// intake thread mid-append — segment files stay whole either way
    /// because segments are only ever published by atomic rename.
    pub const LOG_APPEND: &str = "ingest.log.append";
    /// Slot sealing. Evaluated per slot *before* any aggregator state
    /// changes, so an injected `err`/`panic` leaves the slot open and
    /// a later `seal_ready` call seals it identically.
    pub const SLOT_SEAL: &str = "ingest.slot.seal";
    /// Refresh hot-swap, evaluated after the candidate checkpoints are
    /// written but *before* the manifest commit and registry install.
    /// `panic` simulates dying mid-refresh: the manifest still names
    /// the previous checkpoint generation and the registry keeps
    /// serving the previous snapshot — no torn state.
    pub const REFRESH_SWAP: &str = "ingest.refresh.swap";
}

/// Everything that can go wrong in the ingestion pipeline.
#[derive(Debug)]
pub enum IngestError {
    /// Reading or writing log segments or the refresh manifest failed.
    Io(std::io::Error),
    /// A log segment or manifest file failed validation on open.
    Corrupt {
        /// The offending file.
        path: std::path::PathBuf,
        /// What was wrong with it.
        reason: String,
    },
    /// Saving or loading model checkpoints failed.
    Persist(gcwc_nn::PersistError),
    /// The fine-tune pass aborted (divergence guard or checkpoint
    /// failure); the previous generation keeps serving.
    Train(gcwc::TrainError),
    /// An armed failpoint injected a failure at the named site.
    Injected(&'static str),
    /// A record was routed to a tenant with no registered ingest lane.
    UnknownTenant(u64),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest I/O error: {e}"),
            IngestError::Corrupt { path, reason } => {
                write!(f, "corrupt ingest file {}: {reason}", path.display())
            }
            IngestError::Persist(e) => write!(f, "checkpoint error: {e}"),
            IngestError::Train(e) => write!(f, "fine-tune failed: {e}"),
            IngestError::Injected(site) => write!(f, "failpoint {site}: injected failure"),
            IngestError::UnknownTenant(id) => {
                write!(f, "tenant {id} has no registered ingest lane")
            }
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<gcwc_nn::PersistError> for IngestError {
    fn from(e: gcwc_nn::PersistError) -> Self {
        IngestError::Persist(e)
    }
}

impl From<gcwc::TrainError> for IngestError {
    fn from(e: gcwc::TrainError) -> Self {
        IngestError::Train(e)
    }
}
