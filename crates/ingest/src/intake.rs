//! Bounded record intake: the MPSC seam between producers and the
//! pipeline.
//!
//! Producers (simulated probes, a wire front end, a replay tool) hold
//! cheap cloneable [`IntakeHandle`]s and push [`SpeedRecord`]s into a
//! [`BoundedQueue`]; the single pipeline owner drains them in batches.
//! The queue is allocated once at capacity, so steady-state submission
//! is allocation-free, and a full queue exerts backpressure: blocking
//! sends park the producer, non-blocking sends hand the record back.

use std::sync::Arc;

use gcwc_serve::queue::{BoundedQueue, PushError};

use crate::record::SpeedRecord;

/// The consumer side of the intake queue. Owned by whoever drives the
/// [`crate::Pipeline`]; hand out producers via [`Intake::handle`].
pub struct Intake {
    queue: Arc<BoundedQueue<SpeedRecord>>,
}

/// A producer handle onto the intake queue. `Clone` + `Send`: one per
/// producer thread.
#[derive(Clone)]
pub struct IntakeHandle {
    queue: Arc<BoundedQueue<SpeedRecord>>,
}

impl Intake {
    /// An intake queue holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        Self { queue: Arc::new(BoundedQueue::new(capacity)) }
    }

    /// A new producer handle.
    pub fn handle(&self) -> IntakeHandle {
        IntakeHandle { queue: Arc::clone(&self.queue) }
    }

    /// Pops one record without blocking.
    pub fn try_recv(&self) -> Option<SpeedRecord> {
        self.queue.try_pop()
    }

    /// Pops one record, blocking until one arrives; `None` once the
    /// queue is closed and drained.
    pub fn recv(&self) -> Option<SpeedRecord> {
        self.queue.pop()
    }

    /// Drains everything currently queued through `f`; returns how
    /// many records were handed over. Does not block.
    pub fn drain(&self, mut f: impl FnMut(SpeedRecord)) -> usize {
        let mut n = 0;
        while let Some(rec) = self.queue.try_pop() {
            f(rec);
            n += 1;
        }
        n
    }

    /// Closes the queue: producers fail fast, the consumer drains what
    /// remains and then sees `None`.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Records currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no records are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl IntakeHandle {
    /// Blocking send with backpressure: parks while the queue is full;
    /// returns the record back once the intake is closed.
    pub fn send(&self, rec: SpeedRecord) -> Result<(), SpeedRecord> {
        self.queue.push(rec).map_err(unwrap_push)
    }

    /// Non-blocking send; hands the record back when the queue is full
    /// or closed.
    pub fn try_send(&self, rec: SpeedRecord) -> Result<(), SpeedRecord> {
        self.queue.try_push(rec).map_err(unwrap_push)
    }

    /// True once the intake has been closed.
    pub fn is_closed(&self) -> bool {
        self.queue.is_closed()
    }
}

fn unwrap_push(e: PushError<SpeedRecord>) -> SpeedRecord {
    match e {
        PushError::Full(r) | PushError::Closed(r) => r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(edge: u32) -> SpeedRecord {
        SpeedRecord { edge, timestamp: edge as u64, speed: 5.0 }
    }

    #[test]
    fn drain_preserves_fifo_order() {
        let intake = Intake::new(8);
        let h = intake.handle();
        for i in 0..5 {
            h.try_send(rec(i)).unwrap();
        }
        let mut seen = Vec::new();
        assert_eq!(intake.drain(|r| seen.push(r.edge)), 5);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert!(intake.is_empty());
    }

    #[test]
    fn full_queue_pushes_back_on_try_send() {
        let intake = Intake::new(2);
        let h = intake.handle();
        h.try_send(rec(0)).unwrap();
        h.try_send(rec(1)).unwrap();
        assert_eq!(h.try_send(rec(2)).unwrap_err().edge, 2);
        intake.try_recv().unwrap();
        h.try_send(rec(2)).unwrap();
    }

    #[test]
    fn close_rejects_producers_but_drains_consumer() {
        let intake = Intake::new(4);
        let h = intake.handle();
        h.send(rec(0)).unwrap();
        intake.close();
        assert!(h.is_closed());
        assert!(h.send(rec(1)).is_err());
        assert_eq!(intake.recv().map(|r| r.edge), Some(0));
        assert_eq!(intake.recv(), None);
    }

    #[test]
    fn blocking_send_exerts_backpressure() {
        let intake = Intake::new(1);
        let h = intake.handle();
        h.send(rec(0)).unwrap();
        let t = std::thread::spawn(move || h.send(rec(1)));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(intake.recv().map(|r| r.edge), Some(0));
        t.join().unwrap().unwrap();
        assert_eq!(intake.recv().map(|r| r.edge), Some(1));
    }
}
