//! The unit of the stream: one observed traversal speed on one edge.

/// One speed observation from the field: a vehicle traversed `edge` at
/// `timestamp` (seconds since the stream epoch) with average `speed`
/// (m/s). 24 bytes, `Copy` — the intake queue and log buffers move
/// records without touching the heap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeedRecord {
    /// Global edge index in the served graph.
    pub edge: u32,
    /// Event time in seconds since the stream epoch (not arrival
    /// time — the window aggregator orders by event time only).
    pub timestamp: u64,
    /// Observed speed in m/s.
    pub speed: f64,
}

impl SpeedRecord {
    /// The time slot this record's event time falls into.
    pub fn slot(&self, slot_secs: u64) -> u64 {
        self.timestamp / slot_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_is_floor_division() {
        let r = |t| SpeedRecord { edge: 0, timestamp: t, speed: 10.0 };
        assert_eq!(r(0).slot(900), 0);
        assert_eq!(r(899).slot(900), 0);
        assert_eq!(r(900).slot(900), 1);
        assert_eq!(r(1800).slot(900), 2);
    }
}
