//! The single-owner ingestion pipeline: log every record durably, fold
//! it into the sliding window, and surface sealed slots for refresh.
//!
//! One thread owns the [`Pipeline`]; producers reach it through the
//! [`crate::Intake`] queue. Every accepted record is appended to the
//! [`RecordLog`] *first* (the log is the durable source of truth —
//! late records are logged too, even though the window drops them) and
//! then offered to the [`Aggregator`]. Sealed slots accumulate in an
//! internal buffer until the refresh driver takes them.

use std::sync::Arc;

use gcwc_serve::IngestStats;

use crate::log::RecordLog;
use crate::record::SpeedRecord;
use crate::window::{Aggregator, SealedSlot};
use crate::IngestError;

/// Log + window behind one `ingest` call; see the module docs.
pub struct Pipeline {
    log: RecordLog,
    window: Aggregator,
    /// Sealed slots not yet consumed by the refresh driver.
    ready: Vec<SealedSlot>,
    stats: Option<Arc<IngestStats>>,
}

impl Pipeline {
    /// A pipeline over the given log and window.
    pub fn new(log: RecordLog, window: Aggregator) -> Self {
        Self { log, window, ready: Vec::new(), stats: None }
    }

    /// Mirrors pipeline counters into the serving engine's stats (the
    /// same [`IngestStats`] handed to `Engine::attach_ingest`).
    pub fn with_stats(mut self, stats: Arc<IngestStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Ingests one record: durable log append, then window fold.
    /// Returns `true` when the window accepted it, `false` when its
    /// slot had already sealed (the record is still logged). An `Err`
    /// means the log refused the record — nothing was folded, so the
    /// caller can retry the same record.
    pub fn ingest(&mut self, rec: SpeedRecord) -> Result<bool, IngestError> {
        self.log.append(rec)?;
        let accepted = self.window.offer(rec);
        if let Some(stats) = &self.stats {
            stats.add_records(1);
            if !accepted {
                stats.late_dropped();
            }
        }
        Ok(accepted)
    }

    /// Seals every slot the watermark has passed; returns how many.
    pub fn seal_ready(&mut self) -> Result<usize, IngestError> {
        let sealed = self.window.seal_ready(&mut self.ready)?;
        self.note_sealed(sealed);
        Ok(sealed)
    }

    /// Seals every open slot regardless of the watermark (end of
    /// stream / shutdown).
    pub fn seal_all(&mut self) -> Result<usize, IngestError> {
        let sealed = self.window.seal_all(&mut self.ready)?;
        self.note_sealed(sealed);
        Ok(sealed)
    }

    fn note_sealed(&self, sealed: usize) {
        if let Some(stats) = &self.stats {
            for _ in 0..sealed {
                stats.slot_sealed();
            }
        }
    }

    /// Takes the slots sealed since the last call, oldest first — the
    /// refresh driver's input.
    pub fn take_sealed(&mut self) -> Vec<SealedSlot> {
        std::mem::take(&mut self.ready)
    }

    /// Sealed slots awaiting [`Pipeline::take_sealed`].
    pub fn sealed_pending(&self) -> usize {
        self.ready.len()
    }

    /// Flushes the log's active buffer to disk (shutdown path).
    pub fn flush(&mut self) -> Result<(), IngestError> {
        self.log.flush()
    }

    /// The underlying record log.
    pub fn log(&self) -> &RecordLog {
        &self.log
    }

    /// The sliding-window aggregator.
    pub fn window(&self) -> &Aggregator {
        &self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowConfig;
    use gcwc_traffic::HistogramSpec;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gcwc-ingest-pipe-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg() -> WindowConfig {
        WindowConfig {
            num_edges: 3,
            spec: HistogramSpec::hist4(),
            slot_secs: 100,
            slots_per_day: 4,
            grace_secs: 0,
            min_records: 1,
            retain_slots: 8,
        }
    }

    fn rec(edge: u32, t: u64, v: f64) -> SpeedRecord {
        SpeedRecord { edge, timestamp: t, speed: v }
    }

    #[test]
    fn records_flow_log_then_window() {
        let dir = tmpdir("flow");
        let log = RecordLog::open(&dir, 2).unwrap();
        let mut pipe = Pipeline::new(log, Aggregator::new(cfg()));
        assert!(pipe.ingest(rec(0, 10, 5.0)).unwrap());
        assert!(pipe.ingest(rec(1, 110, 6.0)).unwrap());
        assert_eq!(pipe.seal_ready().unwrap(), 1);
        let sealed = pipe.take_sealed();
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].slot, 0);
        assert_eq!(pipe.log().persisted(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn late_records_are_logged_but_not_folded() {
        let dir = tmpdir("late");
        let log = RecordLog::open(&dir, 16).unwrap();
        let mut pipe = Pipeline::new(log, Aggregator::new(cfg()));
        pipe.ingest(rec(0, 10, 5.0)).unwrap();
        pipe.ingest(rec(0, 150, 6.0)).unwrap();
        pipe.seal_ready().unwrap(); // seals slot 0
        assert!(!pipe.ingest(rec(0, 20, 9.0)).unwrap());
        assert_eq!(pipe.window().late_dropped(), 1);
        pipe.flush().unwrap();
        // The late record still made it to the durable log.
        assert_eq!(pipe.log().replay().unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_mirror_pipeline_counters() {
        let dir = tmpdir("stats");
        let stats = Arc::new(IngestStats::new());
        let log = RecordLog::open(&dir, 16).unwrap();
        let mut pipe = Pipeline::new(log, Aggregator::new(cfg())).with_stats(Arc::clone(&stats));
        pipe.ingest(rec(0, 10, 5.0)).unwrap();
        pipe.ingest(rec(1, 150, 6.0)).unwrap();
        pipe.seal_ready().unwrap();
        pipe.ingest(rec(0, 20, 9.0)).unwrap(); // late
        let [records, sealed, late, applied, rolled_back, age] = stats.snapshot();
        assert_eq!(records, 3);
        assert_eq!(sealed, 1);
        assert_eq!(late, 1);
        assert_eq!((applied, rolled_back), (0, 0));
        assert_eq!(age, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
