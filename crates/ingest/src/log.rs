//! Append-only record log with crash-safe segment files.
//!
//! Records accumulate in a pre-allocated in-memory buffer (the
//! *active* segment); once it reaches the configured capacity it is
//! written out as one immutable segment file via the same atomic
//! tmp+rename pattern as `gcwc::TrainState::save_atomic` — the file
//! either exists whole or not at all, so a crash at any instant leaves
//! only complete segments on disk (plus at most one `.tmp` leftover,
//! which [`RecordLog::open`] discards). The durability unit is the
//! segment: a crash loses at most the records of the active buffer,
//! never tears a published one.
//!
//! Segment format (text, speeds as raw `f64` bit patterns in hex so
//! replay is bit-lossless):
//!
//! ```text
//! gcwc-ingest-segment v1
//! records N
//! <edge> <timestamp> <speed-bits-hex>   × N
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::record::SpeedRecord;
use crate::IngestError;

const MAGIC: &str = "gcwc-ingest-segment v1";
const SEGMENT_EXT: &str = "seg";

/// Append-only segment log; see the module docs.
pub struct RecordLog {
    dir: PathBuf,
    segment_capacity: usize,
    /// Active (not yet published) segment, pre-allocated to capacity
    /// so the steady-state append path performs no heap allocation.
    active: Vec<SpeedRecord>,
    /// Index of the next segment file to publish.
    next_seq: u64,
    /// Records already published to disk.
    persisted: u64,
    /// Serialisation scratch, reused across segment writes.
    scratch: String,
}

impl RecordLog {
    /// Opens (or creates) the log in `dir`, validating every existing
    /// segment and discarding `.tmp` leftovers of a crashed write.
    /// `segment_capacity` is the records-per-segment durability unit.
    pub fn open(dir: &Path, segment_capacity: usize) -> Result<Self, IngestError> {
        assert!(segment_capacity >= 1, "segment capacity must be at least 1");
        fs::create_dir_all(dir)?;
        let mut max_seq = None;
        let mut persisted = 0u64;
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if name.ends_with(".tmp") {
                // A crash between tmp write and rename: the segment was
                // never published, so the leftover carries no data the
                // log ever acknowledged.
                let _ = fs::remove_file(&path);
                continue;
            }
            let Some(seq) = parse_segment_name(name) else { continue };
            let records = read_segment(&path)?;
            persisted += records.len() as u64;
            max_seq = Some(max_seq.map_or(seq, |m: u64| m.max(seq)));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            segment_capacity,
            active: Vec::with_capacity(segment_capacity),
            next_seq: max_seq.map_or(0, |m| m + 1),
            persisted,
            scratch: String::new(),
        })
    }

    /// Appends one record. Returns `true` when the append published a
    /// full segment to disk (the caller's durability signal). The
    /// non-publishing path is allocation-free.
    pub fn append(&mut self, rec: SpeedRecord) -> Result<bool, IngestError> {
        // Failpoint: an injected disk error refuses the record before
        // any state changes, so the caller can retry it verbatim.
        if gcwc_failpoint::triggered(crate::failsite::LOG_APPEND) {
            return Err(IngestError::Io(std::io::Error::other(format!(
                "failpoint {}: injected append failure",
                crate::failsite::LOG_APPEND
            ))));
        }
        self.active.push(rec);
        if self.active.len() >= self.segment_capacity {
            self.publish_active()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Publishes a partial active buffer as a (short) segment; a no-op
    /// when the buffer is empty. Call on shutdown so no acknowledged
    /// record is lost.
    pub fn flush(&mut self) -> Result<(), IngestError> {
        if self.active.is_empty() {
            return Ok(());
        }
        self.publish_active()
    }

    /// Records buffered in memory, not yet durable.
    pub fn pending(&self) -> usize {
        self.active.len()
    }

    /// Records published to disk.
    pub fn persisted(&self) -> u64 {
        self.persisted
    }

    /// Published segment paths in append order.
    pub fn segments(&self) -> Result<Vec<PathBuf>, IngestError> {
        let mut seqs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if let Some(seq) = parse_segment_name(name) {
                seqs.push((seq, path));
            }
        }
        seqs.sort_by_key(|(seq, _)| *seq);
        Ok(seqs.into_iter().map(|(_, p)| p).collect())
    }

    /// Replays every published record in append order — the recovery
    /// path that rebuilds the window aggregator after a restart.
    pub fn replay(&self) -> Result<Vec<SpeedRecord>, IngestError> {
        let mut out = Vec::with_capacity(self.persisted as usize);
        for path in self.segments()? {
            out.extend(read_segment(&path)?);
        }
        Ok(out)
    }

    fn publish_active(&mut self) -> Result<(), IngestError> {
        let path = self.dir.join(format!("segment-{:08}.{SEGMENT_EXT}", self.next_seq));
        self.scratch.clear();
        let _ = writeln!(self.scratch, "{MAGIC}");
        let _ = writeln!(self.scratch, "records {}", self.active.len());
        for r in &self.active {
            let _ = writeln!(self.scratch, "{} {} {:016x}", r.edge, r.timestamp, r.speed.to_bits());
        }
        // Atomic publish: write the whole segment to a `.tmp` sibling,
        // then rename over the final name. Readers never observe a
        // partially written segment.
        let tmp = path.with_extension(format!("{SEGMENT_EXT}.tmp"));
        fs::write(&tmp, &self.scratch)?;
        fs::rename(&tmp, &path)?;
        self.persisted += self.active.len() as u64;
        self.active.clear();
        self.next_seq += 1;
        Ok(())
    }
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("segment-")?;
    let seq = rest.strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    seq.parse().ok()
}

fn read_segment(path: &Path) -> Result<Vec<SpeedRecord>, IngestError> {
    let corrupt =
        |reason: &str| IngestError::Corrupt { path: path.to_path_buf(), reason: reason.to_owned() };
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(corrupt("bad magic line"));
    }
    let count: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("records "))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| corrupt("bad record-count line"))?;
    let mut records = Vec::with_capacity(count);
    for line in lines.by_ref().take(count) {
        let mut tok = line.split_whitespace();
        let edge: u32 =
            tok.next().and_then(|t| t.parse().ok()).ok_or_else(|| corrupt("bad edge field"))?;
        let timestamp: u64 = tok
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| corrupt("bad timestamp field"))?;
        let bits = tok
            .next()
            .and_then(|t| u64::from_str_radix(t, 16).ok())
            .ok_or_else(|| corrupt("bad speed field"))?;
        records.push(SpeedRecord { edge, timestamp, speed: f64::from_bits(bits) });
    }
    if records.len() != count {
        return Err(corrupt("truncated segment"));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gcwc-ingest-log-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(edge: u32, t: u64, v: f64) -> SpeedRecord {
        SpeedRecord { edge, timestamp: t, speed: v }
    }

    #[test]
    fn appends_publish_full_segments() {
        let dir = tmpdir("publish");
        let mut log = RecordLog::open(&dir, 3).unwrap();
        assert!(!log.append(rec(0, 1, 5.0)).unwrap());
        assert!(!log.append(rec(1, 2, 6.5)).unwrap());
        assert!(log.append(rec(2, 3, 7.25)).unwrap());
        assert_eq!(log.pending(), 0);
        assert_eq!(log.persisted(), 3);
        assert_eq!(log.segments().unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_is_bit_lossless_in_append_order() {
        let dir = tmpdir("replay");
        let records: Vec<SpeedRecord> =
            (0..7).map(|i| rec(i, 100 + i as u64, (i as f64) * 0.1 + f64::MIN_POSITIVE)).collect();
        let mut log = RecordLog::open(&dir, 3).unwrap();
        for &r in &records {
            log.append(r).unwrap();
        }
        log.flush().unwrap();
        let back = log.replay().unwrap();
        assert_eq!(back.len(), records.len());
        for (a, b) in back.iter().zip(&records) {
            assert_eq!(a.speed.to_bits(), b.speed.to_bits());
            assert_eq!((a.edge, a.timestamp), (b.edge, b.timestamp));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_resumes_sequence_and_count() {
        let dir = tmpdir("reopen");
        let mut log = RecordLog::open(&dir, 2).unwrap();
        for i in 0..4 {
            log.append(rec(i, i as u64, 1.0)).unwrap();
        }
        drop(log);
        let mut log = RecordLog::open(&dir, 2).unwrap();
        assert_eq!(log.persisted(), 4);
        for i in 4..6 {
            log.append(rec(i, i as u64, 2.0)).unwrap();
        }
        assert_eq!(log.segments().unwrap().len(), 3);
        assert_eq!(log.replay().unwrap().len(), 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_discards_tmp_leftovers_and_rejects_torn_segments() {
        let dir = tmpdir("torn");
        fs::write(dir.join("segment-00000000.seg.tmp"), "half a write").unwrap();
        let log = RecordLog::open(&dir, 2).unwrap();
        assert_eq!(log.persisted(), 0);
        assert!(!dir.join("segment-00000000.seg.tmp").exists());
        // A published-but-mangled segment is a hard error, not silent
        // data loss.
        fs::write(dir.join("segment-00000001.seg"), "gcwc-ingest-segment v1\nrecords 5\n1 2 0\n")
            .unwrap();
        assert!(matches!(RecordLog::open(&dir, 2), Err(IngestError::Corrupt { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_of_empty_buffer_is_noop() {
        let dir = tmpdir("noop");
        let mut log = RecordLog::open(&dir, 4).unwrap();
        log.flush().unwrap();
        assert!(log.segments().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
