//! Incremental refresh: warm-start fine-tuning on freshly sealed
//! slots, holdout validation, and atomic hot-swap into the serving
//! registry — with rollback when the candidate regresses.
//!
//! ## Protocol
//!
//! Checkpoint generations live under `dir` as
//! `{stem}.g{G}.shard{k}.ckpt`; the **manifest** (`{stem}.manifest`,
//! written by atomic tmp+rename) names the committed generation `G`.
//! A refresh:
//!
//! 1. builds a candidate from the factory and warm-starts it from the
//!    committed generation's checkpoints;
//! 2. scores the candidate on the holdout slots (`prev_loss` — the
//!    serving model's loss, since parameters are identical);
//! 3. fine-tunes on the *fresh* train slots only (slots not consumed
//!    by an earlier refresh) under the divergence guard, with
//!    resumable training-state checkpoints;
//! 4. re-scores the holdout (`cand_loss`); if the candidate regressed
//!    past the configured tolerance the refresh **rolls back**: no
//!    files change, the registry keeps serving, and the offending
//!    slots are quarantined (not retried);
//! 5. otherwise saves generation `G+1`, commits the manifest (the
//!    crash-recovery point — the `ingest.refresh.swap` failpoint sits
//!    just before it), swaps the full shard set into the registry in
//!    one generation bump, and deletes generation `G`'s files.
//!
//! A crash anywhere before the manifest commit leaves the manifest
//! naming `G` and the registry serving `G`: uncommitted `G+1` files
//! are simply overwritten by the next attempt. Determinism: building
//! the factory model with the same seed, loading the same checkpoint
//! generation, and fine-tuning on the same samples consumes the model
//! RNG exactly like one offline `try_fit`, so a refreshed server
//! answers bit-identically to an offline model trained the same way.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use gcwc::FineTunePlan;
use gcwc::{GcwcModel, ShardedModel, TrainSample};
use gcwc_serve::{AnyModel, IngestStats, ModelRegistry};

use crate::window::SealedSlot;
use crate::IngestError;

const MANIFEST_MAGIC: &str = "gcwc-ingest-manifest v1";

/// Builds an untrained candidate sharded model (same partition set,
/// config, and seed every call — warm-start bit-identity depends on
/// it).
pub type ShardedFactory = Box<dyn Fn() -> ShardedModel<GcwcModel> + Send>;

/// Refresh policy knobs.
#[derive(Clone, Debug)]
pub struct RefreshConfig {
    /// Warm-start fine-tune plan (epochs + learning-rate scale).
    pub plan: FineTunePlan,
    /// Training-state checkpoint cadence during the fine-tune pass.
    pub every_epochs: usize,
    /// Newest sealed slots held out for validation (never trained on).
    pub holdout: usize,
    /// Minimum *fresh* train slots before a refresh is attempted.
    pub min_fresh_slots: usize,
    /// Relative holdout-loss regression tolerated before rollback:
    /// the swap happens only if
    /// `cand_loss <= prev_loss * (1 + max_regression)`.
    pub max_regression: f64,
    /// Directory holding checkpoints and the manifest.
    pub dir: PathBuf,
    /// File-name stem for this deployment's artifacts.
    pub stem: String,
}

impl RefreshConfig {
    /// Conservative defaults under `dir`: 2-epoch half-LR fine-tune,
    /// 2-slot holdout, refresh every 4 fresh slots, 10% regression
    /// tolerance.
    pub fn new(dir: PathBuf) -> Self {
        Self {
            plan: FineTunePlan::default(),
            every_epochs: 1,
            holdout: 2,
            min_fresh_slots: 4,
            max_regression: 0.10,
            dir,
            stem: "live".to_owned(),
        }
    }
}

/// What one [`RefreshDriver::refresh`] call did.
#[derive(Debug)]
pub enum RefreshOutcome {
    /// Not enough fresh sealed slots yet; nothing changed.
    NotReady {
        /// Fresh train slots available.
        fresh_slots: usize,
        /// Fresh train slots required.
        needed: usize,
    },
    /// The candidate validated and was hot-swapped into the registry.
    Applied {
        /// Registry generation now serving.
        registry_generation: u64,
        /// Committed checkpoint generation `G`.
        checkpoint_generation: u64,
        /// Holdout loss before fine-tuning (the previous model's).
        prev_loss: f64,
        /// Holdout loss after fine-tuning (the new model's).
        cand_loss: f64,
        /// Fresh slots the candidate was fine-tuned on.
        trained_slots: usize,
    },
    /// The candidate regressed past tolerance; the previous generation
    /// keeps serving and the offending slots are quarantined.
    RolledBack {
        /// Holdout loss of the serving model.
        prev_loss: f64,
        /// Holdout loss of the rejected candidate.
        cand_loss: f64,
    },
}

/// Drives incremental refreshes against one registry; see the module
/// docs.
pub struct RefreshDriver {
    cfg: RefreshConfig,
    factory: ShardedFactory,
    registry: Arc<ModelRegistry>,
    stats: Option<Arc<IngestStats>>,
    /// Committed checkpoint generation (0 = nothing committed yet).
    generation: u64,
    /// Slots below this index were already consumed by a refresh
    /// attempt (applied or rolled back) and are never retrained.
    trained_upto: u64,
}

impl RefreshDriver {
    /// A driver over `registry`, resuming from the manifest in
    /// `cfg.dir` when one exists (the crash-recovery path).
    pub fn new(
        cfg: RefreshConfig,
        factory: ShardedFactory,
        registry: Arc<ModelRegistry>,
    ) -> Result<Self, IngestError> {
        fs::create_dir_all(&cfg.dir)?;
        let generation = read_manifest(&cfg)?.unwrap_or(0);
        Ok(Self { cfg, factory, registry, stats: None, generation, trained_upto: 0 })
    }

    /// Mirrors refresh counters into the serving engine's stats.
    pub fn with_stats(mut self, stats: Arc<IngestStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Committed checkpoint generation (0 before the first install).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Slots below this index were already consumed by a refresh.
    pub fn trained_upto(&self) -> u64 {
        self.trained_upto
    }

    /// Bootstraps the loop with an offline-trained model: saves it as
    /// generation 1, commits the manifest, and swaps it into the
    /// registry. Returns the registry generation.
    pub fn install_initial(&mut self, model: ShardedModel<GcwcModel>) -> Result<u64, IngestError> {
        assert_eq!(self.generation, 0, "install_initial on an already-committed driver");
        model.save_shards(&self.cfg.dir, &self.stem_for(1))?;
        self.commit_manifest(1)?;
        self.generation = 1;
        Ok(self.install(model))
    }

    /// Rebuilds the committed generation from its checkpoints and
    /// swaps it into the registry — the restart path that puts a fresh
    /// process back on the last committed model.
    pub fn reinstall_current(&mut self) -> Result<u64, IngestError> {
        assert!(self.generation > 0, "no committed generation to reinstall");
        let mut model = (self.factory)();
        model.load_shards(&self.cfg.dir, &self.stem_for(self.generation))?;
        Ok(self.install(model))
    }

    /// Attempts one incremental refresh over the sealed slots
    /// (oldest-first, as produced by the window aggregator). See the
    /// module docs for the full protocol.
    pub fn refresh(&mut self, sealed: &[SealedSlot]) -> Result<RefreshOutcome, IngestError> {
        let split = sealed.len().saturating_sub(self.cfg.holdout);
        let (train, holdout) = sealed.split_at(split);
        let fresh: Vec<&SealedSlot> =
            train.iter().filter(|s| s.slot >= self.trained_upto).collect();
        if fresh.len() < self.cfg.min_fresh_slots.max(1) || holdout.is_empty() {
            return Ok(RefreshOutcome::NotReady {
                fresh_slots: fresh.len(),
                needed: self.cfg.min_fresh_slots.max(1),
            });
        }

        let mut candidate = (self.factory)();
        if self.generation > 0 {
            candidate.load_shards(&self.cfg.dir, &self.stem_for(self.generation))?;
        }
        let holdout_samples: Vec<TrainSample> =
            holdout.iter().enumerate().map(|(i, s)| s.to_sample(i)).collect();
        let prev_loss = holdout_loss(&candidate, &holdout_samples);

        let fresh_samples: Vec<TrainSample> =
            fresh.iter().enumerate().map(|(i, s)| s.to_sample(i)).collect();
        candidate.fine_tune_shards_resumable(
            &fresh_samples,
            &self.cfg.dir,
            &format!("{}.finetune", self.cfg.stem),
            self.cfg.every_epochs.max(1),
            false,
            &self.cfg.plan,
        )?;
        let cand_loss = holdout_loss(&candidate, &holdout_samples);

        // Consumed either way: a rolled-back batch is quarantined, not
        // retried forever against the same regression.
        self.trained_upto = fresh.iter().map(|s| s.slot + 1).max().unwrap();

        if self.generation > 0 && cand_loss > prev_loss * (1.0 + self.cfg.max_regression) {
            if let Some(stats) = &self.stats {
                stats.refresh_rolled_back();
            }
            return Ok(RefreshOutcome::RolledBack { prev_loss, cand_loss });
        }

        let next = self.generation + 1;
        candidate.save_shards(&self.cfg.dir, &self.stem_for(next))?;
        // Failpoint: dying here (after the new checkpoints, before the
        // manifest commit) must leave the previous generation both
        // committed on disk and serving in the registry.
        if gcwc_failpoint::triggered(crate::failsite::REFRESH_SWAP) {
            return Err(IngestError::Injected(crate::failsite::REFRESH_SWAP));
        }
        self.commit_manifest(next)?;
        let old = self.generation;
        self.generation = next;
        let num_shards = candidate.num_shards();
        let registry_generation = self.install(candidate);
        if old > 0 {
            for k in 0..num_shards {
                let _ = fs::remove_file(
                    self.cfg.dir.join(format!("{}.shard{k}.ckpt", self.stem_for(old))),
                );
            }
        }
        if let Some(stats) = &self.stats {
            stats.refresh_applied();
        }
        Ok(RefreshOutcome::Applied {
            registry_generation,
            checkpoint_generation: next,
            prev_loss,
            cand_loss,
            trained_slots: fresh_samples.len(),
        })
    }

    fn install(&self, model: ShardedModel<GcwcModel>) -> u64 {
        let (_, shards) = model.into_shards();
        self.registry.install_set(shards.into_iter().map(AnyModel::Gcwc).collect())
    }

    fn stem_for(&self, generation: u64) -> String {
        format!("{}.g{generation}", self.cfg.stem)
    }

    fn commit_manifest(&self, generation: u64) -> Result<(), IngestError> {
        let path = self.cfg.dir.join(format!("{}.manifest", self.cfg.stem));
        let tmp = path.with_extension("manifest.tmp");
        fs::write(&tmp, format!("{MANIFEST_MAGIC}\ngeneration {generation}\n"))?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }
}

fn read_manifest(cfg: &RefreshConfig) -> Result<Option<u64>, IngestError> {
    let path = cfg.dir.join(format!("{}.manifest", cfg.stem));
    // A crashed commit leaves at most a `.tmp` sibling; the committed
    // manifest (if any) is intact. Discard the leftover.
    let _ = fs::remove_file(path.with_extension("manifest.tmp"));
    if !path.exists() {
        return Ok(None);
    }
    let corrupt =
        |reason: &str| IngestError::Corrupt { path: path.clone(), reason: reason.to_owned() };
    let text = fs::read_to_string(&path)?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(corrupt("bad magic line"));
    }
    let generation: u64 = lines
        .next()
        .and_then(|l| l.strip_prefix("generation "))
        .and_then(|g| g.parse().ok())
        .ok_or_else(|| corrupt("bad generation line"))?;
    Ok(Some(generation))
}

/// Mean masked KL divergence of the model's completions against the
/// holdout labels — the deterministic validation score of a refresh.
/// Rows without label mask are skipped; returns 0 when nothing is
/// covered.
pub fn holdout_loss(model: &ShardedModel<GcwcModel>, samples: &[TrainSample]) -> f64 {
    const EPS: f64 = 1e-6;
    let mut total = 0.0;
    let mut rows = 0usize;
    for sample in samples {
        let pred = model.predict_global(sample);
        for i in 0..pred.rows() {
            if sample.label_mask[i] <= 0.0 {
                continue;
            }
            let (p, q) = (sample.label.row(i), pred.row(i));
            total +=
                p.iter().zip(q).map(|(pi, qi)| pi * ((pi + EPS) / (qi + EPS)).ln()).sum::<f64>();
            rows += 1;
        }
    }
    if rows == 0 {
        0.0
    } else {
        total / rows as f64
    }
}
