//! Chaos tests: fault injection through `gcwc-failpoint` against the
//! ingestion pipeline. Only compiled with `--features failpoints`.
//!
//! Covered invariants: an injected append failure refuses the record
//! without touching buffered or published state (retry succeeds, no
//! torn segment); an injected seal failure leaves the slot open and a
//! retry seals it bit-identically; and a crash injected mid-refresh —
//! after the candidate checkpoints, before the manifest commit —
//! leaves the manifest on the previous generation, the registry
//! serving the previous snapshot bit-identically, and a post-restart
//! driver able to recover and re-apply.
//!
//! The failpoint registry is process-global, so every test serialises
//! on [`chaos_lock`] and disarms its sites before releasing it.

#![cfg(feature = "failpoints")]

use gcwc::{GcwcModel, ModelConfig, ShardedModel};
use gcwc_ingest::{
    failsite, Aggregator, IngestError, RecordLog, RefreshConfig, RefreshDriver, RefreshOutcome,
    SpeedRecord, WindowConfig,
};
use gcwc_serve::{AnyModel, Engine, EngineConfig, ModelRegistry};
use gcwc_traffic::{generators, HistogramSpec};
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn disarm() {
    gcwc_failpoint::remove(failsite::LOG_APPEND);
    gcwc_failpoint::remove(failsite::SLOT_SEAL);
    gcwc_failpoint::remove(failsite::REFRESH_SWAP);
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcwc-ingest-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rec(edge: u32, t: u64, v: f64) -> SpeedRecord {
    SpeedRecord { edge, timestamp: t, speed: v }
}

fn window_cfg(num_edges: usize) -> WindowConfig {
    WindowConfig {
        num_edges,
        spec: HistogramSpec::hist4(),
        slot_secs: 100,
        slots_per_day: 8,
        grace_secs: 100,
        min_records: 2,
        retain_slots: 64,
    }
}

#[test]
fn log_append_fault_refuses_record_and_retry_succeeds() {
    let _guard = chaos_lock();
    let dir = tmpdir("append-err");
    let mut log = RecordLog::open(&dir, 2).unwrap();
    log.append(rec(0, 1, 5.0)).unwrap();

    gcwc_failpoint::configure(failsite::LOG_APPEND, "1*err->off").unwrap();
    assert!(matches!(log.append(rec(1, 2, 6.0)), Err(IngestError::Io(_))));
    // Nothing changed: the refused record can be retried verbatim and
    // the segment publishes exactly as if the fault never happened.
    assert_eq!(log.pending(), 1);
    assert!(log.append(rec(1, 2, 6.0)).unwrap());
    assert_eq!(log.persisted(), 2);
    assert_eq!(log.replay().unwrap().len(), 2);

    disarm();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn log_append_panic_never_tears_a_segment() {
    let _guard = chaos_lock();
    let dir = tmpdir("append-panic");
    let mut log = RecordLog::open(&dir, 2).unwrap();
    log.append(rec(0, 1, 5.0)).unwrap();

    gcwc_failpoint::configure(failsite::LOG_APPEND, "1*panic->off").unwrap();
    let panicked = catch_unwind(AssertUnwindSafe(|| log.append(rec(1, 2, 6.0)))).is_err();
    assert!(panicked, "panic schedule must fire");
    drop(log);

    // "Restart": reopen validates every published segment — the crash
    // mid-append left no torn file (the in-memory buffer is lost, as
    // documented: durability unit is the segment).
    let log = RecordLog::open(&dir, 2).unwrap();
    assert_eq!(log.persisted(), 0);
    disarm();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slot_seal_fault_leaves_slot_open_and_retry_seals_identically() {
    let _guard = chaos_lock();
    let feed = |agg: &mut Aggregator| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for slot in 0..3u64 {
            for edge in 0..4u32 {
                for _ in 0..3 {
                    agg.offer(rec(edge, slot * 100 + rng.random_range(0u64..100), 12.0));
                }
            }
        }
    };
    let mut control = Aggregator::new(window_cfg(4));
    feed(&mut control);
    let mut reference = Vec::new();
    control.seal_all(&mut reference).unwrap();

    let mut agg = Aggregator::new(window_cfg(4));
    feed(&mut agg);
    gcwc_failpoint::configure(failsite::SLOT_SEAL, "1*err->off").unwrap();
    let mut out = Vec::new();
    assert!(matches!(agg.seal_all(&mut out), Err(IngestError::Injected(_))));
    assert!(out.is_empty(), "failed seal must not emit a slot");
    assert_eq!(agg.open_slots(), 3, "failed seal must leave every slot open");

    // Retry seals bit-identically to the undisturbed control run.
    agg.seal_all(&mut out).unwrap();
    assert_eq!(out.len(), reference.len());
    for (a, b) in out.iter().zip(&reference) {
        assert_eq!(a.slot, b.slot);
        for (x, y) in a.weights.matrix().as_slice().iter().zip(b.weights.matrix().as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    disarm();
}

#[test]
fn mid_refresh_crash_leaves_server_on_previous_generation() {
    let _guard = chaos_lock();
    let hw = generators::highway_tollgate(3);
    let graph = hw.graph.clone();
    let n = graph.num_nodes();
    let cfg = ModelConfig::hw_hist().with_epochs(1);
    let mk = {
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || ShardedModel::gcwc(&graph, 4, cfg.clone(), 17, 1)
    };
    let registry = Arc::new(ModelRegistry::new(Box::new({
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || AnyModel::Gcwc(GcwcModel::new(&graph, 4, cfg.clone(), 17))
    })));
    let engine = Engine::new(
        Arc::clone(&registry),
        EngineConfig { workers: 0, cache_capacity: 0, ..Default::default() },
    );

    // Seal two batches of slots.
    let mut agg = Aggregator::new(window_cfg(n));
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut sealed = Vec::new();
    for slot in 0..16u64 {
        for edge in 0..n as u32 {
            for _ in 0..4 {
                agg.offer(rec(
                    edge,
                    slot * 100 + rng.random_range(0u64..100),
                    rng.random_range(0.5f64..30.0),
                ));
            }
        }
    }
    agg.seal_all(&mut sealed).unwrap();
    let (batch1, batch2) = sealed.split_at(8);

    let dir = tmpdir("refresh-crash");
    let mut rcfg = RefreshConfig::new(dir.clone());
    rcfg.holdout = 2;
    rcfg.min_fresh_slots = 4;
    // This test exercises crash semantics, not validation: a huge
    // tolerance keeps the retry from rolling back on loss noise.
    rcfg.max_regression = 100.0;
    let mut driver =
        RefreshDriver::new(rcfg.clone(), Box::new(mk.clone()), Arc::clone(&registry)).unwrap();
    match driver.refresh(batch1).unwrap() {
        RefreshOutcome::Applied { checkpoint_generation: 1, .. } => {}
        other => panic!("bootstrap refresh not applied: {other:?}"),
    }
    let gen_before = registry.generation();

    // Reference completion served by generation 1.
    let probe = batch1[0].weights.matrix().clone();
    let serve = |engine: &Engine| {
        let mut client = engine.client();
        let mut buf = client.input_buffer();
        buf.copy_from(&probe);
        client.send(buf, 1, 0).unwrap();
        engine.process_queued();
        let c = client.recv().unwrap();
        (c.output.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(), c.generation)
    };
    let (bits_before, g_before) = serve(&engine);
    assert_eq!(g_before, gen_before);

    // Crash mid-refresh: the panic fires after the g2 checkpoints are
    // written but before the manifest commit and registry install.
    gcwc_failpoint::configure(failsite::REFRESH_SWAP, "1*panic->off").unwrap();
    let crashed = catch_unwind(AssertUnwindSafe(|| driver.refresh(batch2))).is_err();
    assert!(crashed, "refresh swap panic must fire");
    drop(driver);

    // No torn state: the registry still serves generation 1
    // bit-identically, and a post-restart driver sees the manifest
    // naming generation 1.
    assert_eq!(registry.generation(), gen_before);
    let (bits_after, g_after) = serve(&engine);
    assert_eq!(g_after, gen_before);
    assert_eq!(bits_before, bits_after, "crash must not disturb the served model");

    let mut revived = RefreshDriver::new(rcfg, Box::new(mk), Arc::clone(&registry)).unwrap();
    assert_eq!(revived.generation(), 1, "manifest must still name the committed generation");
    revived.reinstall_current().unwrap();

    // The retry consumes the same slots and commits generation 2.
    match revived.refresh(batch2).unwrap() {
        RefreshOutcome::Applied { checkpoint_generation: 2, .. } => {}
        other => panic!("post-crash retry not applied: {other:?}"),
    }
    assert!(registry.generation() > gen_before);
    assert!(dir.join("live.manifest").exists());
    disarm();
    let _ = std::fs::remove_dir_all(&dir);
}
