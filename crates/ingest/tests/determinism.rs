//! Determinism properties of the ingestion pipeline.
//!
//! The load-bearing invariant: sealed slot `W` matrices are a pure
//! function of the *set* of records accepted, never of arrival order
//! or batching — and a refresh consumes the model RNG exactly like an
//! offline fit, so the refreshed checkpoints are byte-identical to
//! offline training on the same data.

use gcwc::{GcwcModel, ModelConfig, ShardedModel};
use gcwc_ingest::{
    Aggregator, RefreshConfig, RefreshDriver, SealedSlot, SpeedRecord, WindowConfig,
};
use gcwc_serve::{AnyModel, ModelRegistry};
use gcwc_traffic::{generators, HistogramSpec};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;

fn window_cfg(num_edges: usize) -> WindowConfig {
    WindowConfig {
        num_edges,
        spec: HistogramSpec::hist4(),
        slot_secs: 100,
        slots_per_day: 8,
        grace_secs: 100,
        min_records: 2,
        retain_slots: 64,
    }
}

/// A synthetic record stream: every edge gets a few records per slot,
/// timestamps jittered inside the slot.
fn gen_records(seed: u64, num_edges: usize, slots: u64, per_edge: usize) -> Vec<SpeedRecord> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for slot in 0..slots {
        for edge in 0..num_edges as u32 {
            for _ in 0..per_edge {
                out.push(SpeedRecord {
                    edge,
                    timestamp: slot * 100 + rng.random_range(0u64..100),
                    speed: rng.random_range(0.5f64..30.0),
                });
            }
        }
    }
    out
}

/// Feeds `records` (optionally in chunks, sealing between chunks) and
/// returns every sealed slot.
fn run_stream(cfg: WindowConfig, records: &[SpeedRecord], chunk: usize) -> Vec<SealedSlot> {
    let mut agg = Aggregator::new(cfg);
    let mut out = Vec::new();
    for batch in records.chunks(chunk.max(1)) {
        for &r in batch {
            agg.offer(r);
        }
        agg.seal_ready(&mut out).unwrap();
    }
    agg.seal_all(&mut out).unwrap();
    out
}

fn assert_bit_identical(a: &[SealedSlot], b: &[SealedSlot]) {
    assert_eq!(a.len(), b.len(), "sealed slot counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.slot, y.slot);
        assert_eq!(x.records, y.records);
        assert_eq!(x.context.row_flags, y.context.row_flags);
        let (mx, my) = (x.weights.matrix(), y.weights.matrix());
        assert_eq!(mx.shape(), my.shape());
        for (va, vb) in mx.as_slice().iter().zip(my.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits(), "slot {} differs", x.slot);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any permutation of the same record stream, fed whole and then
    /// sealed, yields `to_bits`-identical slot matrices.
    #[test]
    fn permutation_invariant_sealing(seed in 0u64..500, shuffle_seed in 0u64..500) {
        let records = gen_records(seed, 5, 4, 4);
        let baseline = run_stream(window_cfg(5), &records, records.len());
        prop_assert!(!baseline.is_empty());
        // Fisher–Yates with an independent seed.
        let mut shuffled = records.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0usize..i + 1);
            shuffled.swap(i, j);
        }
        let permuted = run_stream(window_cfg(5), &shuffled, shuffled.len());
        assert_bit_identical(&baseline, &permuted);
    }

    /// Any chunking of an in-order stream — sealing eagerly between
    /// chunks — yields the same sealed matrices as one single-shot
    /// feed-then-seal.
    #[test]
    fn chunking_invariant_sealing(seed in 0u64..500, chunk in 1usize..40) {
        let records = gen_records(seed, 5, 4, 4);
        let baseline = run_stream(window_cfg(5), &records, records.len());
        let chunked = run_stream(window_cfg(5), &records, chunk);
        assert_bit_identical(&baseline, &chunked);
    }
}

fn tmpdir(tag: &str, seed: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gcwc-ingest-det-{tag}-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A refresh fine-tunes with exactly the RNG stream of an offline
    /// fit: the committed checkpoints are byte-identical to training a
    /// fresh model offline on the same sealed slots.
    #[test]
    fn refresh_checkpoints_match_offline_training(seed in 0u64..50) {
        let hw = generators::highway_tollgate(seed);
        let n = hw.graph.num_nodes();
        let sealed = run_stream(window_cfg(n), &gen_records(seed, n, 8, 4), 50);
        prop_assert!(sealed.len() >= 6);

        let cfg = ModelConfig::hw_hist().with_epochs(1);
        let graph = hw.graph.clone();
        let mk = {
            let (graph, cfg) = (graph.clone(), cfg.clone());
            move || ShardedModel::gcwc(&graph, 4, cfg.clone(), 42 + seed, 1)
        };
        let registry = Arc::new(ModelRegistry::new(Box::new({
            let (graph, cfg) = (graph.clone(), cfg.clone());
            move || AnyModel::Gcwc(GcwcModel::new(&graph, 4, cfg.clone(), 42 + seed))
        })));

        let dir = tmpdir("refresh", seed);
        let mut rcfg = RefreshConfig::new(dir.clone());
        rcfg.holdout = 2;
        rcfg.min_fresh_slots = 4;
        let plan = rcfg.plan;
        let mut driver = RefreshDriver::new(rcfg, Box::new(mk.clone()), registry).unwrap();
        let outcome = driver.refresh(&sealed).unwrap();
        prop_assert!(
            matches!(outcome, gcwc_ingest::RefreshOutcome::Applied { .. }),
            "expected Applied, got {outcome:?}"
        );

        // Offline replication: same factory, same fresh samples, same
        // plan — trained in a different directory.
        let split = sealed.len() - 2;
        let samples: Vec<_> =
            sealed[..split].iter().enumerate().map(|(i, s)| s.to_sample(i)).collect();
        let offline_dir = tmpdir("offline", seed);
        std::fs::create_dir_all(&offline_dir).unwrap();
        let mut offline: ShardedModel<GcwcModel> = mk();
        offline
            .fine_tune_shards_resumable(&samples, &offline_dir, "off", 1, false, &plan)
            .unwrap();
        offline.save_shards(&offline_dir, "off.g1").unwrap();

        let committed = std::fs::read(dir.join("live.g1.shard0.ckpt")).unwrap();
        let reference = std::fs::read(offline_dir.join("off.g1.shard0.ckpt")).unwrap();
        prop_assert_eq!(committed, reference, "refresh checkpoint diverged from offline fit");

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&offline_dir);
    }
}
