//! Per-tenant ingest lanes: two tenants streaming through one
//! [`TenantLanes`] table refresh independently, and each lane's
//! refreshed model is bit-identical to a single-tenant process fed the
//! same stream — interleaving with another tenant changes nothing.

use gcwc::{GcwcModel, ModelConfig, ShardedModel};
use gcwc_ingest::{
    Aggregator, IngestError, IngestLane, Pipeline, RecordLog, RefreshConfig, RefreshDriver,
    RefreshOutcome, SpeedRecord, TenantLanes, WindowConfig,
};
use gcwc_serve::{AnyModel, Engine, EngineConfig, ModelRegistry, TenantId};
use gcwc_traffic::{generators, HistogramSpec};
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const M: usize = 4;
const SLOT_SECS: u64 = 100;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcwc-ingest-tenant-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn window_cfg(num_edges: usize) -> WindowConfig {
    WindowConfig {
        num_edges,
        spec: HistogramSpec::hist4(),
        slot_secs: SLOT_SECS,
        slots_per_day: 8,
        grace_secs: SLOT_SECS,
        min_records: 2,
        retain_slots: 64,
    }
}

/// One tenant's lane over its own graph, registry, log, and driver.
fn make_lane(
    graph: &gcwc_graph::EdgeGraph,
    dir: &Path,
    seed: u64,
) -> (IngestLane, Arc<ModelRegistry>) {
    let cfg = ModelConfig::hw_hist().with_epochs(1);
    let registry = Arc::new(ModelRegistry::new(Box::new({
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || AnyModel::Gcwc(GcwcModel::new(&graph, M, cfg.clone(), seed))
    })));
    let mk = {
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || ShardedModel::gcwc(&graph, M, cfg.clone(), seed, 1)
    };
    let pipeline = Pipeline::new(
        RecordLog::open(&dir.join("log"), 64).unwrap(),
        Aggregator::new(window_cfg(graph.num_nodes())),
    );
    let mut rcfg = RefreshConfig::new(dir.join("ckpt"));
    rcfg.holdout = 2;
    rcfg.min_fresh_slots = 4;
    let driver = RefreshDriver::new(rcfg, Box::new(mk), Arc::clone(&registry)).unwrap();
    (IngestLane::new(pipeline, driver), registry)
}

/// Deterministic synthetic probe records for one tenant's slot range.
fn records(num_edges: usize, slots: std::ops::Range<u64>, seed: u64) -> Vec<SpeedRecord> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for slot in slots {
        for edge in 0..num_edges as u32 {
            for _ in 0..4 {
                out.push(SpeedRecord {
                    edge,
                    timestamp: slot * SLOT_SECS + rng.random_range(0u64..SLOT_SECS),
                    speed: rng.random_range(0.5f64..30.0),
                });
            }
        }
    }
    out
}

fn complete_bits(registry: &Arc<ModelRegistry>, input: &gcwc_linalg::Matrix) -> Vec<u64> {
    let engine = Engine::new(
        Arc::clone(registry),
        EngineConfig { workers: 0, cache_capacity: 0, ..Default::default() },
    );
    let mut client = engine.client();
    let mut buf = client.input_buffer();
    buf.copy_from(input);
    client.send(buf, 1, 0).unwrap();
    engine.process_queued();
    let c = client.recv().unwrap();
    let bits = c.output.as_slice().iter().map(|v| v.to_bits()).collect();
    client.recycle(c);
    engine.shutdown();
    bits
}

#[test]
fn interleaved_tenants_refresh_independently_and_bit_identically() {
    let hw_a = generators::highway_tollgate(1);
    let hw_b = generators::city_network_sized(2, 48);
    let (na, nb) = (hw_a.graph.num_nodes(), hw_b.graph.num_nodes());
    let (a, b) = (TenantId(1), TenantId(2));

    let dir_a = tmpdir("a");
    let dir_b = tmpdir("b");
    let mut lanes = TenantLanes::new();
    let (lane_a, reg_a) = make_lane(&hw_a.graph, &dir_a, 42);
    let (lane_b, reg_b) = make_lane(&hw_b.graph, &dir_b, 43);
    lanes.register(a, lane_a);
    lanes.register(b, lane_b);
    assert_eq!(lanes.ids(), vec![a, b]);

    // A record for an unregistered tenant is refused and touches no
    // lane.
    match lanes.ingest(TenantId(9), SpeedRecord { edge: 0, timestamp: 0, speed: 1.0 }) {
        Err(IngestError::UnknownTenant(9)) => {}
        other => panic!("unregistered tenant must be refused, got {other:?}"),
    }

    // Interleave the two tenants' streams record by record — routing,
    // not arrival order, decides which lane a record lands in.
    let recs_a = records(na, 0..8, 7);
    let recs_b = records(nb, 0..8, 8);
    let mut ia = recs_a.iter();
    let mut ib = recs_b.iter();
    loop {
        match (ia.next(), ib.next()) {
            (None, None) => break,
            (ra, rb) => {
                if let Some(&r) = ra {
                    lanes.ingest(a, r).unwrap();
                }
                if let Some(&r) = rb {
                    lanes.ingest(b, r).unwrap();
                }
            }
        }
    }
    for id in [a, b] {
        lanes.lane_mut(id).unwrap().pipeline_mut().seal_all().unwrap();
    }
    let outcomes = lanes.poll_refresh_all();
    assert_eq!(outcomes.len(), 2);
    for (id, outcome) in outcomes {
        match outcome {
            Ok(RefreshOutcome::Applied { checkpoint_generation, .. }) => {
                assert_eq!(checkpoint_generation, 1, "tenant {id}");
            }
            other => panic!("tenant {id}: first refresh must apply, got {other:?}"),
        }
    }
    // Each lane committed exactly its own generation.
    assert_eq!(lanes.lane(a).unwrap().driver().generation(), 1);
    assert_eq!(lanes.lane(b).unwrap().driver().generation(), 1);
    // Each lane logged exactly its own records.
    lanes.lane_mut(a).unwrap().pipeline_mut().flush().unwrap();
    lanes.lane_mut(b).unwrap().pipeline_mut().flush().unwrap();
    assert_eq!(lanes.lane(a).unwrap().pipeline().log().replay().unwrap().len(), recs_a.len());
    assert_eq!(lanes.lane(b).unwrap().pipeline().log().replay().unwrap().len(), recs_b.len());

    // A second poll with no new traffic is NotReady for both lanes and
    // changes no generation.
    for (id, outcome) in lanes.poll_refresh_all() {
        match outcome {
            Ok(RefreshOutcome::NotReady { .. }) => {}
            other => panic!("tenant {id}: idle poll must be NotReady, got {other:?}"),
        }
    }
    assert_eq!(lanes.lane(a).unwrap().driver().generation(), 1);
    assert_eq!(lanes.lane(b).unwrap().driver().generation(), 1);

    // Bit-identity: a single-tenant process fed exactly tenant A's
    // stream produces the same refreshed model — B's interleaved
    // traffic changed nothing in A's lane.
    let dir_solo = tmpdir("solo");
    let (mut solo, reg_solo) = make_lane(&hw_a.graph, &dir_solo, 42);
    for &r in &recs_a {
        solo.ingest(r).unwrap();
    }
    match solo.finish_refresh().unwrap() {
        RefreshOutcome::Applied { checkpoint_generation, .. } => {
            assert_eq!(checkpoint_generation, 1)
        }
        other => panic!("solo refresh must apply, got {other:?}"),
    }
    let probe = gcwc_linalg::Matrix::zeros(na, M);
    assert_eq!(
        complete_bits(&reg_a, &probe),
        complete_bits(&reg_solo, &probe),
        "tenant A's refreshed model diverged from the single-tenant run"
    );

    // The two tenants' models are genuinely distinct artifacts (B's
    // graph differs), not aliases of shared state.
    assert_eq!(reg_b.generation(), reg_a.generation());
    assert_ne!(na, nb, "fixture tenants must have different graphs");

    for dir in [dir_a, dir_b, dir_solo] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
