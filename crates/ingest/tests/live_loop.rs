//! End-to-end live-loop test: stream → log → seal → warm-start
//! fine-tune → atomic hot-swap — and the served completions after the
//! swap are bit-identical to a model trained offline on the same
//! data, with no old-generation cache entry ever served.

use gcwc::{GcwcModel, ModelConfig, ShardedModel};
use gcwc_ingest::{
    Aggregator, Intake, Pipeline, RecordLog, RefreshConfig, RefreshDriver, RefreshOutcome,
    SpeedRecord, WindowConfig,
};
use gcwc_serve::{AnyModel, Engine, EngineConfig, IngestStats, ModelRegistry};
use gcwc_traffic::{generators, HistogramSpec};
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;

const M: usize = 4;
const SLOT_SECS: u64 = 100;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcwc-ingest-live-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn window_cfg(num_edges: usize) -> WindowConfig {
    WindowConfig {
        num_edges,
        spec: HistogramSpec::hist4(),
        slot_secs: SLOT_SECS,
        slots_per_day: 8,
        grace_secs: SLOT_SECS,
        min_records: 2,
        retain_slots: 64,
    }
}

/// Streams `slots` worth of synthetic probe records through the
/// intake queue into the pipeline, sealing as the watermark advances.
fn stream_slots(pipe: &mut Pipeline, num_edges: usize, slots: std::ops::Range<u64>, seed: u64) {
    let intake = Intake::new(256);
    let handle = intake.handle();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for slot in slots {
        for edge in 0..num_edges as u32 {
            for _ in 0..4 {
                let rec = SpeedRecord {
                    edge,
                    timestamp: slot * SLOT_SECS + rng.random_range(0u64..SLOT_SECS),
                    speed: rng.random_range(0.5f64..30.0),
                };
                handle.send(rec).unwrap();
            }
        }
        intake.drain(|r| {
            pipe.ingest(r).unwrap();
        });
        pipe.seal_ready().unwrap();
    }
}

fn complete_bits(engine: &Engine, input: &gcwc_linalg::Matrix) -> (Vec<u64>, u64, bool) {
    let mut client = engine.client();
    let mut buf = client.input_buffer();
    buf.copy_from(input);
    client.send(buf, 1, 0).unwrap();
    engine.process_queued();
    let c = client.recv().unwrap();
    let bits = c.output.as_slice().iter().map(|v| v.to_bits()).collect();
    (bits, c.generation, c.cache_hit)
}

#[test]
fn live_loop_streams_refreshes_and_serves_bit_identically() {
    let hw = generators::highway_tollgate(1);
    let graph = hw.graph.clone();
    let n = graph.num_nodes();
    let cfg = ModelConfig::hw_hist().with_epochs(1);
    let seed = 42u64;

    let mk = {
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || ShardedModel::gcwc(&graph, M, cfg.clone(), seed, 1)
    };
    let registry = Arc::new(ModelRegistry::new(Box::new({
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || AnyModel::Gcwc(GcwcModel::new(&graph, M, cfg.clone(), seed))
    })));
    let engine = Engine::new(
        Arc::clone(&registry),
        EngineConfig { workers: 0, cache_capacity: 64, ..Default::default() },
    );
    let stats = Arc::new(IngestStats::new());
    engine.attach_ingest(Arc::clone(&stats));

    let dir = tmpdir("loop");
    let log_dir = dir.join("log");
    let mut pipe =
        Pipeline::new(RecordLog::open(&log_dir, 64).unwrap(), Aggregator::new(window_cfg(n)))
            .with_stats(Arc::clone(&stats));

    let mut rcfg = RefreshConfig::new(dir.join("ckpt"));
    rcfg.holdout = 2;
    rcfg.min_fresh_slots = 4;
    let plan = rcfg.plan;
    let mut driver = RefreshDriver::new(rcfg, Box::new(mk.clone()), Arc::clone(&registry))
        .unwrap()
        .with_stats(Arc::clone(&stats));

    // ---- Phase 1: bootstrap from the first streamed batch. ----
    stream_slots(&mut pipe, n, 0..8, 7);
    pipe.seal_all().unwrap();
    let sealed = pipe.take_sealed();
    assert_eq!(sealed.len(), 8);
    let outcome = driver.refresh(&sealed).unwrap();
    let gen_a = match outcome {
        RefreshOutcome::Applied { registry_generation, checkpoint_generation, .. } => {
            assert_eq!(checkpoint_generation, 1);
            registry_generation
        }
        other => panic!("bootstrap refresh not applied: {other:?}"),
    };

    // Stash generation 1's checkpoint before the next refresh
    // garbage-collects it; the offline replication warm-starts from it
    // exactly like the driver does.
    let off_dir = tmpdir("loop-off");
    std::fs::copy(dir.join("ckpt").join("live.g1.shard0.ckpt"), off_dir.join("g1.shard0.ckpt"))
        .unwrap();

    // Prime the cache on generation A with a fixed request.
    let probe = sealed[0].weights.matrix().clone();
    let (bits_a, g1, hit1) = complete_bits(&engine, &probe);
    let (bits_a2, g2, hit2) = complete_bits(&engine, &probe);
    assert_eq!(g1, gen_a);
    assert_eq!(g2, gen_a);
    assert!(!hit1 && hit2, "second identical request must hit the cache");
    assert_eq!(bits_a, bits_a2);

    // ---- Phase 2: stream more traffic; refresh warm-starts. ----
    // Continue streaming where slot 8 begins. The window already
    // sealed everything below 8, so only fresh slots accumulate.
    stream_slots(&mut pipe, n, 8..16, 8);
    pipe.seal_all().unwrap();
    let fresh = pipe.take_sealed();
    assert_eq!(fresh.iter().map(|s| s.slot).min().unwrap(), 8);
    let outcome = driver.refresh(&fresh).unwrap();
    let gen_b = match outcome {
        RefreshOutcome::Applied { registry_generation, checkpoint_generation, .. } => {
            assert_eq!(checkpoint_generation, 2);
            registry_generation
        }
        other => panic!("incremental refresh not applied: {other:?}"),
    };
    assert!(gen_b > gen_a);

    // Old-generation cache entries are never served: the primed
    // request misses (recomputed on the new set) and carries the new
    // generation.
    let (bits_b, g3, hit3) = complete_bits(&engine, &probe);
    assert_eq!(g3, gen_b, "post-swap completion must come from the new generation");
    assert!(!hit3, "a cache entry from the old generation was served");
    assert_ne!(bits_a, bits_b, "refresh changed parameters; outputs must change");

    // ---- Offline replication: same data, same warm start. ----
    // factory → load committed g1 → one fine-tune on the same fresh
    // samples = the exact RNG path the refresh took.
    let split = fresh.len() - 2;
    let samples: Vec<_> = fresh[..split].iter().enumerate().map(|(i, s)| s.to_sample(i)).collect();
    let mut offline = mk();
    offline.load_shards(&off_dir, "g1").unwrap();
    offline.fine_tune_shards_resumable(&samples, &off_dir, "p2", 1, false, &plan).unwrap();

    let off_registry = Arc::new(ModelRegistry::new(Box::new({
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || AnyModel::Gcwc(GcwcModel::new(&graph, M, cfg.clone(), seed))
    })));
    let (_, shards) = offline.into_shards();
    off_registry.install_set(shards.into_iter().map(AnyModel::Gcwc).collect());
    let off_engine = Engine::new(
        Arc::clone(&off_registry),
        EngineConfig { workers: 0, cache_capacity: 0, ..Default::default() },
    );
    let (bits_off, _, _) = complete_bits(&off_engine, &probe);
    assert_eq!(
        bits_b, bits_off,
        "refreshed serving diverged from offline training on the same data"
    );

    // ---- Stats surfaced through the engine. ----
    let snap = engine.stats();
    assert_eq!(snap.records_ingested, (n as u64) * 16 * 4);
    assert_eq!(snap.slots_sealed, 16);
    assert_eq!(snap.refreshes_applied, 2);
    assert_eq!(snap.refreshes_rolled_back, 0);
    assert_eq!(snap.generation_age, 0, "age resets on a fresh swap");

    // The durable log holds every streamed record.
    pipe.flush().unwrap();
    assert_eq!(pipe.log().replay().unwrap().len(), n * 16 * 4);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&off_dir);
}

#[test]
fn crash_recovery_restores_committed_generation() {
    // A restart (new driver over the same dir) resumes from the
    // manifest and reinstalls the committed checkpoints.
    let hw = generators::highway_tollgate(2);
    let graph = hw.graph.clone();
    let n = graph.num_nodes();
    let cfg = ModelConfig::hw_hist().with_epochs(1);
    let mk = {
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || ShardedModel::gcwc(&graph, M, cfg.clone(), 9, 1)
    };
    let registry = Arc::new(ModelRegistry::new(Box::new({
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || AnyModel::Gcwc(GcwcModel::new(&graph, M, cfg.clone(), 9))
    })));

    let dir = tmpdir("recover");
    let mut agg = Aggregator::new(window_cfg(n));
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for slot in 0..8u64 {
        for edge in 0..n as u32 {
            for _ in 0..4 {
                agg.offer(SpeedRecord {
                    edge,
                    timestamp: slot * SLOT_SECS + rng.random_range(0u64..SLOT_SECS),
                    speed: rng.random_range(0.5f64..30.0),
                });
            }
        }
    }
    let mut sealed = Vec::new();
    agg.seal_all(&mut sealed).unwrap();

    let mut rcfg = RefreshConfig::new(dir.clone());
    rcfg.holdout = 2;
    rcfg.min_fresh_slots = 4;
    let mut driver =
        RefreshDriver::new(rcfg.clone(), Box::new(mk.clone()), Arc::clone(&registry)).unwrap();
    driver.refresh(&sealed).unwrap();
    assert_eq!(driver.generation(), 1);
    let gen_before = registry.generation();
    drop(driver);

    // "Restart": a new driver picks the manifest up and reinstalls.
    let mut revived = RefreshDriver::new(rcfg, Box::new(mk), Arc::clone(&registry)).unwrap();
    assert_eq!(revived.generation(), 1, "manifest must survive the restart");
    let gen_after = revived.reinstall_current().unwrap();
    assert!(gen_after > gen_before);
    let _ = std::fs::remove_dir_all(&dir);
}
