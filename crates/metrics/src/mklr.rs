//! Mean KL-divergence Ratio (Eq. 11).
//!
//! `MKLR = Σ_{i,j} I_ij · KL(w_G ‖ ŵ) / Σ_{i,j} I_ij · KL(w_G ‖ HA)`:
//! the method's total KL divergence from ground truth, normalised by the
//! divergence of the Historical Average reference. Lower is better;
//! values above 1 mean the method is worse than HA.

use crate::kl::{kl_divergence, KL_EPS};

/// Streaming accumulator for MKLR over all test intervals and edges.
#[derive(Clone, Copy, Debug, Default)]
pub struct MklrAccumulator {
    numerator: f64,
    denominator: f64,
    count: usize,
}

impl MklrAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one evaluated (interval, edge) cell: ground truth `w_g`, the
    /// method's estimate `w_hat`, and the HA reference `ha`.
    ///
    /// Call only for cells with `I_ij = 1` (edge covered by ground-truth
    /// data in that interval).
    pub fn add(&mut self, w_g: &[f64], w_hat: &[f64], ha: &[f64]) {
        self.numerator += kl_divergence(w_g, w_hat, KL_EPS);
        self.denominator += kl_divergence(w_g, ha, KL_EPS);
        self.count += 1;
    }

    /// Number of cells accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The MKLR value; `None` until at least one cell with a non-zero HA
    /// divergence is accumulated.
    pub fn value(&self) -> Option<f64> {
        (self.denominator > 0.0).then(|| self.numerator / self.denominator)
    }

    /// Merges another accumulator (for per-fold aggregation).
    pub fn merge(&mut self, other: &MklrAccumulator) {
        self.numerator += other.numerator;
        self.denominator += other.denominator;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_estimate_gives_zero() {
        let mut acc = MklrAccumulator::new();
        let gt = [0.5, 0.3, 0.2];
        acc.add(&gt, &gt, &[1.0 / 3.0; 3]);
        assert!(acc.value().unwrap() < 1e-9);
    }

    #[test]
    fn ha_estimate_gives_one() {
        let mut acc = MklrAccumulator::new();
        let gt = [0.5, 0.3, 0.2];
        let ha = [0.2, 0.4, 0.4];
        acc.add(&gt, &ha, &ha);
        let v = acc.value().unwrap();
        assert!((v - 1.0).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn worse_than_ha_exceeds_one() {
        let mut acc = MklrAccumulator::new();
        let gt = [0.9, 0.1];
        let ha = [0.7, 0.3];
        let bad = [0.1, 0.9];
        acc.add(&gt, &bad, &ha);
        assert!(acc.value().unwrap() > 1.0);
    }

    #[test]
    fn empty_accumulator_has_no_value() {
        assert_eq!(MklrAccumulator::new().value(), None);
    }

    #[test]
    fn merge_combines_sums() {
        let gt = [0.6, 0.4];
        let ha = [0.5, 0.5];
        let est = [0.55, 0.45];
        let mut a = MklrAccumulator::new();
        a.add(&gt, &est, &ha);
        let mut b = MklrAccumulator::new();
        b.add(&gt, &est, &ha);
        let mut merged = MklrAccumulator::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), 2);
        assert!((merged.value().unwrap() - a.value().unwrap()).abs() < 1e-12);
    }
}
