//! Kullback–Leibler divergence between histograms.

/// `KL(p ‖ q) = Σ_j p_j · ln((p_j + ε)/(q_j + ε))`.
///
/// The small `ε` guards the logarithm against empty buckets, exactly as
/// in the paper's Eq. 3/11.
pub fn kl_divergence(p: &[f64], q: &[f64], eps: f64) -> f64 {
    assert_eq!(p.len(), q.len(), "histogram length mismatch");
    p.iter().zip(q).map(|(&pj, &qj)| pj * ((pj + eps) / (qj + eps)).ln()).sum()
}

/// The default ε used throughout the evaluation.
pub const KL_EPS: f64 = 1e-6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_divergence() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p, KL_EPS).abs() < 1e-12);
    }

    #[test]
    fn known_value() {
        // KL between (1, 0) and (0.5, 0.5) ~ ln 2 (up to ε effects).
        let d = kl_divergence(&[1.0, 0.0], &[0.5, 0.5], 1e-12);
        assert!((d - std::f64::consts::LN_2).abs() < 1e-6, "got {d}");
    }

    #[test]
    fn asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let pq = kl_divergence(&p, &q, KL_EPS);
        let qp = kl_divergence(&q, &p, KL_EPS);
        assert!(pq > 0.0 && qp > 0.0);
        assert!((pq - qp).abs() > 1e-3, "KL should be asymmetric");
    }

    #[test]
    fn nonnegative_on_random_histograms() {
        // Gibbs' inequality (holds up to tiny ε slack).
        let p = [0.1, 0.2, 0.3, 0.4];
        let q = [0.4, 0.3, 0.2, 0.1];
        assert!(kl_divergence(&p, &q, KL_EPS) > -1e-9);
    }

    #[test]
    fn eps_prevents_infinity() {
        let d = kl_divergence(&[1.0, 0.0], &[0.0, 1.0], KL_EPS);
        assert!(d.is_finite());
        assert!(d > 5.0, "strong divergence expected, got {d}");
    }
}
