//! Fraction of Likelihood Ratio (Eq. 12).
//!
//! For every evaluated (interval, edge) cell with raw ground-truth speed
//! observations `o_1…o_N`, the method's estimated histogram `ŵ` is
//! compared against the HA reference by log-likelihood:
//! the cell *scores* when `Σ_k ln(P_ŵ(o_k) + ε) > Σ_k ln(P_HA(o_k) + ε)`,
//! i.e. when the estimate explains the observed speeds better than HA.
//! FLR is the fraction of scoring cells. Higher is better; 0.5 is parity
//! with HA.
//!
//! Note: the paper's Eq. 12 prints `LR_ij` as the *quotient* of the two
//! log-likelihood sums and counts `LR_ij > 1`; since both sums are
//! negative, the printed quotient is inverted relative to the text's own
//! reading ("the estimated weight has a higher likelihood"). We
//! implement the stated semantics — count the cells where the estimate's
//! log-likelihood exceeds the reference's — which matches the direction
//! of all reported numbers (good methods ≫ 0.5, LSM ≪ 0.5).

use gcwc_traffic::HistogramSpec;

/// Small constant guarding `ln` against zero-probability buckets.
pub const FLR_EPS: f64 = 1e-6;

/// Streaming accumulator for FLR.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlrAccumulator {
    hits: usize,
    total: usize,
}

impl FlrAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one evaluated cell: raw speed observations, the method's
    /// histogram estimate, and the HA reference histogram.
    ///
    /// Cells without observations are skipped (they carry no evidence).
    pub fn add(&mut self, observations: &[f64], w_hat: &[f64], ha: &[f64], spec: &HistogramSpec) {
        if observations.is_empty() {
            return;
        }
        let ll = |hist: &[f64]| -> f64 {
            observations.iter().map(|&o| (spec.likelihood(hist, o) + FLR_EPS).ln()).sum()
        };
        if ll(w_hat) > ll(ha) {
            self.hits += 1;
        }
        self.total += 1;
    }

    /// Number of cells accumulated.
    pub fn count(&self) -> usize {
        self.total
    }

    /// The FLR value; `None` until at least one cell is accumulated.
    pub fn value(&self) -> Option<f64> {
        (self.total > 0).then(|| self.hits as f64 / self.total as f64)
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: &FlrAccumulator) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> HistogramSpec {
        HistogramSpec::hist4()
    }

    #[test]
    fn better_estimate_scores() {
        let mut acc = FlrAccumulator::new();
        // Observations all in bucket 0 ([0, 10)).
        let obs = [2.0, 3.0, 5.0];
        let good = [0.9, 0.1, 0.0, 0.0];
        let ha = [0.25, 0.25, 0.25, 0.25];
        acc.add(&obs, &good, &ha, &spec());
        assert_eq!(acc.value(), Some(1.0));
    }

    #[test]
    fn worse_estimate_does_not_score() {
        let mut acc = FlrAccumulator::new();
        let obs = [2.0, 3.0];
        let bad = [0.0, 0.0, 0.5, 0.5];
        let ha = [0.25, 0.25, 0.25, 0.25];
        acc.add(&obs, &bad, &ha, &spec());
        assert_eq!(acc.value(), Some(0.0));
    }

    #[test]
    fn empty_observations_are_skipped() {
        let mut acc = FlrAccumulator::new();
        acc.add(&[], &[1.0, 0.0, 0.0, 0.0], &[0.25; 4], &spec());
        assert_eq!(acc.value(), None);
        assert_eq!(acc.count(), 0);
    }

    #[test]
    fn mixed_cells_give_fraction() {
        let mut acc = FlrAccumulator::new();
        let ha = [0.25, 0.25, 0.25, 0.25];
        acc.add(&[2.0], &[0.9, 0.1, 0.0, 0.0], &ha, &spec()); // hit
        acc.add(&[2.0], &[0.0, 0.1, 0.4, 0.5], &ha, &spec()); // miss
        assert_eq!(acc.value(), Some(0.5));
        assert_eq!(acc.count(), 2);
    }

    #[test]
    fn merge_combines_counts() {
        let ha = [0.25, 0.25, 0.25, 0.25];
        let mut a = FlrAccumulator::new();
        a.add(&[2.0], &[0.9, 0.1, 0.0, 0.0], &ha, &spec());
        let mut b = FlrAccumulator::new();
        b.add(&[2.0], &[0.0, 0.0, 0.5, 0.5], &ha, &spec());
        let mut m = FlrAccumulator::new();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.value(), Some(0.5));
    }
}
