//! Mean Absolute Percentage Error (Eq. 13), for the AVG functionality.

/// Streaming accumulator for MAPE over evaluated (interval, edge) cells.
#[derive(Clone, Copy, Debug, Default)]
pub struct MapeAccumulator {
    sum: f64,
    count: usize,
}

impl MapeAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one cell: ground-truth average speed `y` and estimate `y_hat`.
    ///
    /// Cells with non-positive ground truth are skipped (the percentage
    /// error is undefined there; the simulator never produces them).
    pub fn add(&mut self, y: f64, y_hat: f64) {
        if y <= 0.0 {
            return;
        }
        self.sum += (y - y_hat).abs() / y;
        self.count += 1;
    }

    /// Number of cells accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// MAPE in percent; `None` until at least one cell is accumulated.
    pub fn value_percent(&self) -> Option<f64> {
        (self.count > 0).then(|| 100.0 * self.sum / self.count as f64)
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: &MapeAccumulator) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimates_give_zero() {
        let mut acc = MapeAccumulator::new();
        acc.add(10.0, 10.0);
        acc.add(20.0, 20.0);
        assert_eq!(acc.value_percent(), Some(0.0));
    }

    #[test]
    fn known_percentage() {
        let mut acc = MapeAccumulator::new();
        acc.add(10.0, 9.0); // 10%
        acc.add(20.0, 24.0); // 20%
        assert!((acc.value_percent().unwrap() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn zero_truth_skipped() {
        let mut acc = MapeAccumulator::new();
        acc.add(0.0, 5.0);
        assert_eq!(acc.value_percent(), None);
    }

    #[test]
    fn merge() {
        let mut a = MapeAccumulator::new();
        a.add(10.0, 9.0);
        let mut b = MapeAccumulator::new();
        b.add(10.0, 12.0);
        let mut m = MapeAccumulator::new();
        m.merge(&a);
        m.merge(&b);
        assert!((m.value_percent().unwrap() - 15.0).abs() < 1e-12);
        assert_eq!(m.count(), 2);
    }
}
