//! # gcwc-metrics
//!
//! Evaluation metrics of the paper's §VI-A.6: KL divergence, the Mean
//! KL-divergence Ratio (MKLR, Eq. 11), the Fraction of Likelihood Ratio
//! (FLR, Eq. 12) and the Mean Absolute Percentage Error (MAPE, Eq. 13).

#![warn(missing_docs)]

pub mod flr;
pub mod kl;
pub mod mape;
pub mod mklr;

pub use flr::FlrAccumulator;
pub use kl::kl_divergence;
pub use mape::MapeAccumulator;
pub use mklr::MklrAccumulator;
