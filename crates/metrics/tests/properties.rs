//! Property-based tests for the evaluation metrics.

use gcwc_metrics::{kl_divergence, FlrAccumulator, MapeAccumulator, MklrAccumulator};
use gcwc_traffic::HistogramSpec;
use proptest::prelude::*;

/// Strategy: a normalised histogram of the given size.
fn histogram(buckets: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, buckets).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        for x in &mut v {
            *x /= s;
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Gibbs' inequality: KL ≥ 0 with equality iff p == q.
    #[test]
    fn kl_is_nonnegative(p in histogram(8), q in histogram(8)) {
        let d = kl_divergence(&p, &q, 1e-9);
        prop_assert!(d >= -1e-9, "KL = {d}");
    }

    #[test]
    fn kl_of_self_is_zero(p in histogram(6)) {
        prop_assert!(kl_divergence(&p, &p, 1e-9).abs() < 1e-12);
    }

    /// MKLR of the reference itself is exactly 1.
    #[test]
    fn mklr_of_reference_is_one(gt in histogram(8), ha in histogram(8)) {
        prop_assume!(kl_divergence(&gt, &ha, 1e-6) > 1e-9);
        let mut acc = MklrAccumulator::new();
        acc.add(&gt, &ha, &ha);
        let v = acc.value().unwrap();
        prop_assert!((v - 1.0).abs() < 1e-12);
    }

    /// A perfect estimate yields MKLR 0 and the estimate always scores in
    /// FLR against any reference that differs.
    #[test]
    fn perfect_estimate_dominates(gt in histogram(4),
                                  ha in histogram(4),
                                  obs in proptest::collection::vec(0.0f64..39.9, 1..20)) {
        let mut mklr = MklrAccumulator::new();
        mklr.add(&gt, &gt, &ha);
        prop_assert!(mklr.value().unwrap_or(0.0) < 1e-9);

        // FLR: the empirical histogram of the observations maximises the
        // likelihood, so it always at least ties any other histogram.
        let spec = HistogramSpec::hist4();
        let empirical = spec.build(&obs).unwrap();
        let ll = |h: &[f64]| -> f64 {
            obs.iter().map(|&o| (spec.likelihood(h, o) + 1e-6_f64).ln()).sum()
        };
        prop_assert!(ll(&empirical) >= ll(&ha) - 1e-9);
    }

    /// FLR is a fraction and merging preserves it being a fraction.
    #[test]
    fn flr_stays_in_unit_interval(histograms in proptest::collection::vec((histogram(4), histogram(4)), 1..10),
                                  obs in proptest::collection::vec(0.0f64..39.9, 1..5)) {
        let spec = HistogramSpec::hist4();
        let mut acc = FlrAccumulator::new();
        for (est, ha) in &histograms {
            acc.add(&obs, est, ha, &spec);
        }
        let v = acc.value().unwrap();
        prop_assert!((0.0..=1.0).contains(&v));
    }

    /// MAPE is shift-sensitive and scale-correct: estimating y for truth
    /// y gives 0; estimating (1+e)·y gives 100·e %.
    #[test]
    fn mape_measures_relative_error(y in 1.0f64..40.0, e in 0.0f64..0.9) {
        let mut acc = MapeAccumulator::new();
        acc.add(y, y * (1.0 + e));
        let got = acc.value_percent().unwrap();
        prop_assert!((got - e * 100.0).abs() < 1e-9);
    }

    /// Merging accumulators equals accumulating everything in one pass.
    #[test]
    fn accumulator_merge_is_homomorphic(cells in proptest::collection::vec((histogram(4), histogram(4), histogram(4)), 2..8)) {
        let mut whole = MklrAccumulator::new();
        let mut left = MklrAccumulator::new();
        let mut right = MklrAccumulator::new();
        for (i, (gt, est, ha)) in cells.iter().enumerate() {
            whole.add(gt, est, ha);
            if i % 2 == 0 { left.add(gt, est, ha) } else { right.add(gt, est, ha) }
        }
        let mut merged = MklrAccumulator::new();
        merged.merge(&left);
        merged.merge(&right);
        prop_assert_eq!(merged.count(), whole.count());
        let (a, b) = (merged.value().unwrap(), whole.value().unwrap());
        prop_assert!((a - b).abs() < 1e-12);
    }
}
