//! Vendored stand-in for the subset of the `criterion` crate API this
//! workspace uses.
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace's `harness = false` benches link against this minimal
//! harness instead: it runs each benchmark `sample_size` times after a
//! warm-up pass and prints mean / min / max wall-clock time per
//! iteration. No statistical outlier analysis, no HTML reports — just
//! stable, comparable numbers on stdout.
//!
//! Supported: `Criterion::default().sample_size(n)`, `bench_function`,
//! `benchmark_group` (with `sample_size`, `bench_with_input`,
//! `finish`), `BenchmarkId::{new, from_parameter}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The shim times each routine
/// invocation individually, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Routine input is small; batch many per sample.
    SmallInput,
    /// Routine input is large; one setup per timed invocation.
    LargeInput,
    /// Input per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to every benchmark closure; runs and times the workload.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, one sample per invocation.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`; setup is untimed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_secs_f64() * 1e9;
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        samples.len()
    );
}

/// The benchmark manager: owns configuration, runs benchmarks, prints
/// results.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Benches are invoked as `bench-binary [--bench] [FILTER]`; honor
        // a filter substring so `cargo bench -- matmul` narrows the run.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { sample_size: 50, filter }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        if self.matches(id) {
            let mut b = Bencher { sample_size: self.sample_size, samples: Vec::new() };
            f(&mut b);
            report(id, &b.samples);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }
}

/// A set of benchmarks reported under a shared prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full_id) {
            let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
            let mut b = Bencher { sample_size, samples: Vec::new() };
            f(&mut b, input);
            report(&full_id, &b.samples);
        }
        self
    }

    /// Finishes the group (report-flushing no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a group of benchmark targets sharing a `Criterion` config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets_run(c: &mut Criterion) {
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(3u64 + 4)));
        let mut group = c.benchmark_group("shim_group");
        group.sample_size(3);
        for n in [1usize, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::LargeInput)
            });
        }
        group.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(2);
        targets = targets_run
    }

    #[test]
    fn harness_runs_without_panicking() {
        smoke();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
