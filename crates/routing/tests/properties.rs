//! Property-based tests for stochastic routing invariants.

use gcwc_routing::TravelTimeDist;
use gcwc_traffic::HistogramSpec;
use proptest::prelude::*;

fn histogram(buckets: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, buckets).prop_filter_map("needs mass", |mut v| {
        let s: f64 = v.iter().sum();
        if s < 1e-6 {
            return None;
        }
        for x in &mut v {
            *x /= s;
        }
        Some(v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Converting any speed histogram yields a proper distribution.
    #[test]
    fn conversion_preserves_mass(hist in histogram(8), length in 50.0f64..2000.0) {
        let spec = HistogramSpec::hist8();
        let d = TravelTimeDist::from_speed_histogram(&hist, &spec, length, 5.0);
        prop_assert!((d.total_mass() - 1.0).abs() < 1e-9);
        prop_assert!(d.mean() > 0.0);
    }

    /// Convolution preserves probability mass and adds means (up to
    /// binning error of one bin per operand).
    #[test]
    fn convolution_conserves_mass_and_means(h1 in histogram(8), h2 in histogram(8)) {
        let spec = HistogramSpec::hist8();
        let a = TravelTimeDist::from_speed_histogram(&h1, &spec, 400.0, 2.0);
        let b = TravelTimeDist::from_speed_histogram(&h2, &spec, 700.0, 2.0);
        let c = a.convolve(&b);
        prop_assert!((c.total_mass() - 1.0).abs() < 1e-9);
        let expected = a.mean() + b.mean();
        prop_assert!((c.mean() - expected).abs() < 2.0 + 1e-9,
            "{} vs {}", c.mean(), expected);
    }

    /// The on-time probability is a CDF: monotone, 0 at 0⁻, 1 at ∞.
    #[test]
    fn on_time_probability_is_a_cdf(hist in histogram(8), length in 100.0f64..1000.0) {
        let spec = HistogramSpec::hist8();
        let d = TravelTimeDist::from_speed_histogram(&hist, &spec, length, 5.0);
        prop_assert_eq!(d.on_time_probability(-1.0), 0.0);
        let mut last = 0.0;
        for k in 0..30 {
            let p = d.on_time_probability(k as f64 * 60.0);
            prop_assert!(p + 1e-12 >= last);
            prop_assert!(p <= 1.0 + 1e-12);
            last = p;
        }
        prop_assert!((d.on_time_probability(1e7) - 1.0).abs() < 1e-9);
    }

    /// Quantile and CDF are mutually consistent:
    /// `P(T ≤ quantile(q)) ≥ q`.
    #[test]
    fn quantile_inverts_cdf(hist in histogram(8), q in 0.05f64..0.95) {
        let spec = HistogramSpec::hist8();
        let d = TravelTimeDist::from_speed_histogram(&hist, &spec, 500.0, 5.0);
        let t = d.quantile(q);
        prop_assert!(d.on_time_probability(t) >= q - 1e-9);
    }

    /// Faster speeds stochastically dominate: shifting histogram mass to
    /// faster buckets never lowers the on-time probability.
    #[test]
    fn faster_speeds_dominate(deadline in 20.0f64..500.0) {
        let spec = HistogramSpec::hist8();
        let slow = vec![0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let fast = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5, 0.5];
        let ds = TravelTimeDist::from_speed_histogram(&slow, &spec, 800.0, 2.0);
        let df = TravelTimeDist::from_speed_histogram(&fast, &spec, 800.0, 2.0);
        prop_assert!(df.on_time_probability(deadline) >= ds.on_time_probability(deadline) - 1e-12);
    }
}
