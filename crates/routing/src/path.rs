//! Paths over road networks and their stochastic travel times.

use gcwc_linalg::Matrix;
use gcwc_traffic::{HistogramSpec, RoadNetwork};

use crate::dist::TravelTimeDist;

/// A path as a sequence of edge indices of a [`RoadNetwork`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    edges: Vec<usize>,
}

impl Path {
    /// Builds a path, validating edge-to-edge connectivity
    /// (`head(e_i) == tail(e_{i+1})`).
    ///
    /// # Panics
    /// Panics on an empty edge list or a disconnected step.
    pub fn new(net: &RoadNetwork, edges: Vec<usize>) -> Self {
        assert!(!edges.is_empty(), "a path needs at least one edge");
        for w in edges.windows(2) {
            let a = net.edge(w[0]);
            let b = net.edge(w[1]);
            assert_eq!(a.to, b.from, "edges {} and {} are not consecutive", w[0], w[1]);
        }
        Self { edges }
    }

    /// The edge sequence.
    pub fn edges(&self) -> &[usize] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the path has no edges (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Total length in metres.
    pub fn length(&self, net: &RoadNetwork) -> f64 {
        self.edges.iter().map(|&e| net.edge_length(e)).sum()
    }

    /// The path's travel-time distribution under a completed weight
    /// matrix `Ŵ` (rows = edge speed histograms), assuming independent
    /// edge traversal times — the model of the paper's introduction.
    pub fn travel_time(
        &self,
        net: &RoadNetwork,
        completed: &Matrix,
        spec: &HistogramSpec,
        resolution: f64,
    ) -> TravelTimeDist {
        let mut acc: Option<TravelTimeDist> = None;
        for &e in &self.edges {
            let d = TravelTimeDist::from_speed_histogram(
                completed.row(e),
                spec,
                net.edge_length(e).max(1.0),
                resolution,
            );
            acc = Some(match acc {
                None => d,
                Some(prev) => prev.convolve(&d),
            });
        }
        acc.expect("non-empty path")
    }

    /// Expected travel time in seconds using only mean speeds — the
    /// "average weight" routing the paper argues against.
    pub fn mean_travel_time(
        &self,
        net: &RoadNetwork,
        completed: &Matrix,
        spec: &HistogramSpec,
    ) -> f64 {
        self.edges
            .iter()
            .map(|&e| {
                let mean_speed = spec.mean_speed(completed.row(e)).max(0.5);
                net.edge_length(e).max(1.0) / mean_speed
            })
            .sum()
    }
}

/// Chooses the best path by on-time arrival probability, breaking ties
/// by mean travel time. Returns the winning index into `paths`.
///
/// # Panics
/// Panics if `paths` is empty.
pub fn choose_by_on_time_probability(
    paths: &[Path],
    net: &RoadNetwork,
    completed: &Matrix,
    spec: &HistogramSpec,
    deadline_seconds: f64,
    resolution: f64,
) -> usize {
    assert!(!paths.is_empty(), "no candidate paths");
    let mut best = 0;
    let mut best_p = f64::NEG_INFINITY;
    let mut best_mean = f64::INFINITY;
    for (i, path) in paths.iter().enumerate() {
        let dist = path.travel_time(net, completed, spec, resolution);
        let p = dist.on_time_probability(deadline_seconds);
        let mean = dist.mean();
        if p > best_p + 1e-12 || (p > best_p - 1e-12 && mean < best_mean) {
            best = i;
            best_p = p;
            best_mean = mean;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_traffic::generators;

    fn setup() -> (RoadNetwork, Matrix, HistogramSpec) {
        let hw = generators::highway_tollgate(1);
        let spec = HistogramSpec::hist8();
        // All edges: speeds around 22.5 m/s (bucket 4).
        let mut w = Matrix::zeros(hw.net.num_edges(), 8);
        for e in 0..hw.net.num_edges() {
            w[(e, 4)] = 1.0;
        }
        (hw.net, w, spec)
    }

    fn two_step_path(net: &RoadNetwork) -> Path {
        // Find two consecutive edges.
        for i in 0..net.num_edges() {
            for j in 0..net.num_edges() {
                if i != j
                    && net.edge(i).to == net.edge(j).from
                    && net.edge(j).to != net.edge(i).from
                {
                    return Path::new(net, vec![i, j]);
                }
            }
        }
        panic!("no two-step path found");
    }

    #[test]
    fn path_validation_accepts_consecutive() {
        let (net, _, _) = setup();
        let p = two_step_path(&net);
        assert_eq!(p.len(), 2);
        assert!(p.length(&net) > 0.0);
    }

    #[test]
    #[should_panic(expected = "not consecutive")]
    fn path_validation_rejects_jumps() {
        let (net, _, _) = setup();
        // Edges 0 and 1 are opposite directions of the same segment in
        // the generator; edge 0 then an edge starting elsewhere fails.
        let bad = (0..net.num_edges()).find(|&j| net.edge(0).to != net.edge(j).from).unwrap();
        Path::new(&net, vec![0, bad]);
    }

    #[test]
    fn travel_time_matches_physics() {
        let (net, w, spec) = setup();
        let p = two_step_path(&net);
        let dist = p.travel_time(&net, &w, &spec, 5.0);
        // 22.5 m/s over the path length.
        let expected = p.length(&net) / 22.5;
        assert!(
            (dist.mean() - expected).abs() < expected * 0.1 + 10.0,
            "mean {} vs expected {expected}",
            dist.mean()
        );
        assert!((dist.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_travel_time_agrees_with_distribution_mean() {
        let (net, w, spec) = setup();
        let p = two_step_path(&net);
        let dist_mean = p.travel_time(&net, &w, &spec, 1.0).mean();
        let scalar_mean = p.mean_travel_time(&net, &w, &spec);
        assert!((dist_mean - scalar_mean).abs() < scalar_mean * 0.05 + 5.0);
    }

    #[test]
    fn chooser_prefers_reliable_path() {
        let (net, mut w, spec) = setup();
        let p = two_step_path(&net);
        let edges = p.edges().to_vec();
        // Make the first edge risky: bimodal fast/very-slow.
        w.row_mut(edges[0]).fill(0.0);
        w[(edges[0], 7)] = 0.7; // ~37.5 m/s
        w[(edges[0], 0)] = 0.3; // ~2.5 m/s: occasionally terrible
                                // Alternative: the same path but with a steady moderate edge.
        let mut w_safe = w.clone();
        w_safe.row_mut(edges[0]).fill(0.0);
        w_safe[(edges[0], 4)] = 1.0;
        // Construct the comparison via two "worlds" on the same path.
        let risky = p.travel_time(&net, &w, &spec, 5.0);
        let safe = p.travel_time(&net, &w_safe, &spec, 5.0);
        // The risky edge can be faster on average but misses tight
        // deadlines more often.
        let deadline = safe.quantile(0.99) + 5.0;
        assert!(safe.on_time_probability(deadline) > risky.on_time_probability(deadline));
    }

    #[test]
    fn chooser_returns_valid_index() {
        let (net, w, spec) = setup();
        let p = two_step_path(&net);
        let single = Path::new(&net, vec![p.edges()[0]]);
        let idx = choose_by_on_time_probability(&[p.clone(), single], &net, &w, &spec, 600.0, 5.0);
        assert!(idx < 2);
    }
}
