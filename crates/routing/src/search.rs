//! Path search: Dijkstra and Yen's k-shortest simple paths over a road
//! network weighted by expected travel time, generating the candidate
//! set that stochastic path choice then ranks by on-time probability.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gcwc_linalg::Matrix;
use gcwc_traffic::{HistogramSpec, RoadNetwork};

use crate::path::Path;

/// Per-edge expected travel times (seconds) derived from a completed
/// weight matrix.
pub fn edge_costs(net: &RoadNetwork, completed: &Matrix, spec: &HistogramSpec) -> Vec<f64> {
    (0..net.num_edges())
        .map(|e| {
            let mean_speed = spec.mean_speed(completed.row(e)).max(0.5);
            net.edge_length(e).max(1.0) / mean_speed
        })
        .collect()
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    vertex: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other.cost.partial_cmp(&self.cost).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest path from `from` to `to` by the given edge costs,
/// optionally banning some edges/vertices (used by Yen's spur search).
/// Returns the edge sequence, or `None` when unreachable.
fn dijkstra_with_bans(
    net: &RoadNetwork,
    costs: &[f64],
    from: usize,
    to: usize,
    banned_edges: &[bool],
    banned_vertices: &[bool],
) -> Option<Vec<usize>> {
    let nv = net.num_vertices();
    // Outgoing adjacency: vertex -> (edge index, head vertex).
    let mut out: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nv];
    for e in 0..net.num_edges() {
        let edge = net.edge(e);
        out[edge.from].push((e, edge.to));
    }
    let mut dist = vec![f64::INFINITY; nv];
    let mut pred_edge: Vec<Option<usize>> = vec![None; nv];
    let mut heap = BinaryHeap::new();
    dist[from] = 0.0;
    heap.push(HeapEntry { cost: 0.0, vertex: from });
    while let Some(HeapEntry { cost, vertex }) = heap.pop() {
        if cost > dist[vertex] {
            continue;
        }
        if vertex == to {
            break;
        }
        for &(e, head) in &out[vertex] {
            if banned_edges[e] || banned_vertices[head] {
                continue;
            }
            let next = cost + costs[e];
            if next < dist[head] {
                dist[head] = next;
                pred_edge[head] = Some(e);
                heap.push(HeapEntry { cost: next, vertex: head });
            }
        }
    }
    if dist[to].is_infinite() {
        return None;
    }
    // Reconstruct.
    let mut edges = Vec::new();
    let mut v = to;
    while v != from {
        let e = pred_edge[v].expect("predecessor on reached vertex");
        edges.push(e);
        v = net.edge(e).from;
    }
    edges.reverse();
    Some(edges)
}

/// Shortest path from vertex `from` to vertex `to` by expected travel
/// time. Returns `None` when unreachable.
pub fn shortest_path(net: &RoadNetwork, costs: &[f64], from: usize, to: usize) -> Option<Path> {
    assert_eq!(costs.len(), net.num_edges(), "cost vector length mismatch");
    let banned_e = vec![false; net.num_edges()];
    let banned_v = vec![false; net.num_vertices()];
    dijkstra_with_bans(net, costs, from, to, &banned_e, &banned_v)
        .map(|edges| Path::new(net, edges))
}

/// Yen's algorithm: up to `k` loop-free shortest paths by expected
/// travel time, in non-decreasing cost order.
pub fn k_shortest_paths(
    net: &RoadNetwork,
    costs: &[f64],
    from: usize,
    to: usize,
    k: usize,
) -> Vec<Path> {
    assert!(k >= 1, "k must be positive");
    let Some(first) = shortest_path(net, costs, from, to) else {
        return Vec::new();
    };
    let path_cost = |edges: &[usize]| -> f64 { edges.iter().map(|&e| costs[e]).sum() };
    let mut accepted: Vec<Vec<usize>> = vec![first.edges().to_vec()];
    let mut candidates: Vec<(f64, Vec<usize>)> = Vec::new();

    while accepted.len() < k {
        let last = accepted.last().expect("non-empty").clone();
        // Spur from every prefix of the last accepted path.
        for spur_idx in 0..last.len() {
            let root = &last[..spur_idx];
            let spur_vertex = if spur_idx == 0 { from } else { net.edge(last[spur_idx - 1]).to };
            // Ban edges that would recreate an accepted path with this
            // root, and vertices already on the root (loop-free).
            let mut banned_e = vec![false; net.num_edges()];
            for acc in &accepted {
                if acc.len() > spur_idx && acc[..spur_idx] == *root {
                    banned_e[acc[spur_idx]] = true;
                }
            }
            let mut banned_v = vec![false; net.num_vertices()];
            let mut v = from;
            for &e in root {
                banned_v[v] = true;
                v = net.edge(e).to;
            }
            if let Some(spur) =
                dijkstra_with_bans(net, costs, spur_vertex, to, &banned_e, &banned_v)
            {
                let mut total: Vec<usize> = root.to_vec();
                total.extend(spur);
                if !accepted.contains(&total) && !candidates.iter().any(|(_, c)| c == &total) {
                    candidates.push((path_cost(&total), total));
                }
            }
        }
        // Take the cheapest candidate.
        let Some(best_idx) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.0.partial_cmp(&b.0).expect("finite costs"))
            .map(|(i, _)| i)
        else {
            break;
        };
        accepted.push(candidates.swap_remove(best_idx).1);
    }
    accepted.into_iter().map(|edges| Path::new(net, edges)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_traffic::generators::{self, city_grid};

    fn uniform_completed(n: usize) -> (Matrix, HistogramSpec) {
        let spec = HistogramSpec::hist8();
        let mut w = Matrix::zeros(n, 8);
        for e in 0..n {
            w[(e, 3)] = 1.0; // 17.5 m/s everywhere
        }
        (w, spec)
    }

    #[test]
    fn dijkstra_on_grid_finds_manhattan_route() {
        let net = city_grid(4, 4);
        let (w, spec) = uniform_completed(net.num_edges());
        let costs = edge_costs(&net, &w, &spec);
        // Vertex 0 is (0,0); vertex 15 is (3,3): 6 blocks.
        let p = shortest_path(&net, &costs, 0, 15).expect("grid is connected");
        assert_eq!(p.len(), 6, "4x4 grid corner-to-corner is six segments");
    }

    #[test]
    fn unreachable_returns_none() {
        let mut net = city_grid(2, 2);
        let isolated = net.add_vertex(10_000.0, 10_000.0);
        let (w, spec) = uniform_completed(net.num_edges());
        let costs = edge_costs(&net, &w, &spec);
        assert!(shortest_path(&net, &costs, 0, isolated).is_none());
    }

    #[test]
    fn k_shortest_are_distinct_and_ordered() {
        let net = city_grid(4, 4);
        let (w, spec) = uniform_completed(net.num_edges());
        let costs = edge_costs(&net, &w, &spec);
        let paths = k_shortest_paths(&net, &costs, 0, 15, 4);
        assert!(paths.len() >= 3, "a grid has many corner-to-corner routes");
        let cost_of = |p: &Path| -> f64 { p.edges().iter().map(|&e| costs[e]).sum() };
        for w2 in paths.windows(2) {
            assert!(cost_of(&w2[0]) <= cost_of(&w2[1]) + 1e-9, "costs must be ordered");
            assert_ne!(w2[0].edges(), w2[1].edges(), "paths must be distinct");
        }
    }

    #[test]
    fn k_shortest_paths_are_loop_free() {
        let net = city_grid(3, 3);
        let (w, spec) = uniform_completed(net.num_edges());
        let costs = edge_costs(&net, &w, &spec);
        for p in k_shortest_paths(&net, &costs, 0, 8, 5) {
            let mut seen = vec![false; net.num_vertices()];
            let mut v = net.edge(p.edges()[0]).from;
            seen[v] = true;
            for &e in p.edges() {
                v = net.edge(e).to;
                assert!(!seen[v], "vertex revisited: loop in path");
                seen[v] = true;
            }
        }
    }

    #[test]
    fn costs_respect_speeds() {
        let hw = generators::highway_tollgate(1);
        let spec = HistogramSpec::hist8();
        let mut slow = Matrix::zeros(24, 8);
        let mut fast = Matrix::zeros(24, 8);
        for e in 0..24 {
            slow[(e, 0)] = 1.0;
            fast[(e, 7)] = 1.0;
        }
        let c_slow = edge_costs(&hw.net, &slow, &spec);
        let c_fast = edge_costs(&hw.net, &fast, &spec);
        for e in 0..24 {
            assert!(c_slow[e] > c_fast[e]);
        }
    }
}
