//! # gcwc-routing
//!
//! High-resolution stochastic routing on completed weights — the paper's
//! motivating application (§I) and its "integrate GCWC with existing
//! routing algorithms" future-work item (§VII).
//!
//! * [`TravelTimeDist`] — discrete travel-time distributions derived
//!   from completed speed histograms, with convolution along paths,
//!   on-time arrival probability and quantiles.
//! * [`Path`] — validated edge sequences with stochastic and mean
//!   travel times.
//! * [`search`] — Dijkstra and Yen's k-shortest simple paths by
//!   expected time, generating candidates that
//!   [`choose_by_on_time_probability`] then ranks the way the paper's
//!   introduction example prescribes.

#![warn(missing_docs)]

pub mod dist;
pub mod path;
pub mod search;

pub use dist::TravelTimeDist;
pub use path::{choose_by_on_time_probability, Path};
pub use search::{edge_costs, k_shortest_paths, shortest_path};
