//! Discrete travel-time distributions.
//!
//! A completed stochastic weight is a *speed* histogram; for routing we
//! convert it to a travel-*time* distribution over the edge (time =
//! length / speed per bucket) on a fixed time grid, and convolve the
//! per-edge distributions along a path — exactly the computation behind
//! the paper's introduction example, where path `P1` with travel-time
//! distribution `{(30, 0.2), (40, 0.8)}` beats `P2 = {(30, 0.5),
//! (40, 0.3), (50, 0.2)}` for a 40-minute deadline despite having the
//! worse mean.

use gcwc_traffic::HistogramSpec;

/// A discrete travel-time distribution on a uniform grid.
///
/// `probs[i]` is the probability that the travel time falls in
/// `[i·resolution, (i+1)·resolution)` seconds.
///
/// The paper's introduction example — `P1 = {(30, 0.2), (40, 0.8)}` beats
/// `P2 = {(30, 0.5), (40, 0.3), (50, 0.2)}` for a 40-minute deadline even
/// though `P2` has the lower mean:
///
/// ```
/// use gcwc_routing::TravelTimeDist;
/// let p1 = TravelTimeDist::from_points(&[(1800.0, 0.2), (2400.0, 0.8)], 60.0);
/// let p2 = TravelTimeDist::from_points(&[(1800.0, 0.5), (2400.0, 0.3), (3000.0, 0.2)], 60.0);
/// assert!(p2.mean() < p1.mean());                                 // P2 faster on average…
/// let deadline = 41.0 * 60.0;
/// assert!(p1.on_time_probability(deadline) > p2.on_time_probability(deadline)); // …but P1 is safer
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TravelTimeDist {
    resolution: f64,
    probs: Vec<f64>,
}

impl TravelTimeDist {
    /// Builds a distribution from `(seconds, probability)` pairs,
    /// quantised to `resolution`-second bins and normalised.
    ///
    /// # Panics
    /// Panics if `resolution` is not positive, any probability is
    /// negative, or the total mass is zero.
    pub fn from_points(points: &[(f64, f64)], resolution: f64) -> Self {
        assert!(resolution > 0.0, "resolution must be positive");
        let mut max_t = 0.0f64;
        let mut total = 0.0;
        for &(t, p) in points {
            assert!(p >= 0.0, "negative probability");
            assert!(t >= 0.0, "negative travel time");
            if p > 0.0 {
                max_t = max_t.max(t);
            }
            total += p;
        }
        assert!(total > 0.0, "distribution has no mass");
        let bins = (max_t / resolution).floor() as usize + 1;
        let mut probs = vec![0.0; bins];
        for &(t, p) in points {
            if p > 0.0 {
                probs[(t / resolution).floor() as usize] += p / total;
            }
        }
        Self { resolution, probs }
    }

    /// Converts a speed histogram on an edge of `length_m` metres into a
    /// travel-time distribution: each speed bucket's midpoint maps to
    /// `length / speed` seconds.
    ///
    /// Zero-probability buckets contribute nothing; the first bucket's
    /// midpoint is clamped away from zero speed.
    pub fn from_speed_histogram(
        hist: &[f64],
        spec: &HistogramSpec,
        length_m: f64,
        resolution: f64,
    ) -> Self {
        assert_eq!(hist.len(), spec.buckets, "histogram length mismatch");
        assert!(length_m > 0.0, "edge length must be positive");
        let points: Vec<(f64, f64)> = hist
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0.0)
            .map(|(b, &p)| {
                let speed = spec.bucket_midpoint(b).max(0.5);
                (length_m / speed, p)
            })
            .collect();
        Self::from_points(&points, resolution)
    }

    /// A deterministic (single-spike) distribution.
    pub fn deterministic(seconds: f64, resolution: f64) -> Self {
        Self::from_points(&[(seconds, 1.0)], resolution)
    }

    /// Grid resolution in seconds.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// The bin probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Mean travel time in seconds (bin midpoints).
    pub fn mean(&self) -> f64 {
        self.probs.iter().enumerate().map(|(i, &p)| p * (i as f64 + 0.5) * self.resolution).sum()
    }

    /// `P(travel time ≤ deadline_seconds)` — the on-time arrival
    /// probability driving high-resolution path choice.
    pub fn on_time_probability(&self, deadline_seconds: f64) -> f64 {
        if deadline_seconds < 0.0 {
            return 0.0;
        }
        let full_bins = (deadline_seconds / self.resolution).floor() as usize;
        let mut p: f64 = self.probs.iter().take(full_bins).sum();
        // Partial mass of the bin containing the deadline (uniform
        // within-bin assumption).
        if full_bins < self.probs.len() {
            let frac = (deadline_seconds - full_bins as f64 * self.resolution) / self.resolution;
            p += self.probs[full_bins] * frac;
        }
        p.min(1.0)
    }

    /// The q-quantile of the travel time (`0 < q ≤ 1`), in seconds.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if acc >= q - 1e-12 {
                return (i as f64 + 1.0) * self.resolution;
            }
        }
        self.probs.len() as f64 * self.resolution
    }

    /// Convolution: the distribution of the sum of two independent
    /// travel times (sequential edges of a path).
    ///
    /// # Panics
    /// Panics if the resolutions differ.
    pub fn convolve(&self, other: &TravelTimeDist) -> TravelTimeDist {
        assert!(
            (self.resolution - other.resolution).abs() < 1e-12,
            "resolution mismatch in convolution"
        );
        let mut probs = vec![0.0; self.probs.len() + other.probs.len() - 1];
        for (i, &a) in self.probs.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.probs.iter().enumerate() {
                probs[i + j] += a * b;
            }
        }
        TravelTimeDist { resolution: self.resolution, probs }
    }

    /// Total probability mass (1 up to floating-point error).
    pub fn total_mass(&self) -> f64 {
        self.probs.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's introduction example in minutes (60-second bins).
    fn p1() -> TravelTimeDist {
        TravelTimeDist::from_points(&[(30.0 * 60.0, 0.2), (40.0 * 60.0, 0.8)], 60.0)
    }

    fn p2() -> TravelTimeDist {
        TravelTimeDist::from_points(
            &[(30.0 * 60.0, 0.5), (40.0 * 60.0, 0.3), (50.0 * 60.0, 0.2)],
            60.0,
        )
    }

    #[test]
    fn paper_intro_example_means() {
        // P1 mean 38 min, P2 mean 37 min (the paper's numbers, up to the
        // half-bin midpoint shift which applies equally to both).
        let diff = p1().mean() - p2().mean();
        assert!((diff - 60.0).abs() < 1.0, "P1 is one minute slower on average");
    }

    #[test]
    fn paper_intro_example_on_time() {
        // Deadline 40 minutes (end of the 40-min bin): P1 guarantees
        // arrival, P2 is late with probability 0.2.
        let deadline = 41.0 * 60.0;
        assert!((p1().on_time_probability(deadline) - 1.0).abs() < 1e-9);
        assert!((p2().on_time_probability(deadline) - 0.8).abs() < 1e-9);
        // Mean-based choice picks P2; distribution-based picks P1.
        assert!(p2().mean() < p1().mean());
    }

    #[test]
    fn speed_histogram_conversion() {
        let spec = HistogramSpec::hist4();
        // All mass at bucket 1: midpoint 15 m/s over 300 m -> 20 s.
        let d = TravelTimeDist::from_speed_histogram(&[0.0, 1.0, 0.0, 0.0], &spec, 300.0, 1.0);
        assert!((d.mean() - 20.5).abs() < 0.6);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convolution_of_spikes() {
        let a = TravelTimeDist::deterministic(10.0, 1.0);
        let b = TravelTimeDist::deterministic(5.0, 1.0);
        let c = a.convolve(&b);
        assert!((c.mean() - 15.0).abs() < 1.1);
        assert!((c.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convolution_mass_and_mean_are_additive() {
        let c = p1().convolve(&p2());
        assert!((c.total_mass() - 1.0).abs() < 1e-9);
        let expected = p1().mean() + p2().mean();
        // Mean of the sum = sum of means (small bin-midpoint error).
        assert!((c.mean() - expected).abs() < 60.0, "{} vs {expected}", c.mean());
    }

    #[test]
    fn quantiles_are_monotone() {
        let d = p2();
        assert!(d.quantile(0.1) <= d.quantile(0.5));
        assert!(d.quantile(0.5) <= d.quantile(0.95));
    }

    #[test]
    fn on_time_probability_is_monotone_cdf() {
        let d = p2();
        let mut last = 0.0;
        for minutes in [0.0, 25.0, 31.0, 41.0, 51.0, 100.0] {
            let p = d.on_time_probability(minutes * 60.0);
            assert!(p >= last - 1e-12);
            last = p;
        }
        assert!((last - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no mass")]
    fn empty_distribution_panics() {
        TravelTimeDist::from_points(&[], 1.0);
    }
}
