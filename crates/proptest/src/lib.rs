//! Vendored stand-in for the subset of the `proptest` crate API this
//! workspace uses.
//!
//! The build environment cannot reach a crates.io mirror, so property
//! tests run against this minimal re-implementation: random generation
//! driven by the vendored `rand` crate, deterministic per-test seeding,
//! `Strategy` with the `prop_map` / `prop_flat_map` / `prop_filter_map`
//! combinators, range / tuple / vec / weighted-bool strategies, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Shrinking is intentionally **not** implemented: on failure the test
//! panics with the case's seed so the exact inputs can be replayed by
//! running the generator at that seed. Every test here is deterministic
//! per binary, which is what CI needs.

use std::ops::Range;

use rand::{Rng as _, SeedableRng};

/// RNG used to drive all strategies.
pub type TestRng = rand::rngs::StdRng;

/// How many times a filtering strategy may reject locally before the
/// whole case is abandoned as rejected.
const LOCAL_REJECT_LIMIT: usize = 256;

/// Error produced by one test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// The inputs were rejected (e.g. `prop_assume!`); try another case.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The upstream default of 256 is slow for the matrix-heavy
        // strategies here; heavy tests override via proptest_config.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value. `Err(Reject)` means the strategy could not
    /// produce a value for this case (filter exhausted its retries).
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Maps through `f`, retrying with fresh draws while `f` returns
    /// `None`; rejects the case after too many retries.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f, reason: reason.into() }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> Result<O, TestCaseError> {
        self.inner.new_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<S2::Value, TestCaseError> {
        let first = self.inner.new_value(rng)?;
        (self.f)(first).new_value(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: String,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> Result<O, TestCaseError> {
        for _ in 0..LOCAL_REJECT_LIMIT {
            if let Some(out) = (self.f)(self.inner.new_value(rng)?) {
                return Ok(out);
            }
        }
        Err(TestCaseError::reject(self.reason.clone()))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> Result<f64, TestCaseError> {
        Ok(rng.random_range(self.clone()))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                Ok(rng.random_range(self.clone()))
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                Ok(($(self.$idx.new_value(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Vec-of-values strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestCaseError, TestRng};
    use rand::Rng as _;

    /// Length specification for [`vec`]: a fixed `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, TestCaseError> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestCaseError, TestRng};
    use rand::Rng as _;

    /// Strategy producing `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        Weighted { p }
    }

    /// See [`weighted`].
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> Result<bool, TestCaseError> {
            Ok(rng.random::<f64>() < self.p)
        }
    }
}

/// Stable 64-bit FNV-1a, used to derive a per-test base seed from the
/// test's name so every test has an independent, reproducible stream.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Test driver behind the `proptest!` macro: runs `case` until
/// `config.cases` successes, retrying rejected cases, panicking on the
/// first failure with the case seed for replay.
pub fn run_proptest(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = fnv1a(name);
    let mut successes = 0u32;
    let mut rejects = 0u32;
    let mut case_index = 0u64;
    while successes < config.cases {
        let seed = base ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        case_index += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejects += 1;
                assert!(
                    rejects <= config.cases.saturating_mul(16).max(1024),
                    "proptest `{name}`: too many rejected cases ({rejects}); last reason: {reason}"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case seed {seed:#x}: {msg}")
            }
        }
    }
}

/// Declares property tests. Supported grammar (a strict subset of the
/// upstream macro):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))] // optional
///     #[test]
///     fn my_prop(x in 0usize..10, v in collection::vec(0.0f64..1.0, 4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(config, stringify!($name), |__proptest_rng| {
                $(
                    let $arg = $crate::Strategy::new_value(&($strat), __proptest_rng)?;
                )+
                let mut __proptest_case =
                    move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                __proptest_case()
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)*);
            }
        }
    };
}

/// Rejects the current case (does not count as a failure) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// The glob-imported prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 1usize..5, v in collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0.0..1.0).contains(&e)));
        }

        #[test]
        fn combinators_compose(pair in (0usize..4).prop_flat_map(|n| {
            collection::vec(0.0f64..1.0, n + 1).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n + 1);
        }

        #[test]
        fn filter_map_applies(x in (0u64..100).prop_filter_map("even only", |x| {
            if x % 2 == 0 { Some(x) } else { None }
        })) {
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case seed")]
    fn failures_panic_with_seed() {
        crate::run_proptest(ProptestConfig::with_cases(4), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_proptest(ProptestConfig::with_cases(8), "det", |rng| {
                out.push(Strategy::new_value(&(0u64..1_000_000), rng)?);
                Ok(())
            });
        }
        assert_eq!(first, second);
    }
}
