//! The batched inference engine: a bounded queue feeding worker
//! threads that coalesce requests into pooled forward passes, with a
//! completion cache per shard in front.
//!
//! Requests carry the **global** weight matrix; the engine routes each
//! one through every shard of the served shard set — cache lookup per
//! shard (keys embed the shard's own generation, so hot-swapping one
//! shard invalidates exactly its entries), one coalesced forward pass
//! per shard over the misses, then each shard's owned rows are
//! scattered back into the caller's global output buffer. With a
//! single shard (K = 1) the view is the identity and the path reduces
//! to the pre-sharding pipeline bit for bit.
//!
//! Buffer discipline: a [`Client`] owns its input/output matrices and
//! round-trips them through the [`Job`] → [`Completion`] cycle, the
//! worker owns an [`InferWorkspace`] plus persistent batch scratch
//! (including per-shard localisation buffers), and the caches reuse
//! evicted buffers — so the K = 1 in-process request path performs
//! **zero heap allocations** once warm (asserted by `gcwc-bench`'s
//! `serve_alloc` test under `count-allocs`).

use crate::cache::{input_signature, CacheKey, CompletionCache};
use crate::health::{Admission, BreakerConfig, ShardHealth};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::ModelRegistry;
use crate::replica::{self, Replica};
use crate::{derive_row_flags, failsite, ServeError};
use gcwc::{InferRequest, InferWorkspace, OutputKind};
use gcwc_linalg::Matrix;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Maximum requests coalesced into one forward pass.
    pub max_batch: usize,
    /// Bounded request-queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Worker threads. `0` runs no threads: callers drain the queue
    /// with [`Engine::process_queued`], which makes batching
    /// deterministic (used by the property tests).
    pub workers: usize,
    /// Completion-cache capacity (`0` disables caching).
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Per-shard circuit-breaker tuning (threshold + cooldown).
    pub breaker: BreakerConfig,
    /// When serving as one tenant of a multi-tenant process, the
    /// tenant id to tag this engine's forward failpoint sites with
    /// (`serve.t<id>.shard<k>.forward`), so chaos schedules can target
    /// one tenant's shards without touching any other tenant. `None`
    /// (the default) keeps the legacy `serve.shard<k>.forward` names.
    pub tenant_site: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            queue_capacity: 64,
            workers: 1,
            cache_capacity: 256,
            default_deadline: None,
            breaker: BreakerConfig::default(),
            tenant_site: None,
        }
    }
}

/// A completed request: the result plus the caller's buffers, handed
/// back for reuse.
pub struct Completion {
    /// The completed `n × output_cols` weight matrix.
    pub output: Matrix,
    /// The caller's input buffer, returned for the next request.
    pub input: Matrix,
    /// True when every shard served its rows from the completion
    /// cache (no forward pass ran for this request).
    pub cache_hit: bool,
    /// True when at least one shard could not compute its rows (open
    /// breaker or failed forward) and they were filled with the
    /// row-prior `P(Z)` instead. Healthy shards' rows are exact.
    pub degraded: bool,
    /// Global generation of the shard-set snapshot that produced the
    /// result.
    pub generation: u64,
    /// Number of shards K the completion was gathered from.
    pub shards: usize,
}

/// Bounded client-side retry: exponential backoff with deterministic
/// jitter, applied by [`Client::complete`] to *retryable* failures
/// only — a full queue ([`ServeError::Overloaded`]), a restarting
/// worker ([`ServeError::ShardRestarting`]), or a replica group
/// mid-failover ([`ServeError::ReplicaFailingOver`], where the retry
/// lands on the freshly promoted replica). A missed deadline is never
/// retried: the caller's time budget is already spent.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` disables retry).
    pub max_attempts: u32,
    /// Backoff before retry `a` is `base_backoff * 2^(a-1)` plus
    /// jitter, capped at `max_backoff`.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep (pre-jitter).
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream (same seed + same
    /// attempt number → same jitter, so retry timing is replayable).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry attempt `attempt` (1-based): capped
    /// exponential backoff plus a deterministic jitter in
    /// `[0, backoff/2]` drawn from `jitter_seed` and `attempt`.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << (attempt - 1).min(16));
        let base = exp.min(self.max_backoff);
        let half = base.as_nanos().min(u128::from(u64::MAX)) as u64 / 2;
        if half == 0 {
            return base;
        }
        // SplitMix64 over (seed, attempt): deterministic, but decorrelated
        // across attempts and across clients with different seeds.
        let mut z =
            self.jitter_seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        base + Duration::from_nanos(z % (half + 1))
    }

    fn retryable(e: &ServeError) -> bool {
        matches!(
            e,
            ServeError::Overloaded | ServeError::ShardRestarting | ServeError::ReplicaFailingOver
        )
    }
}

/// One-shot rendezvous a worker fulfils and a client waits on.
struct ResponseSlot {
    value: Mutex<Option<Result<Completion, ServeError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        Self { value: Mutex::new(None), ready: Condvar::new() }
    }

    fn fulfill(&self, result: Result<Completion, ServeError>) {
        let mut g = self.value.lock().unwrap_or_else(PoisonError::into_inner);
        debug_assert!(g.is_none(), "slot fulfilled twice");
        *g = Some(result);
        drop(g);
        self.ready.notify_one();
    }

    fn wait(&self) -> Result<Completion, ServeError> {
        let mut g = self.value.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = g.take() {
                return result;
            }
            g = self.ready.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Callback invoked with a request's result. Used by the TCP reactor:
/// the hook enqueues the finished completion and wakes the event loop
/// (an `eventfd`), instead of a client thread blocking on a slot.
pub type CompletionHook = Box<dyn FnOnce(Result<Completion, ServeError>) + Send + 'static>;

/// Where a finished job delivers its result: a rendezvous slot a
/// caller thread waits on (the in-process [`Client`] path, allocation
/// free) or a one-shot hook (the reactor path).
enum Responder {
    Slot(Arc<ResponseSlot>),
    Hook(Option<CompletionHook>),
}

impl Responder {
    fn deliver(&mut self, result: Result<Completion, ServeError>) {
        match self {
            Responder::Slot(slot) => slot.fulfill(result),
            Responder::Hook(hook) => {
                if let Some(hook) = hook.take() {
                    hook(result);
                }
            }
        }
    }
}

/// A queued request with its owner's buffers and response target.
///
/// Drop is the containment safety-net: a job torn down *unanswered*
/// (its worker died mid-batch) delivers
/// [`ServeError::ShardRestarting`], so a waiting client (or reactor
/// connection) can never hang on a killed worker.
struct Job {
    input: Matrix,
    out_buf: Matrix,
    time_of_day: usize,
    day_of_week: usize,
    deadline: Option<Instant>,
    degraded: bool,
    responder: Responder,
    answered: bool,
}

impl Job {
    fn respond(mut self, result: Result<Completion, ServeError>) {
        self.answered = true;
        self.responder.deliver(result);
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        if !self.answered {
            self.responder.deliver(Err(ServeError::ShardRestarting));
        }
    }
}

/// A refused [`Engine::submit`]: the typed error plus the request's
/// buffers, handed back so the reactor can reuse them.
pub struct SubmitError {
    /// Why the submission was refused.
    pub error: ServeError,
    /// The caller's input buffer, returned for reuse.
    pub input: Matrix,
    /// The caller's output buffer, returned for reuse.
    pub out_buf: Matrix,
}

/// Monotonic request counters.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    worker_restarts: AtomicU64,
    breaker_open: AtomicU64,
    degraded_responses: AtomicU64,
    retries: AtomicU64,
    replica_failovers: AtomicU64,
    replica_promotions: AtomicU64,
}

/// Shared counters of the streaming-ingestion pipeline (`gcwc-ingest`
/// feeds them; the engine folds them into [`StatsSnapshot`] so the
/// wire `stats` response surfaces refresh observability without the
/// serving layer depending on the ingest crate). All monotonic except
/// `generation_age`, a gauge: slots sealed since the last applied
/// refresh — how stale the served model is in slot units.
#[derive(Default)]
pub struct IngestStats {
    records_ingested: AtomicU64,
    slots_sealed: AtomicU64,
    late_records_dropped: AtomicU64,
    refreshes_applied: AtomicU64,
    refreshes_rolled_back: AtomicU64,
    generation_age: AtomicU64,
}

impl IngestStats {
    /// Fresh all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts `n` records accepted into the log + window.
    pub fn add_records(&self, n: u64) {
        self.records_ingested.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one slot sealed; the served model ages by one slot.
    pub fn slot_sealed(&self) {
        self.slots_sealed.fetch_add(1, Ordering::Relaxed);
        self.generation_age.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one record dropped for arriving after its slot sealed.
    pub fn late_dropped(&self) {
        self.late_records_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one refresh hot-swapped into the registry; the served
    /// model is fresh again, so the age gauge resets.
    pub fn refresh_applied(&self) {
        self.refreshes_applied.fetch_add(1, Ordering::Relaxed);
        self.generation_age.store(0, Ordering::Relaxed);
    }

    /// Counts one refresh discarded after validation regressed.
    pub fn refresh_rolled_back(&self) {
        self.refreshes_rolled_back.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time values in [`StatsSnapshot`] field order.
    pub fn snapshot(&self) -> [u64; 6] {
        [
            self.records_ingested.load(Ordering::Relaxed),
            self.slots_sealed.load(Ordering::Relaxed),
            self.late_records_dropped.load(Ordering::Relaxed),
            self.refreshes_applied.load(Ordering::Relaxed),
            self.refreshes_rolled_back.load(Ordering::Relaxed),
            self.generation_age.load(Ordering::Relaxed),
        ]
    }
}

/// Point-in-time view of the engine counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub requests: u64,
    /// Requests answered (ok or error).
    pub completed: u64,
    /// Forward passes executed (each serving ≥1 cache-missing request).
    pub batches: u64,
    /// Requests refused with `Overloaded`.
    pub rejected: u64,
    /// Requests expired before service.
    pub expired: u64,
    /// Completion-cache hits (summed over per-shard caches).
    pub cache_hits: u64,
    /// Completion-cache misses (summed over per-shard caches).
    pub cache_misses: u64,
    /// Completion-cache evictions (summed over per-shard caches).
    pub cache_evictions: u64,
    /// Current global model generation.
    pub generation: u64,
    /// Number of shards K in the served shard set.
    pub shards: u64,
    /// Times a worker died (panic) and was restarted by its
    /// supervisor loop.
    pub worker_restarts: u64,
    /// Times a shard's circuit breaker tripped open (threshold
    /// reached or half-open probe failed).
    pub breaker_open: u64,
    /// Responses answered with at least one prior-filled shard.
    pub degraded_responses: u64,
    /// Client-side retry attempts (bounded-retry policy).
    pub retries: u64,
    /// Speed records accepted by the ingestion pipeline (0 when no
    /// [`IngestStats`] is attached).
    pub records_ingested: u64,
    /// Time slots sealed by the sliding-window aggregator.
    pub slots_sealed: u64,
    /// Records dropped for arriving after their slot sealed (outside
    /// the grace window).
    pub late_records_dropped: u64,
    /// Incremental refreshes hot-swapped into the registry.
    pub refreshes_applied: u64,
    /// Incremental refreshes discarded after validation regressed.
    pub refreshes_rolled_back: u64,
    /// Slots sealed since the last applied refresh (staleness gauge).
    pub generation_age: u64,
    /// The tenant's graph-topology generation: bumped on every applied
    /// [`gcwc_graph::GraphDelta`], so clients detect topology swaps.
    /// `0` for a legacy (tenant-less) engine.
    pub graph_generation: u64,
    /// Requests rejected by the tenant's quota (token bucket empty or
    /// the `serve.tenant.quota` failpoint armed). `0` for a legacy
    /// engine — quotas exist only at the tenant layer.
    pub quota_rejected: u64,
    /// Replicas per shard (N) in the served snapshot — a gauge, `1`
    /// for an unreplicated registry.
    pub replicas: u64,
    /// Times a shard group's misses were re-routed to another replica
    /// after a failed or denied attempt.
    pub replica_failovers: u64,
    /// Successful warm-standby promotions (a tripped replica slot
    /// atomically replaced under a fresh ordinal).
    pub replica_promotions: u64,
}

impl StatsSnapshot {
    /// Number of `u64` fields in the per-tenant serialization (the 20
    /// legacy counters plus `graph_generation` and `quota_rejected`,
    /// plus the three trailing replica fields).
    pub const TENANT_FIELDS: usize = 25;

    /// Canonical per-tenant field order, shared by the text (`tstats`)
    /// and binary (`RespTStats`) protocols — both serialize exactly
    /// this array, so the two wire forms agree field for field by
    /// construction.
    pub fn tenant_fields(&self) -> [u64; Self::TENANT_FIELDS] {
        [
            self.requests,
            self.completed,
            self.batches,
            self.rejected,
            self.expired,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.generation,
            self.shards,
            self.worker_restarts,
            self.breaker_open,
            self.degraded_responses,
            self.retries,
            self.records_ingested,
            self.slots_sealed,
            self.late_records_dropped,
            self.refreshes_applied,
            self.refreshes_rolled_back,
            self.generation_age,
            self.graph_generation,
            self.quota_rejected,
            self.replicas,
            self.replica_failovers,
            self.replica_promotions,
        ]
    }

    /// Inverse of [`StatsSnapshot::tenant_fields`].
    pub fn from_tenant_fields(f: [u64; Self::TENANT_FIELDS]) -> Self {
        Self {
            requests: f[0],
            completed: f[1],
            batches: f[2],
            rejected: f[3],
            expired: f[4],
            cache_hits: f[5],
            cache_misses: f[6],
            cache_evictions: f[7],
            generation: f[8],
            shards: f[9],
            worker_restarts: f[10],
            breaker_open: f[11],
            degraded_responses: f[12],
            retries: f[13],
            records_ingested: f[14],
            slots_sealed: f[15],
            late_records_dropped: f[16],
            refreshes_applied: f[17],
            refreshes_rolled_back: f[18],
            generation_age: f[19],
            graph_generation: f[20],
            quota_rejected: f[21],
            replicas: f[22],
            replica_failovers: f[23],
            replica_promotions: f[24],
        }
    }
}

/// Per-worker (or inline-drain) scratch, reused across batches.
struct WorkerState {
    ws: InferWorkspace,
    batch: Vec<Option<Job>>,
    /// Global input signature per live batch slot.
    sigs: Vec<u64>,
    /// Per batch slot: true until some shard misses the cache.
    all_hit: Vec<bool>,
    /// Per-shard scratch: batch indices of the current shard's misses.
    miss_idx: Vec<usize>,
    /// Per-shard scratch: routed replica slot per miss (parallel to
    /// `miss_idx`).
    slots: Vec<usize>,
    /// Per-group scratch: the batch indices of the misses routed to
    /// the replica slot currently being served.
    grp: Vec<usize>,
    flags: Vec<Vec<f64>>,
    /// Localised (owned + halo rows) inputs for non-identity shards.
    local_ins: Vec<Matrix>,
    outs: Vec<Matrix>,
}

impl WorkerState {
    fn new(max_batch: usize) -> Self {
        Self {
            ws: InferWorkspace::new(),
            batch: Vec::with_capacity(max_batch),
            sigs: Vec::with_capacity(max_batch),
            all_hit: Vec::with_capacity(max_batch),
            miss_idx: Vec::with_capacity(max_batch),
            slots: Vec::with_capacity(max_batch),
            grp: Vec::with_capacity(max_batch),
            flags: std::iter::repeat_with(Vec::new).take(max_batch).collect(),
            local_ins: Vec::new(),
            outs: Vec::new(),
        }
    }
}

struct EngineInner {
    queue: BoundedQueue<Job>,
    caches: Vec<Mutex<CompletionCache>>,
    registry: Arc<ModelRegistry>,
    counters: Counters,
    cfg: EngineConfig,
    inline_state: Mutex<WorkerState>,
    /// Circuit breaker per replica slot: `health[k][slot]`. The shard
    /// only degrades when every slot of its group is open.
    health: Vec<Vec<ShardHealth>>,
    /// Per-shard failpoint site names, precomputed so the hot path
    /// never formats (allocation-free evaluation).
    forward_sites: Vec<String>,
    /// Per-replica-slot failpoint site names, cached by the slot's
    /// current ordinal and reformatted only when a promotion changes
    /// it — so the steady-state failpoints-enabled path never formats.
    /// Entirely skipped when the `failpoints` feature is off.
    replica_sites: Mutex<Vec<Vec<(u64, String)>>>,
    /// Ingestion counters, attached once by the streaming pipeline
    /// (absent — all-zero in stats — for a purely static deployment).
    ingest: OnceLock<Arc<IngestStats>>,
}

impl EngineInner {
    /// Serves one batch: per-request validation, then per shard —
    /// cache lookups, one coalesced forward pass over that shard's
    /// misses, cache fills, owned-row scatter — and finally one
    /// response per request once every shard has contributed its rows.
    fn serve_batch(&self, state: &mut WorkerState) {
        let snapshot = self.registry.snapshot();
        let num_shards = snapshot.num_shards();
        let (n, m) = (snapshot.num_edges(), snapshot.num_buckets());
        let out_cols = snapshot.output_cols();
        let WorkerState { ws, batch, sigs, all_hit, miss_idx, slots, grp, flags, local_ins, outs } =
            state;
        sigs.clear();
        all_hit.clear();

        // Phase 1: validation, deadlines, global input signatures.
        let now = Instant::now();
        for i in 0..batch.len() {
            let job = batch[i].as_ref().expect("fresh batch slot");
            if job.input.shape() != (n, m) {
                let got = job.input.shape();
                let job = batch[i].take().expect("slot checked above");
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                job.respond(Err(ServeError::BadRequest(format!(
                    "input shape {got:?}, model expects ({n}, {m})"
                ))));
                sigs.push(0);
                all_hit.push(false);
                continue;
            }
            if job.deadline.is_some_and(|d| d < now) {
                let job = batch[i].take().expect("slot checked above");
                self.counters.expired.fetch_add(1, Ordering::Relaxed);
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                job.respond(Err(ServeError::DeadlineExceeded));
                sigs.push(0);
                all_hit.push(false);
                continue;
            }
            sigs.push(input_signature(&job.input));
            all_hit.push(true);
        }

        // Phase 2: route through every shard — lookups, one coalesced
        // forward pass per replica group with misses (each attempt
        // gated by that replica's circuit breaker and contained by
        // `catch_unwind`), cache fills, owned-row scatter. Misses
        // route to one replica of the shard's group by rendezvous
        // hashing on their cache-key content; a replica that cannot
        // compute — open breaker, injected error, or panic — *fails
        // over* to the next routable replica, and only a shard whose
        // whole group is exhausted is *degraded*: its misses' owned
        // rows are filled with the row-prior P(Z) and the response is
        // flagged, while every other shard's rows stay bit-identical.
        // With N = 1 the group is one replica, routing is the
        // identity, and the path reduces to the unreplicated pipeline
        // bit for bit.
        for s in 0..num_shards {
            let group = snapshot.group(s);
            let n_rep = group.len();
            let view = snapshot.view(s);
            miss_idx.clear();
            slots.clear();
            let route_now = Instant::now();
            {
                let mut cache = self.caches[s].lock().unwrap_or_else(PoisonError::into_inner);
                for i in 0..batch.len() {
                    let Some(job) = batch[i].as_mut() else { continue };
                    // Route among currently routable replicas so a key
                    // whose owner is cooling down looks up (and later
                    // fills) the survivor's cache. With every breaker
                    // open, fall back to the full group: the owner's
                    // `admit` below still decides probe vs degrade.
                    let slot = if n_rep == 1 {
                        0
                    } else {
                        let point = replica::route_point(job.time_of_day, job.day_of_week, sigs[i]);
                        replica::select_by(point, group, |r| self.health[s][r].routable(route_now))
                            .unwrap_or_else(|| replica::select(point, group))
                    };
                    let key = CacheKey {
                        generation: group[slot].shard.generation,
                        time_of_day: job.time_of_day,
                        day_of_week: job.day_of_week,
                        signature: sigs[i],
                    };
                    if let Some(cached) = cache.get(&key) {
                        // Cached value is the shard's owned row block.
                        view.scatter_owned(cached, &mut job.out_buf);
                    } else {
                        miss_idx.push(i);
                        slots.push(slot);
                        all_hit[i] = false;
                    }
                }
            }
            if miss_idx.is_empty() {
                continue;
            }

            let local_n = view.num_local();
            let identity = view.is_identity();
            // Serve each routed slot's misses as one coalesced group,
            // failing over along the remaining routable slots.
            for lead in 0..n_rep {
                grp.clear();
                for (j, &i) in miss_idx.iter().enumerate() {
                    if slots[j] == lead {
                        grp.push(i);
                    }
                }
                if grp.is_empty() {
                    continue;
                }
                let count = grp.len();
                let mut prepared = false;
                let mut attempted: u64 = 0;
                let mut cur = lead;
                let mut served = false;
                let mut promoted = false;
                loop {
                    attempted |= 1 << cur;
                    // Breaker gate per replica: while `cur` cools down
                    // its attempt is skipped without a forward pass.
                    // Cached rows above were still served exactly.
                    if self.health[s][cur].admit(Instant::now()) == Admission::Allow {
                        if !prepared {
                            if !identity {
                                for buf in local_ins.iter_mut() {
                                    if buf.shape() != (local_n, m) {
                                        let stale = std::mem::replace(buf, ws.take(local_n, m));
                                        ws.give(stale);
                                    }
                                }
                                while local_ins.len() < count {
                                    let fresh = ws.take(local_n, m);
                                    local_ins.push(fresh);
                                }
                            }
                            for (r, &i) in grp.iter().enumerate() {
                                let job = batch[i].as_ref().expect("miss slots are live");
                                if identity {
                                    derive_row_flags(&job.input, &mut flags[r]);
                                } else {
                                    view.select_into(&job.input, &mut local_ins[r]);
                                    derive_row_flags(&local_ins[r], &mut flags[r]);
                                }
                            }
                            for buf in outs.iter_mut() {
                                if buf.shape() != (local_n, out_cols) {
                                    let stale = std::mem::replace(buf, ws.take(local_n, out_cols));
                                    ws.give(stale);
                                }
                            }
                            while outs.len() < count {
                                let fresh = ws.take(local_n, out_cols);
                                outs.push(fresh);
                            }
                            prepared = true;
                        }
                        let rep = &group[cur];
                        // The forward pass runs contained: a panic
                        // inside it (a poisoned kernel, an armed
                        // `panic` failpoint) or an injected `err`
                        // marks this replica's attempt failed instead
                        // of unwinding the worker. The workspace only
                        // holds pooled scratch, so abandoning it
                        // mid-pass is safe (worst case a few pooled
                        // buffers leak back to the allocator).
                        let forward_ok = {
                            let batch_ref: &Vec<Option<Job>> = batch;
                            let grp_ref: &Vec<usize> = grp;
                            let flags_ref: &Vec<Vec<f64>> = flags;
                            let local_ref: &Vec<Matrix> = local_ins;
                            let outs_ref: &mut [Matrix] = &mut outs[..count];
                            let ordinal = rep.ordinal;
                            catch_unwind(AssertUnwindSafe(|| {
                                if gcwc_failpoint::triggered(&self.forward_sites[s]) {
                                    return false; // injected shard-wide failure
                                }
                                if self.replica_forward_triggered(s, cur, ordinal) {
                                    return false; // injected replica kill
                                }
                                rep.shard.model.infer_into(
                                    ws,
                                    count,
                                    |r| {
                                        let job = batch_ref[grp_ref[r]]
                                            .as_ref()
                                            .expect("miss slots are live");
                                        InferRequest {
                                            input: if identity {
                                                &job.input
                                            } else {
                                                &local_ref[r]
                                            },
                                            time_of_day: job.time_of_day,
                                            day_of_week: job.day_of_week,
                                            row_flags: &flags_ref[r],
                                        }
                                    },
                                    outs_ref,
                                );
                                true
                            }))
                            .unwrap_or(false)
                        };
                        if forward_ok {
                            self.health[s][cur].record_success();
                            self.counters.batches.fetch_add(1, Ordering::Relaxed);
                            let mut cache =
                                self.caches[s].lock().unwrap_or_else(PoisonError::into_inner);
                            for (r, &i) in grp.iter().enumerate() {
                                let job = batch[i].as_mut().expect("miss slots are live");
                                // Keyed by the *serving* replica's
                                // generation: routing is a pure
                                // function of the key and the health
                                // set, so the next identical request
                                // looks this entry up on this replica.
                                let key = CacheKey {
                                    generation: rep.shard.generation,
                                    time_of_day: job.time_of_day,
                                    day_of_week: job.day_of_week,
                                    signature: sigs[i],
                                };
                                cache.insert_rows(key, &outs[r], view.num_owned());
                                view.scatter_owned(&outs[r], &mut job.out_buf);
                            }
                            served = true;
                            break;
                        }
                        if self.health[s][cur].record_failure(Instant::now()) {
                            self.counters.breaker_open.fetch_add(1, Ordering::Relaxed);
                            // Warm-standby promotion: the slot's
                            // breaker just tripped — rebuild it under
                            // a fresh ordinal. N = 1 keeps the legacy
                            // degrade-and-probe behavior instead.
                            if n_rep > 1 && self.promote_slot(s, cur, group) {
                                promoted = true;
                            }
                        }
                    }
                    let now = Instant::now();
                    let next = (0..n_rep)
                        .find(|&r| attempted & (1 << r) == 0 && self.health[s][r].routable(now));
                    match next {
                        Some(r) => {
                            self.counters.replica_failovers.fetch_add(1, Ordering::Relaxed);
                            cur = r;
                        }
                        None => break,
                    }
                }
                if !served {
                    if promoted {
                        // Every routable replica failed this batch but
                        // a promotion succeeded: answer retryable so
                        // the re-send lands on the fresh incarnation
                        // instead of pinning the prior into responses.
                        for &i in grp.iter() {
                            if let Some(job) = batch[i].take() {
                                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                                job.respond(Err(ServeError::ReplicaFailingOver));
                            }
                        }
                    } else {
                        degrade_misses(batch, grp, view, group[lead].shard.as_ref());
                    }
                }
            }
        }

        // Phase 3: one response per surviving request.
        for i in 0..batch.len() {
            let Some(mut job) = batch[i].take() else { continue };
            if job.degraded {
                self.counters.degraded_responses.fetch_add(1, Ordering::Relaxed);
            }
            let completion = Completion {
                output: std::mem::replace(&mut job.out_buf, Matrix::zeros(0, 0)),
                input: std::mem::replace(&mut job.input, Matrix::zeros(0, 0)),
                cache_hit: all_hit[i],
                degraded: job.degraded,
                generation: snapshot.generation,
                shards: num_shards,
            };
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
            job.respond(Ok(completion));
        }
        batch.clear();
    }

    /// Coalesces `first` with up to `max_batch - 1` opportunistically
    /// popped jobs and serves the batch.
    fn batch_and_serve(&self, first: Job, state: &mut WorkerState) {
        state.batch.clear();
        state.batch.push(Some(first));
        // Failpoint: a trigger here simulates a worker dying between
        // dequeue and service — the in-flight job answers
        // `ShardRestarting` via its Drop guard and the supervisor
        // restarts the loop.
        if gcwc_failpoint::triggered(failsite::WORKER_LOOP) {
            panic!("failpoint {}: injected worker death", failsite::WORKER_LOOP);
        }
        while state.batch.len() < self.cfg.max_batch {
            match self.queue.try_pop() {
                Some(j) => state.batch.push(Some(j)),
                None => break,
            }
        }
        self.serve_batch(state);
    }

    /// Worker loop: blocking pop for the first job, opportunistic pops
    /// up to `max_batch`, then serve. Exits once the queue is closed
    /// and drained.
    fn run_worker(&self, state: &mut WorkerState) {
        while let Some(job) = self.queue.pop() {
            self.batch_and_serve(job, state);
        }
    }

    /// Non-blocking drain used by the inline (`workers == 0`) path.
    fn drain_queued(&self, state: &mut WorkerState) {
        while let Some(job) = self.queue.try_pop() {
            self.batch_and_serve(job, state);
        }
    }

    /// Evaluates the per-replica kill site for shard `s`'s `slot`,
    /// currently incarnated as `ordinal`. The formatted site name is
    /// cached per slot and only rebuilt when the ordinal changes (a
    /// promotion), so the armed steady state never formats; without
    /// the `failpoints` feature the whole check compiles out.
    fn replica_forward_triggered(&self, s: usize, slot: usize, ordinal: u64) -> bool {
        if !gcwc_failpoint::ENABLED {
            return false;
        }
        let mut sites = self.replica_sites.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = &mut sites[s][slot];
        if entry.0 != ordinal {
            entry.1 = match self.cfg.tenant_site {
                Some(t) => failsite::tenant_replica_forward(t, ordinal),
                None => failsite::replica_forward(ordinal),
            };
            entry.0 = ordinal;
        }
        gcwc_failpoint::triggered(&entry.1)
    }

    /// Warm-standby promotion of shard `s`'s tripped `slot`: re-runs
    /// the checkpoint load (or shares a routable donor's shard) into
    /// the slot under a fresh ordinal, atomically swaps the snapshot,
    /// and resets the slot's breaker for the new incarnation. Returns
    /// whether the promotion succeeded; on failure the slot stays open
    /// and the next breaker trip retries.
    fn promote_slot(&self, s: usize, slot: usize, group: &[Replica]) -> bool {
        let now = Instant::now();
        let donor = (0..group.len()).find(|&r| r != slot && self.health[s][r].routable(now));
        match self.registry.promote_replica(s, slot, donor) {
            Ok(_) => {
                self.health[s][slot].reset();
                self.counters.replica_promotions.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }
}

/// Fills the owned rows of every cache-missing request of a shard
/// with the row-prior `P(Z)` — uniform over the histogram buckets for
/// the HIST head, `0.0` (no observed mass) for the AVG head — and
/// flags the jobs degraded. Degraded rows are never cached, so the
/// shard's next healthy pass replaces them with exact values.
fn degrade_misses(
    batch: &mut [Option<Job>],
    miss_idx: &[usize],
    view: &gcwc_graph::RowView,
    shard: &crate::registry::ModelShard,
) {
    let prior = match shard.model.output_kind() {
        OutputKind::Histogram => 1.0 / shard.model.output_cols() as f64,
        OutputKind::Average => 0.0,
    };
    for &i in miss_idx {
        let job = batch[i].as_mut().expect("miss slots are live");
        for &g in view.owned() {
            job.out_buf.row_mut(g).fill(prior);
        }
        job.degraded = true;
    }
}

/// The batched, cached inference engine. Create with [`Engine::new`],
/// obtain per-caller [`Client`]s, and stop with [`Engine::shutdown`]
/// (which drains all in-flight requests before returning).
pub struct Engine {
    inner: Arc<EngineInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Engine {
    /// Starts an engine serving `registry` with `cfg.workers` threads.
    pub fn new(registry: Arc<ModelRegistry>, cfg: EngineConfig) -> Self {
        let max_batch = cfg.max_batch.max(1);
        let num_shards = registry.num_shards();
        let replication = registry.replication();
        let caches =
            (0..num_shards).map(|_| Mutex::new(CompletionCache::new(cfg.cache_capacity))).collect();
        let health = (0..num_shards)
            .map(|_| (0..replication).map(|_| ShardHealth::new(cfg.breaker)).collect())
            .collect();
        let forward_sites = (0..num_shards)
            .map(|k| match cfg.tenant_site {
                Some(t) => failsite::tenant_shard_forward(t, k),
                None => failsite::shard_forward(k),
            })
            .collect();
        // Lazily formatted on first evaluation: ordinal u64::MAX never
        // names a real incarnation.
        let replica_sites = Mutex::new(
            (0..num_shards)
                .map(|_| (0..replication).map(|_| (u64::MAX, String::new())).collect())
                .collect(),
        );
        let inner = Arc::new(EngineInner {
            queue: BoundedQueue::new(cfg.queue_capacity),
            caches,
            registry,
            counters: Counters::default(),
            cfg: EngineConfig { max_batch, ..cfg },
            inline_state: Mutex::new(WorkerState::new(max_batch)),
            health,
            forward_sites,
            replica_sites,
            ingest: OnceLock::new(),
        });
        let mut workers = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let inner = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("gcwc-serve-{w}"))
                .spawn(move || {
                    // Supervisor: a panic that escapes a batch (the
                    // per-shard forwards are already contained, so in
                    // practice a worker-loop failpoint or a bug in the
                    // dispatch plumbing) kills only this iteration.
                    // Jobs held by the dying state answer
                    // `ShardRestarting` through their Drop guard and
                    // the loop restarts with fresh scratch.
                    loop {
                        let mut state = WorkerState::new(inner.cfg.max_batch);
                        let exit = catch_unwind(AssertUnwindSafe(|| {
                            inner.run_worker(&mut state);
                        }));
                        match exit {
                            Ok(()) => break, // queue closed and drained
                            Err(_) => {
                                inner.counters.worker_restarts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
                .expect("spawn worker");
            workers.push(handle);
        }
        Self { inner, workers: Mutex::new(workers) }
    }

    /// Creates an in-process client (one outstanding request at a
    /// time; use several clients for concurrency).
    pub fn client(&self) -> Client {
        let snapshot = self.inner.registry.snapshot();
        Client {
            inner: Arc::clone(&self.inner),
            slot: Arc::new(ResponseSlot::new()),
            spare_inputs: Vec::new(),
            spare_outputs: Vec::new(),
            pending: false,
            in_shape: (snapshot.num_edges(), snapshot.num_buckets()),
            out_shape: (snapshot.num_edges(), snapshot.output_cols()),
            retry: None,
            retry_stash: None,
        }
    }

    /// The registry behind this engine.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.inner.registry
    }

    /// Worker threads serving the queue. The TCP reactor requires at
    /// least one: it never drains the queue inline.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// The `(rows, cols)` every request input must have.
    pub fn input_shape(&self) -> (usize, usize) {
        let s = self.inner.registry.snapshot();
        (s.num_edges(), s.num_buckets())
    }

    /// The `(rows, cols)` of a completed response.
    pub fn output_shape(&self) -> (usize, usize) {
        let s = self.inner.registry.snapshot();
        (s.num_edges(), s.output_cols())
    }

    /// Enqueues a request whose result is delivered through `hook`
    /// instead of a blocking receive — the submission path of the TCP
    /// reactor, which must never park a thread per request. The hook
    /// runs on the worker thread that finishes the job (or, for a
    /// killed worker, inside the Drop guard), so it should only hand
    /// the result off — the reactor's hook pushes onto a completion
    /// queue and wakes its `eventfd`.
    ///
    /// Backpressure is synchronous: a full queue returns the buffers
    /// inside [`SubmitError`] *without* invoking the hook, so the
    /// caller can answer `Overloaded` inline and reuse the matrices.
    pub fn submit(
        &self,
        input: Matrix,
        out_buf: Matrix,
        time_of_day: usize,
        day_of_week: usize,
        deadline: Option<Instant>,
        hook: CompletionHook,
    ) -> Result<(), SubmitError> {
        let deadline =
            deadline.or_else(|| self.inner.cfg.default_deadline.map(|d| Instant::now() + d));
        let job = Job {
            input,
            out_buf,
            time_of_day,
            day_of_week,
            deadline,
            degraded: false,
            responder: Responder::Hook(Some(hook)),
            answered: false,
        };
        let reclaim = |mut job: Job, error: ServeError| {
            job.answered = true; // caller reports the error itself
            SubmitError {
                error,
                input: std::mem::replace(&mut job.input, Matrix::zeros(0, 0)),
                out_buf: std::mem::replace(&mut job.out_buf, Matrix::zeros(0, 0)),
            }
        };
        match self.inner.queue.try_push(job) {
            Ok(()) => {
                self.inner.counters.requests.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(PushError::Full(job)) => {
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(reclaim(job, ServeError::Overloaded))
            }
            Err(PushError::Closed(job)) => Err(reclaim(job, ServeError::ShuttingDown)),
        }
    }

    /// Drains every currently queued request inline on the calling
    /// thread, batching up to `max_batch` per forward pass. This is
    /// the serving path when `workers == 0` (deterministic batching);
    /// with worker threads running it is unnecessary but harmless.
    ///
    /// Runs under the same supervision as a worker thread: a panic
    /// that escapes a batch answers the in-flight jobs with
    /// `ShardRestarting` and the drain resumes, so the caller never
    /// unwinds and later requests are still served.
    pub fn process_queued(&self) {
        let mut state = self.inner.inline_state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            let exit = catch_unwind(AssertUnwindSafe(|| self.inner.drain_queued(&mut state)));
            match exit {
                Ok(()) => break, // queue empty
                Err(_) => {
                    state.batch.clear(); // Drop guards answer the jobs
                    self.inner.counters.worker_restarts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.inner.counters;
        let (mut cache_hits, mut cache_misses, mut cache_evictions) = (0u64, 0u64, 0u64);
        for cache in &self.inner.caches {
            let (h, m, e) = cache.lock().unwrap_or_else(PoisonError::into_inner).stats();
            cache_hits += h;
            cache_misses += m;
            cache_evictions += e;
        }
        let ingest = self.inner.ingest.get().map(|i| i.snapshot()).unwrap_or_default();
        StatsSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_evictions,
            generation: self.inner.registry.generation(),
            shards: self.inner.caches.len() as u64,
            worker_restarts: c.worker_restarts.load(Ordering::Relaxed),
            breaker_open: c.breaker_open.load(Ordering::Relaxed),
            degraded_responses: c.degraded_responses.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            records_ingested: ingest[0],
            slots_sealed: ingest[1],
            late_records_dropped: ingest[2],
            refreshes_applied: ingest[3],
            refreshes_rolled_back: ingest[4],
            generation_age: ingest[5],
            // The tenant layer owns these two; Tenant::stats overwrites.
            graph_generation: 0,
            quota_rejected: 0,
            replicas: self.inner.registry.replication() as u64,
            replica_failovers: c.replica_failovers.load(Ordering::Relaxed),
            replica_promotions: c.replica_promotions.load(Ordering::Relaxed),
        }
    }

    /// Attaches the ingestion pipeline's counters so `stats` responses
    /// surface refresh observability. Idempotent for the same Arc;
    /// only the first attachment wins.
    pub fn attach_ingest(&self, stats: Arc<IngestStats>) {
        let _ = self.inner.ingest.set(stats);
    }

    /// True while shard `k` cannot serve regular traffic: every
    /// replica of its group has an open (or probing) breaker. On an
    /// unreplicated engine this is the single breaker's state, exactly
    /// as before replication existed.
    pub fn shard_breaker_open(&self, k: usize) -> bool {
        self.inner.health[k].iter().all(ShardHealth::is_open)
    }

    /// True while the breaker of shard `k`'s replica `slot` denies
    /// regular traffic (open or half-open with a probe in flight).
    pub fn replica_breaker_open(&self, k: usize, slot: usize) -> bool {
        self.inner.health[k][slot].is_open()
    }

    /// Graceful shutdown: closes the queue (new sends fail with
    /// `ShuttingDown`), lets the workers drain every queued request,
    /// and joins them. Queued requests are *served*, not dropped.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        if self.inner.cfg.workers == 0 {
            self.process_queued();
        }
        let mut workers = self.workers.lock().unwrap();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// In-process handle for submitting completion requests.
///
/// A client owns its matrix buffers: [`Client::input_buffer`] hands
/// out a zeroed input, [`Client::send`] moves it (plus a pooled output
/// buffer) into the queue, and the returned [`Completion`] carries
/// both back — recycle it with [`Client::recycle`] and the next
/// request allocates nothing.
pub struct Client {
    inner: Arc<EngineInner>,
    slot: Arc<ResponseSlot>,
    spare_inputs: Vec<Matrix>,
    spare_outputs: Vec<Matrix>,
    pending: bool,
    in_shape: (usize, usize),
    out_shape: (usize, usize),
    retry: Option<RetryPolicy>,
    /// Copy of the in-flight input while a retry policy is active:
    /// error responses do not carry the request buffers back, so
    /// re-sends rebuild the input from this stash.
    retry_stash: Option<Matrix>,
}

impl Client {
    /// A zeroed `n × m` input buffer (recycled when available).
    pub fn input_buffer(&mut self) -> Matrix {
        match self.spare_inputs.pop() {
            Some(mut m) if m.shape() == self.in_shape => {
                m.as_mut_slice().fill(0.0);
                m
            }
            _ => Matrix::zeros(self.in_shape.0, self.in_shape.1),
        }
    }

    fn out_buffer(&mut self) -> Matrix {
        match self.spare_outputs.pop() {
            Some(m) if m.shape() == self.out_shape => m,
            _ => Matrix::zeros(self.out_shape.0, self.out_shape.1),
        }
    }

    fn make_job(
        &mut self,
        input: Matrix,
        time_of_day: usize,
        day_of_week: usize,
        deadline: Option<Instant>,
    ) -> Job {
        let deadline =
            deadline.or_else(|| self.inner.cfg.default_deadline.map(|d| Instant::now() + d));
        Job {
            input,
            out_buf: self.out_buffer(),
            time_of_day,
            day_of_week,
            deadline,
            degraded: false,
            responder: Responder::Slot(Arc::clone(&self.slot)),
            answered: false,
        }
    }

    fn reclaim(&mut self, mut job: Job) {
        // The job never reached the queue: suppress the Drop guard
        // (there is nothing to answer) and keep the buffers.
        job.answered = true;
        self.spare_inputs.push(std::mem::replace(&mut job.input, Matrix::zeros(0, 0)));
        self.spare_outputs.push(std::mem::replace(&mut job.out_buf, Matrix::zeros(0, 0)));
    }

    /// Enqueues a request without blocking; `Overloaded` on a full
    /// queue (the input buffer is retained for the retry).
    pub fn send(
        &mut self,
        input: Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<(), ServeError> {
        self.send_with_deadline(input, time_of_day, day_of_week, None)
    }

    /// Like [`Client::send`] but with an explicit per-request deadline:
    /// if a worker only reaches the request after `deadline`, it
    /// answers `DeadlineExceeded` instead of computing the completion.
    pub fn send_with_deadline(
        &mut self,
        input: Matrix,
        time_of_day: usize,
        day_of_week: usize,
        deadline: Option<Instant>,
    ) -> Result<(), ServeError> {
        assert!(!self.pending, "one outstanding request per client");
        let job = self.make_job(input, time_of_day, day_of_week, deadline);
        match self.inner.queue.try_push(job) {
            Ok(()) => {
                self.inner.counters.requests.fetch_add(1, Ordering::Relaxed);
                self.pending = true;
                Ok(())
            }
            Err(PushError::Full(job)) => {
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                self.reclaim(job);
                Err(ServeError::Overloaded)
            }
            Err(PushError::Closed(job)) => {
                self.reclaim(job);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Enqueues a request, waiting for queue space if necessary.
    pub fn send_blocking(
        &mut self,
        input: Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<(), ServeError> {
        assert!(!self.pending, "one outstanding request per client");
        let job = self.make_job(input, time_of_day, day_of_week, None);
        match self.inner.queue.push(job) {
            Ok(()) => {
                self.inner.counters.requests.fetch_add(1, Ordering::Relaxed);
                self.pending = true;
                Ok(())
            }
            Err(PushError::Full(job)) | Err(PushError::Closed(job)) => {
                self.reclaim(job);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Blocks until the outstanding request is answered.
    ///
    /// # Panics
    /// Panics when no request is outstanding.
    pub fn recv(&mut self) -> Result<Completion, ServeError> {
        assert!(self.pending, "no outstanding request");
        let result = self.slot.wait();
        self.pending = false;
        result
    }

    /// Installs (or clears) the bounded-retry policy honoured by
    /// [`Client::complete`].
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// Convenience: send + receive. With a [`RetryPolicy`] installed
    /// (see [`Client::set_retry_policy`]), retryable failures — queue
    /// full, worker restarting — are retried up to `max_attempts`
    /// times with exponential backoff and deterministic jitter;
    /// `DeadlineExceeded` and every other error return immediately.
    pub fn complete(
        &mut self,
        input: Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<Completion, ServeError> {
        let Some(policy) = self.retry else {
            self.send_blocking(input, time_of_day, day_of_week)?;
            return self.recv();
        };
        // Stash the input first: an error response loses the request
        // buffers, so each re-send rebuilds the input from the stash.
        match &mut self.retry_stash {
            Some(stash) if stash.shape() == input.shape() => stash.copy_from(&input),
            stash => *stash = Some(input.clone()),
        }
        let mut input = input;
        let mut attempt = 1u32;
        loop {
            let result = match self.send(input, time_of_day, day_of_week) {
                Ok(()) => self.recv(),
                Err(e) => Err(e),
            };
            match result {
                Err(e) if RetryPolicy::retryable(&e) && attempt < policy.max_attempts => {
                    self.inner.counters.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                    input = self.input_buffer();
                    input.copy_from(self.retry_stash.as_ref().expect("stashed above"));
                }
                other => return other,
            }
        }
    }

    /// Returns a completion's buffers to this client for reuse.
    pub fn recycle(&mut self, completion: Completion) {
        self.spare_inputs.push(completion.input);
        self.spare_outputs.push(completion.output);
    }

    /// True while a request is in flight.
    pub fn is_pending(&self) -> bool {
        self.pending
    }
}
