//! The batched inference engine: a bounded queue feeding worker
//! threads that coalesce requests into pooled forward passes, with a
//! completion cache per shard in front.
//!
//! Requests carry the **global** weight matrix; the engine routes each
//! one through every shard of the served shard set — cache lookup per
//! shard (keys embed the shard's own generation, so hot-swapping one
//! shard invalidates exactly its entries), one coalesced forward pass
//! per shard over the misses, then each shard's owned rows are
//! scattered back into the caller's global output buffer. With a
//! single shard (K = 1) the view is the identity and the path reduces
//! to the pre-sharding pipeline bit for bit.
//!
//! Buffer discipline: a [`Client`] owns its input/output matrices and
//! round-trips them through the [`Job`] → [`Completion`] cycle, the
//! worker owns an [`InferWorkspace`] plus persistent batch scratch
//! (including per-shard localisation buffers), and the caches reuse
//! evicted buffers — so the K = 1 in-process request path performs
//! **zero heap allocations** once warm (asserted by `gcwc-bench`'s
//! `serve_alloc` test under `count-allocs`).

use crate::cache::{input_signature, CacheKey, CompletionCache};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::ModelRegistry;
use crate::{derive_row_flags, ServeError};
use gcwc::{InferRequest, InferWorkspace};
use gcwc_linalg::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Maximum requests coalesced into one forward pass.
    pub max_batch: usize,
    /// Bounded request-queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Worker threads. `0` runs no threads: callers drain the queue
    /// with [`Engine::process_queued`], which makes batching
    /// deterministic (used by the property tests).
    pub workers: usize,
    /// Completion-cache capacity (`0` disables caching).
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            queue_capacity: 64,
            workers: 1,
            cache_capacity: 256,
            default_deadline: None,
        }
    }
}

/// A completed request: the result plus the caller's buffers, handed
/// back for reuse.
pub struct Completion {
    /// The completed `n × output_cols` weight matrix.
    pub output: Matrix,
    /// The caller's input buffer, returned for the next request.
    pub input: Matrix,
    /// True when every shard served its rows from the completion
    /// cache (no forward pass ran for this request).
    pub cache_hit: bool,
    /// Global generation of the shard-set snapshot that produced the
    /// result.
    pub generation: u64,
    /// Number of shards K the completion was gathered from.
    pub shards: usize,
}

/// One-shot rendezvous a worker fulfils and a client waits on.
struct ResponseSlot {
    value: Mutex<Option<Result<Completion, ServeError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        Self { value: Mutex::new(None), ready: Condvar::new() }
    }

    fn fulfill(&self, result: Result<Completion, ServeError>) {
        let mut g = self.value.lock().unwrap();
        debug_assert!(g.is_none(), "slot fulfilled twice");
        *g = Some(result);
        drop(g);
        self.ready.notify_one();
    }

    fn wait(&self) -> Result<Completion, ServeError> {
        let mut g = self.value.lock().unwrap();
        loop {
            if let Some(result) = g.take() {
                return result;
            }
            g = self.ready.wait(g).unwrap();
        }
    }
}

/// A queued request with its owner's buffers and response slot.
struct Job {
    input: Matrix,
    out_buf: Matrix,
    time_of_day: usize,
    day_of_week: usize,
    deadline: Option<Instant>,
    slot: Arc<ResponseSlot>,
}

impl Job {
    fn respond(self, result: Result<Completion, ServeError>) {
        self.slot.fulfill(result);
    }
}

/// Monotonic request counters.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
}

/// Point-in-time view of the engine counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub requests: u64,
    /// Requests answered (ok or error).
    pub completed: u64,
    /// Forward passes executed (each serving ≥1 cache-missing request).
    pub batches: u64,
    /// Requests refused with `Overloaded`.
    pub rejected: u64,
    /// Requests expired before service.
    pub expired: u64,
    /// Completion-cache hits (summed over per-shard caches).
    pub cache_hits: u64,
    /// Completion-cache misses (summed over per-shard caches).
    pub cache_misses: u64,
    /// Completion-cache evictions (summed over per-shard caches).
    pub cache_evictions: u64,
    /// Current global model generation.
    pub generation: u64,
    /// Number of shards K in the served shard set.
    pub shards: u64,
}

/// Per-worker (or inline-drain) scratch, reused across batches.
struct WorkerState {
    ws: InferWorkspace,
    batch: Vec<Option<Job>>,
    /// Global input signature per live batch slot.
    sigs: Vec<u64>,
    /// Per batch slot: true until some shard misses the cache.
    all_hit: Vec<bool>,
    /// Per-shard scratch: batch indices of the current shard's misses.
    miss_idx: Vec<usize>,
    /// Per-shard scratch: cache keys of the current shard's misses.
    keys: Vec<CacheKey>,
    flags: Vec<Vec<f64>>,
    /// Localised (owned + halo rows) inputs for non-identity shards.
    local_ins: Vec<Matrix>,
    outs: Vec<Matrix>,
}

impl WorkerState {
    fn new(max_batch: usize) -> Self {
        Self {
            ws: InferWorkspace::new(),
            batch: Vec::with_capacity(max_batch),
            sigs: Vec::with_capacity(max_batch),
            all_hit: Vec::with_capacity(max_batch),
            miss_idx: Vec::with_capacity(max_batch),
            keys: Vec::with_capacity(max_batch),
            flags: std::iter::repeat_with(Vec::new).take(max_batch).collect(),
            local_ins: Vec::new(),
            outs: Vec::new(),
        }
    }
}

struct EngineInner {
    queue: BoundedQueue<Job>,
    caches: Vec<Mutex<CompletionCache>>,
    registry: Arc<ModelRegistry>,
    counters: Counters,
    cfg: EngineConfig,
    inline_state: Mutex<WorkerState>,
}

impl EngineInner {
    /// Serves one batch: per-request validation, then per shard —
    /// cache lookups, one coalesced forward pass over that shard's
    /// misses, cache fills, owned-row scatter — and finally one
    /// response per request once every shard has contributed its rows.
    fn serve_batch(&self, state: &mut WorkerState) {
        let snapshot = self.registry.snapshot();
        let num_shards = snapshot.num_shards();
        let (n, m) = (snapshot.num_edges(), snapshot.num_buckets());
        let out_cols = snapshot.output_cols();
        let WorkerState { ws, batch, sigs, all_hit, miss_idx, keys, flags, local_ins, outs } =
            state;
        sigs.clear();
        all_hit.clear();

        // Phase 1: validation, deadlines, global input signatures.
        let now = Instant::now();
        for i in 0..batch.len() {
            let job = batch[i].as_ref().expect("fresh batch slot");
            if job.input.shape() != (n, m) {
                let got = job.input.shape();
                let job = batch[i].take().expect("slot checked above");
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                job.respond(Err(ServeError::BadRequest(format!(
                    "input shape {got:?}, model expects ({n}, {m})"
                ))));
                sigs.push(0);
                all_hit.push(false);
                continue;
            }
            if job.deadline.is_some_and(|d| d < now) {
                let job = batch[i].take().expect("slot checked above");
                self.counters.expired.fetch_add(1, Ordering::Relaxed);
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                job.respond(Err(ServeError::DeadlineExceeded));
                sigs.push(0);
                all_hit.push(false);
                continue;
            }
            sigs.push(input_signature(&job.input));
            all_hit.push(true);
        }

        // Phase 2: route through every shard — lookups, one forward
        // pass per shard with misses, cache fills, owned-row scatter.
        for s in 0..num_shards {
            let shard = snapshot.shard(s);
            let view = snapshot.view(s);
            miss_idx.clear();
            keys.clear();
            {
                let mut cache = self.caches[s].lock().unwrap();
                for i in 0..batch.len() {
                    let Some(job) = batch[i].as_mut() else { continue };
                    let key = CacheKey {
                        generation: shard.generation,
                        time_of_day: job.time_of_day,
                        day_of_week: job.day_of_week,
                        signature: sigs[i],
                    };
                    if let Some(cached) = cache.get(&key) {
                        // Cached value is the shard's owned row block.
                        view.scatter_owned(cached, &mut job.out_buf);
                    } else {
                        keys.push(key);
                        miss_idx.push(i);
                        all_hit[i] = false;
                    }
                }
            }
            if miss_idx.is_empty() {
                continue;
            }

            let count = miss_idx.len();
            let local_n = view.num_local();
            let identity = view.is_identity();
            if !identity {
                for slot in local_ins.iter_mut() {
                    if slot.shape() != (local_n, m) {
                        let stale = std::mem::replace(slot, ws.take(local_n, m));
                        ws.give(stale);
                    }
                }
                while local_ins.len() < count {
                    let fresh = ws.take(local_n, m);
                    local_ins.push(fresh);
                }
            }
            for (r, &i) in miss_idx.iter().enumerate() {
                let job = batch[i].as_ref().expect("miss slots are live");
                if identity {
                    derive_row_flags(&job.input, &mut flags[r]);
                } else {
                    view.select_into(&job.input, &mut local_ins[r]);
                    derive_row_flags(&local_ins[r], &mut flags[r]);
                }
            }
            for slot in outs.iter_mut() {
                if slot.shape() != (local_n, out_cols) {
                    let stale = std::mem::replace(slot, ws.take(local_n, out_cols));
                    ws.give(stale);
                }
            }
            while outs.len() < count {
                let fresh = ws.take(local_n, out_cols);
                outs.push(fresh);
            }
            {
                let batch_ref: &Vec<Option<Job>> = batch;
                let miss_ref: &Vec<usize> = miss_idx;
                let flags_ref: &Vec<Vec<f64>> = flags;
                let local_ref: &Vec<Matrix> = local_ins;
                shard.model.infer_into(
                    ws,
                    count,
                    |r| {
                        let job = batch_ref[miss_ref[r]].as_ref().expect("miss slots are live");
                        InferRequest {
                            input: if identity { &job.input } else { &local_ref[r] },
                            time_of_day: job.time_of_day,
                            day_of_week: job.day_of_week,
                            row_flags: &flags_ref[r],
                        }
                    },
                    &mut outs[..count],
                );
            }
            self.counters.batches.fetch_add(1, Ordering::Relaxed);

            {
                let mut cache = self.caches[s].lock().unwrap();
                for (r, &i) in miss_idx.iter().enumerate() {
                    let job = batch[i].as_mut().expect("miss slots are live");
                    cache.insert_rows(keys[r], &outs[r], view.num_owned());
                    view.scatter_owned(&outs[r], &mut job.out_buf);
                }
            }
        }

        // Phase 3: one response per surviving request.
        for i in 0..batch.len() {
            let Some(mut job) = batch[i].take() else { continue };
            let completion = Completion {
                output: std::mem::replace(&mut job.out_buf, Matrix::zeros(0, 0)),
                input: std::mem::replace(&mut job.input, Matrix::zeros(0, 0)),
                cache_hit: all_hit[i],
                generation: snapshot.generation,
                shards: num_shards,
            };
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
            job.respond(Ok(completion));
        }
        batch.clear();
    }

    /// Worker loop: blocking pop for the first job, opportunistic pops
    /// up to `max_batch`, then serve. Exits once the queue is closed
    /// and drained.
    fn run_worker(&self, state: &mut WorkerState) {
        while let Some(job) = self.queue.pop() {
            state.batch.clear();
            state.batch.push(Some(job));
            while state.batch.len() < self.cfg.max_batch {
                match self.queue.try_pop() {
                    Some(j) => state.batch.push(Some(j)),
                    None => break,
                }
            }
            self.serve_batch(state);
        }
    }
}

/// The batched, cached inference engine. Create with [`Engine::new`],
/// obtain per-caller [`Client`]s, and stop with [`Engine::shutdown`]
/// (which drains all in-flight requests before returning).
pub struct Engine {
    inner: Arc<EngineInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Engine {
    /// Starts an engine serving `registry` with `cfg.workers` threads.
    pub fn new(registry: Arc<ModelRegistry>, cfg: EngineConfig) -> Self {
        let max_batch = cfg.max_batch.max(1);
        let num_shards = registry.num_shards();
        let caches =
            (0..num_shards).map(|_| Mutex::new(CompletionCache::new(cfg.cache_capacity))).collect();
        let inner = Arc::new(EngineInner {
            queue: BoundedQueue::new(cfg.queue_capacity),
            caches,
            registry,
            counters: Counters::default(),
            cfg: EngineConfig { max_batch, ..cfg },
            inline_state: Mutex::new(WorkerState::new(max_batch)),
        });
        let mut workers = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let inner = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("gcwc-serve-{w}"))
                .spawn(move || {
                    let mut state = WorkerState::new(inner.cfg.max_batch);
                    inner.run_worker(&mut state);
                })
                .expect("spawn worker");
            workers.push(handle);
        }
        Self { inner, workers: Mutex::new(workers) }
    }

    /// Creates an in-process client (one outstanding request at a
    /// time; use several clients for concurrency).
    pub fn client(&self) -> Client {
        let snapshot = self.inner.registry.snapshot();
        Client {
            inner: Arc::clone(&self.inner),
            slot: Arc::new(ResponseSlot::new()),
            spare_inputs: Vec::new(),
            spare_outputs: Vec::new(),
            pending: false,
            in_shape: (snapshot.num_edges(), snapshot.num_buckets()),
            out_shape: (snapshot.num_edges(), snapshot.output_cols()),
        }
    }

    /// The registry behind this engine.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.inner.registry
    }

    /// Drains every currently queued request inline on the calling
    /// thread, batching up to `max_batch` per forward pass. This is
    /// the serving path when `workers == 0` (deterministic batching);
    /// with worker threads running it is unnecessary but harmless.
    pub fn process_queued(&self) {
        let mut state = self.inner.inline_state.lock().unwrap();
        while let Some(job) = self.inner.queue.try_pop() {
            state.batch.clear();
            state.batch.push(Some(job));
            while state.batch.len() < self.inner.cfg.max_batch {
                match self.inner.queue.try_pop() {
                    Some(j) => state.batch.push(Some(j)),
                    None => break,
                }
            }
            self.inner.serve_batch(&mut state);
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.inner.counters;
        let (mut cache_hits, mut cache_misses, mut cache_evictions) = (0u64, 0u64, 0u64);
        for cache in &self.inner.caches {
            let (h, m, e) = cache.lock().unwrap().stats();
            cache_hits += h;
            cache_misses += m;
            cache_evictions += e;
        }
        StatsSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_evictions,
            generation: self.inner.registry.generation(),
            shards: self.inner.caches.len() as u64,
        }
    }

    /// Graceful shutdown: closes the queue (new sends fail with
    /// `ShuttingDown`), lets the workers drain every queued request,
    /// and joins them. Queued requests are *served*, not dropped.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        if self.inner.cfg.workers == 0 {
            self.process_queued();
        }
        let mut workers = self.workers.lock().unwrap();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// In-process handle for submitting completion requests.
///
/// A client owns its matrix buffers: [`Client::input_buffer`] hands
/// out a zeroed input, [`Client::send`] moves it (plus a pooled output
/// buffer) into the queue, and the returned [`Completion`] carries
/// both back — recycle it with [`Client::recycle`] and the next
/// request allocates nothing.
pub struct Client {
    inner: Arc<EngineInner>,
    slot: Arc<ResponseSlot>,
    spare_inputs: Vec<Matrix>,
    spare_outputs: Vec<Matrix>,
    pending: bool,
    in_shape: (usize, usize),
    out_shape: (usize, usize),
}

impl Client {
    /// A zeroed `n × m` input buffer (recycled when available).
    pub fn input_buffer(&mut self) -> Matrix {
        match self.spare_inputs.pop() {
            Some(mut m) if m.shape() == self.in_shape => {
                m.as_mut_slice().fill(0.0);
                m
            }
            _ => Matrix::zeros(self.in_shape.0, self.in_shape.1),
        }
    }

    fn out_buffer(&mut self) -> Matrix {
        match self.spare_outputs.pop() {
            Some(m) if m.shape() == self.out_shape => m,
            _ => Matrix::zeros(self.out_shape.0, self.out_shape.1),
        }
    }

    fn make_job(
        &mut self,
        input: Matrix,
        time_of_day: usize,
        day_of_week: usize,
        deadline: Option<Instant>,
    ) -> Job {
        let deadline =
            deadline.or_else(|| self.inner.cfg.default_deadline.map(|d| Instant::now() + d));
        Job {
            input,
            out_buf: self.out_buffer(),
            time_of_day,
            day_of_week,
            deadline,
            slot: Arc::clone(&self.slot),
        }
    }

    fn reclaim(&mut self, job: Job) {
        self.spare_inputs.push(job.input);
        self.spare_outputs.push(job.out_buf);
    }

    /// Enqueues a request without blocking; `Overloaded` on a full
    /// queue (the input buffer is retained for the retry).
    pub fn send(
        &mut self,
        input: Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<(), ServeError> {
        self.send_with_deadline(input, time_of_day, day_of_week, None)
    }

    /// Like [`Client::send`] but with an explicit per-request deadline:
    /// if a worker only reaches the request after `deadline`, it
    /// answers `DeadlineExceeded` instead of computing the completion.
    pub fn send_with_deadline(
        &mut self,
        input: Matrix,
        time_of_day: usize,
        day_of_week: usize,
        deadline: Option<Instant>,
    ) -> Result<(), ServeError> {
        assert!(!self.pending, "one outstanding request per client");
        let job = self.make_job(input, time_of_day, day_of_week, deadline);
        match self.inner.queue.try_push(job) {
            Ok(()) => {
                self.inner.counters.requests.fetch_add(1, Ordering::Relaxed);
                self.pending = true;
                Ok(())
            }
            Err(PushError::Full(job)) => {
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                self.reclaim(job);
                Err(ServeError::Overloaded)
            }
            Err(PushError::Closed(job)) => {
                self.reclaim(job);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Enqueues a request, waiting for queue space if necessary.
    pub fn send_blocking(
        &mut self,
        input: Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<(), ServeError> {
        assert!(!self.pending, "one outstanding request per client");
        let job = self.make_job(input, time_of_day, day_of_week, None);
        match self.inner.queue.push(job) {
            Ok(()) => {
                self.inner.counters.requests.fetch_add(1, Ordering::Relaxed);
                self.pending = true;
                Ok(())
            }
            Err(PushError::Full(job)) | Err(PushError::Closed(job)) => {
                self.reclaim(job);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Blocks until the outstanding request is answered.
    ///
    /// # Panics
    /// Panics when no request is outstanding.
    pub fn recv(&mut self) -> Result<Completion, ServeError> {
        assert!(self.pending, "no outstanding request");
        let result = self.slot.wait();
        self.pending = false;
        result
    }

    /// Convenience: blocking send + receive.
    pub fn complete(
        &mut self,
        input: Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<Completion, ServeError> {
        self.send_blocking(input, time_of_day, day_of_week)?;
        self.recv()
    }

    /// Returns a completion's buffers to this client for reuse.
    pub fn recycle(&mut self, completion: Completion) {
        self.spare_inputs.push(completion.input);
        self.spare_outputs.push(completion.output);
    }

    /// True while a request is in flight.
    pub fn is_pending(&self) -> bool {
        self.pending
    }
}
