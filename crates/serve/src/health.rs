//! Per-shard health tracking: a circuit breaker in front of each
//! shard's forward pass.
//!
//! Workers report every forward attempt's outcome. After
//! [`BreakerConfig::failure_threshold`] *consecutive* failures the
//! breaker **opens**: attempts are denied (the engine degrades the
//! shard's rows instead of computing them) until
//! [`BreakerConfig::cooldown`] has elapsed, at which point exactly one
//! batch is admitted as a **half-open probe**. A successful probe
//! closes the breaker; a failed probe re-opens it for another
//! cooldown. Sporadic failures below the threshold never open the
//! breaker — each success resets the consecutive-failure count.
//!
//! ```text
//!            R consecutive failures
//!   Closed ───────────────────────────▶ Open (deny until t+cooldown)
//!     ▲                                   │ cooldown elapsed
//!     │ probe succeeds                    ▼
//!     └─────────────────────────────── HalfOpen (admit one probe)
//!                                         │ probe fails
//!                                         └────▶ Open again
//! ```

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Circuit-breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive forward failures that trip the breaker (R).
    pub failure_threshold: u32,
    /// How long an open breaker denies attempts before admitting a
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 3, cooldown: Duration::from_millis(250) }
    }
}

/// The verdict for one batch's forward attempt against a shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The shard is believed healthy — run the forward pass.
    Allow,
    /// The breaker is open (or a probe is already in flight) — skip
    /// the forward pass and degrade the shard's rows.
    Deny,
}

#[derive(Clone, Copy, Debug)]
enum State {
    Closed {
        consecutive_failures: u32,
    },
    Open {
        until: Instant,
    },
    /// One probe admitted, result pending.
    HalfOpen,
}

/// One shard's breaker.
pub struct ShardHealth {
    cfg: BreakerConfig,
    state: Mutex<State>,
}

impl ShardHealth {
    /// A closed (healthy) breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self { cfg, state: Mutex::new(State::Closed { consecutive_failures: 0 }) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Decides whether a batch may attempt this shard's forward pass
    /// at time `now`. An expired open breaker admits exactly one
    /// caller as the half-open probe; concurrent batches are denied
    /// until that probe reports back.
    pub fn admit(&self, now: Instant) -> Admission {
        let mut state = self.lock();
        match *state {
            State::Closed { .. } => Admission::Allow,
            State::Open { until } if now >= until => {
                *state = State::HalfOpen;
                Admission::Allow
            }
            State::Open { .. } | State::HalfOpen => Admission::Deny,
        }
    }

    /// Reports a successful forward pass: closes the breaker and
    /// resets the consecutive-failure count.
    pub fn record_success(&self) {
        *self.lock() = State::Closed { consecutive_failures: 0 };
    }

    /// Reports a failed forward pass (panic or injected error).
    /// Returns `true` when this failure *opened* the breaker (for the
    /// `breaker_open` counter): the threshold was just reached, or a
    /// half-open probe failed.
    pub fn record_failure(&self, now: Instant) -> bool {
        let mut state = self.lock();
        match *state {
            State::Closed { consecutive_failures } => {
                let failures = consecutive_failures + 1;
                if failures >= self.cfg.failure_threshold {
                    *state = State::Open { until: now + self.cfg.cooldown };
                    true
                } else {
                    *state = State::Closed { consecutive_failures: failures };
                    false
                }
            }
            State::HalfOpen => {
                *state = State::Open { until: now + self.cfg.cooldown };
                true
            }
            // Late failure report while already open: extending the
            // cooldown would let a failure storm starve the probe.
            State::Open { .. } => false,
        }
    }

    /// True while the breaker denies regular traffic (open or probing).
    pub fn is_open(&self) -> bool {
        !matches!(*self.lock(), State::Closed { .. })
    }

    /// Non-mutating routing view of the breaker: `true` when a request
    /// routed here at `now` could be admitted — the breaker is closed,
    /// or it is open but the cooldown has elapsed (the request would be
    /// admitted as the half-open probe). Unlike [`ShardHealth::admit`]
    /// this never consumes the probe, so the router may evaluate every
    /// replica of a group without racing the probe away.
    pub fn routable(&self, now: Instant) -> bool {
        match *self.lock() {
            State::Closed { .. } => true,
            State::Open { until } => now >= until,
            State::HalfOpen => false,
        }
    }

    /// Resets the breaker to closed with a clean failure streak — the
    /// state for a freshly promoted replica incarnation, whose history
    /// does not inherit its predecessor's failures.
    pub fn reset(&self) {
        *self.lock() = State::Closed { consecutive_failures: 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health(threshold: u32, cooldown_ms: u64) -> ShardHealth {
        ShardHealth::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn failures_below_threshold_stay_closed() {
        let h = health(3, 10);
        let now = Instant::now();
        assert!(!h.record_failure(now));
        assert!(!h.record_failure(now));
        assert!(!h.is_open());
        assert_eq!(h.admit(now), Admission::Allow);
    }

    #[test]
    fn success_resets_the_streak() {
        let h = health(2, 10);
        let now = Instant::now();
        assert!(!h.record_failure(now));
        h.record_success();
        assert!(!h.record_failure(now), "streak must restart after a success");
        assert!(!h.is_open());
    }

    #[test]
    fn threshold_opens_then_cooldown_admits_one_probe() {
        let h = health(2, 50);
        let t0 = Instant::now();
        assert!(!h.record_failure(t0));
        assert!(h.record_failure(t0), "second consecutive failure trips the breaker");
        assert!(h.is_open());
        assert_eq!(h.admit(t0), Admission::Deny);
        let later = t0 + Duration::from_millis(60);
        assert_eq!(h.admit(later), Admission::Allow, "expired breaker admits a probe");
        assert_eq!(h.admit(later), Admission::Deny, "only one probe at a time");
        h.record_success();
        assert!(!h.is_open());
        assert_eq!(h.admit(later), Admission::Allow);
    }

    #[test]
    fn failed_probe_reopens() {
        let h = health(1, 50);
        let t0 = Instant::now();
        assert!(h.record_failure(t0));
        let later = t0 + Duration::from_millis(60);
        assert_eq!(h.admit(later), Admission::Allow);
        assert!(h.record_failure(later), "failed probe re-opens the breaker");
        assert_eq!(h.admit(later), Admission::Deny);
    }
}
