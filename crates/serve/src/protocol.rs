//! Newline-delimited text wire protocol.
//!
//! Requests (one per line):
//!
//! ```text
//! complete <time> <day> <rows> <cols> <hex…>             completion request
//! tcomplete <tenant> <time> <day> <rows> <cols> <hex…>   tenant-scoped completion
//! stats                                                  engine counters
//! tstats <tenant>                                        tenant-scoped counters
//! ping                                                   liveness probe
//! quit                                                   close the connection
//! ```
//!
//! Responses:
//!
//! ```text
//! ok <rows> <cols> <hit 0|1> <generation> <shards> <hex…>
//! degraded <rows> <cols> <hit 0|1> <generation> <shards> <hex…>
//! tok <tenant> <graph_gen> <rows> <cols> <hit 0|1> <generation> <shards> <hex…>
//! tdegraded <tenant> <graph_gen> <rows> <cols> <hit 0|1> <generation> <shards> <hex…>
//! stats <requests> <completed> <batches> <hits> <misses> <evictions> <generation> <shards>
//!       <worker_restarts> <breaker_open> <degraded_responses> <retries>
//!       <records_ingested> <slots_sealed> <late_records_dropped>
//!       <refreshes_applied> <refreshes_rolled_back> <generation_age>
//!       <replicas> <replica_failovers> <replica_promotions>
//! tstats <tenant> <25 fields: requests completed batches rejected expired hits misses
//!        evictions generation shards worker_restarts breaker_open degraded_responses
//!        retries records_ingested slots_sealed late_records_dropped refreshes_applied
//!        refreshes_rolled_back generation_age graph_generation quota_rejected
//!        replicas replica_failovers replica_promotions>
//! pong
//! bye
//! err <code> <message…>
//! ```
//!
//! The tenant forms (`tcomplete`/`tstats`, answered `tok`/`tdegraded`/
//! `tstats <tenant> …`) scope a request to one registered
//! [`crate::TenantId`] and carry the tenant's **graph generation** so
//! clients detect topology swaps. The legacy tenant-less forms map to
//! the default tenant (id 0) with byte-identical responses, so
//! single-tenant deployments are unaffected. `tstats` reports the full
//! 25-field [`StatsSnapshot`] in declaration order (the legacy `stats`
//! line keeps its historical prefix — which skips `rejected`,
//! `expired`, and the two tenant-layer fields — plus the three
//! trailing replica counters, 21 fields in all).
//!
//! `degraded` has the exact layout of `ok` but signals a *partial*
//! completion: at least one shard could not compute and its owned
//! rows carry the row-prior `P(Z)` instead (healthy shards' rows are
//! exact). A fully healthy response is always the `ok` keyword, so
//! healthy traffic is byte-identical to pre-degradation builds.
//!
//! Matrix entries travel as the `{:016x}` hexadecimal bit patterns of
//! their `f64` values (the same encoding the checkpoint format uses),
//! so a served completion is **bit-exact** across the wire.

use crate::engine::StatsSnapshot;
use crate::ServeError;
use gcwc_linalg::Matrix;

/// Upper bound on matrix entries accepted from the wire. Shapes are
/// validated (overflow-checked) against this *before* any allocation,
/// so a malicious `rows`/`cols` pair cannot force a huge reservation.
pub const MAX_WIRE_ELEMS: usize = 1 << 22;

/// Bytes each wire matrix entry occupies: a space plus 16 hex digits.
pub const WIRE_ELEM_BYTES: usize = 17;

/// Validates a wire matrix shape and returns the element count.
fn checked_elems(rows: usize, cols: usize) -> Result<usize, ServeError> {
    rows.checked_mul(cols).filter(|&t| t <= MAX_WIRE_ELEMS).ok_or_else(|| {
        ServeError::Protocol(format!(
            "matrix shape {rows}x{cols} exceeds the wire limit of {MAX_WIRE_ELEMS} entries"
        ))
    })
}

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Complete the given observed weight matrix under a context.
    Complete {
        /// Time-of-day interval index.
        time_of_day: usize,
        /// Day-of-week index.
        day_of_week: usize,
        /// Observed `rows × cols` weight matrix.
        input: Matrix,
    },
    /// [`Complete`](Request::Complete) scoped to one tenant.
    TComplete {
        /// Target tenant id.
        tenant: u64,
        /// Time-of-day interval index.
        time_of_day: usize,
        /// Day-of-week index.
        day_of_week: usize,
        /// Observed `rows × cols` weight matrix.
        input: Matrix,
    },
    /// Report engine counters.
    Stats,
    /// Report one tenant's counters (all 25 snapshot fields).
    TStats {
        /// Target tenant id.
        tenant: u64,
    },
    /// Liveness probe.
    Ping,
    /// Close the connection.
    Quit,
}

/// Parses the `<time> <day> <rows> <cols> <hex…>` tail shared by the
/// `complete` and `tcomplete` forms.
fn parse_complete_body(
    tokens: &mut std::str::SplitWhitespace<'_>,
    line: &str,
) -> Result<(usize, usize, Matrix), ServeError> {
    let time_of_day = parse_usize(tokens.next(), "time")?;
    let day_of_week = parse_usize(tokens.next(), "day")?;
    let rows = parse_usize(tokens.next(), "rows")?;
    let cols = parse_usize(tokens.next(), "cols")?;
    let total = checked_elems(rows, cols)?;
    // Reserve no more than the line itself could carry, so a
    // short line claiming a big shape cannot reserve much.
    let mut data = Vec::with_capacity(total.min(line.len() / WIRE_ELEM_BYTES + 1));
    for _ in 0..total {
        let tok =
            tokens.next().ok_or_else(|| ServeError::Protocol("truncated matrix data".into()))?;
        let v = parse_f64_hex(tok)?;
        // The hex encoding can smuggle any bit pattern; a NaN
        // or ±Inf here would flow straight into inference and
        // poison every row it convolves with.
        if !v.is_finite() {
            return Err(ServeError::Protocol(format!("non-finite matrix entry {tok}")));
        }
        data.push(v);
    }
    if tokens.next().is_some() {
        return Err(ServeError::Protocol("trailing tokens after matrix".into()));
    }
    // Observed rows are (unnormalised) histogram mass. A row
    // whose entries cancel to exactly zero mass while carrying
    // negative entries is indistinguishable from a missing row
    // by total mass but not all-missing — normalisation would
    // divide by zero downstream. Reject it as malformed.
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        if row.iter().sum::<f64>() == 0.0 && row.iter().any(|&v| v < 0.0) {
            return Err(ServeError::Protocol(format!(
                "row {r} has zero total mass but negative entries"
            )));
        }
    }
    Ok((time_of_day, day_of_week, Matrix::from_vec(rows, cols, data)))
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let mut tokens = line.split_whitespace();
    match tokens.next() {
        Some("complete") => {
            let (time_of_day, day_of_week, input) = parse_complete_body(&mut tokens, line)?;
            Ok(Request::Complete { time_of_day, day_of_week, input })
        }
        Some("tcomplete") => {
            let tenant = parse_usize(tokens.next(), "tenant")? as u64;
            let (time_of_day, day_of_week, input) = parse_complete_body(&mut tokens, line)?;
            Ok(Request::TComplete { tenant, time_of_day, day_of_week, input })
        }
        Some("stats") => Ok(Request::Stats),
        Some("tstats") => {
            let tenant = parse_usize(tokens.next(), "tenant")? as u64;
            if tokens.next().is_some() {
                return Err(ServeError::Protocol("trailing tokens after tenant".into()));
            }
            Ok(Request::TStats { tenant })
        }
        Some("ping") => Ok(Request::Ping),
        Some("quit") => Ok(Request::Quit),
        Some(other) => Err(ServeError::Protocol(format!("unknown command {other:?}"))),
        None => Err(ServeError::Protocol("empty request".into())),
    }
}

fn parse_usize(tok: Option<&str>, what: &str) -> Result<usize, ServeError> {
    tok.ok_or_else(|| ServeError::Protocol(format!("missing {what}")))?
        .parse()
        .map_err(|_| ServeError::Protocol(format!("bad {what}")))
}

/// Parses one `{:016x}` f64 bit pattern.
pub fn parse_f64_hex(tok: &str) -> Result<f64, ServeError> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| ServeError::Protocol(format!("bad hex value {tok:?}")))
}

/// Appends a matrix as space-separated `{:016x}` bit patterns.
pub fn write_matrix_hex(buf: &mut String, m: &Matrix) {
    use std::fmt::Write;
    for &v in m.as_slice() {
        let _ = write!(buf, " {:016x}", v.to_bits());
    }
}

/// Renders the `ok` (or, for partial completions, `degraded`)
/// response line (no trailing newline). The two keywords share one
/// layout; `ok` is emitted exactly as before degradation existed, so
/// healthy responses stay byte-identical.
pub fn write_ok(
    buf: &mut String,
    output: &Matrix,
    cache_hit: bool,
    generation: u64,
    shards: usize,
    degraded: bool,
) {
    use std::fmt::Write;
    let _ = write!(
        buf,
        "{} {} {} {} {} {}",
        if degraded { "degraded" } else { "ok" },
        output.rows(),
        output.cols(),
        u8::from(cache_hit),
        generation,
        shards
    );
    write_matrix_hex(buf, output);
}

/// Renders the `tok` (or `tdegraded`) response line (no trailing
/// newline): the tenant id and its graph generation, then the exact
/// legacy `ok`/`degraded` tail.
#[allow(clippy::too_many_arguments)]
pub fn write_tok(
    buf: &mut String,
    tenant: u64,
    graph_generation: u64,
    output: &Matrix,
    cache_hit: bool,
    generation: u64,
    shards: usize,
    degraded: bool,
) {
    use std::fmt::Write;
    let _ = write!(
        buf,
        "{} {} {} {} {} {} {} {}",
        if degraded { "tdegraded" } else { "tok" },
        tenant,
        graph_generation,
        output.rows(),
        output.cols(),
        u8::from(cache_hit),
        generation,
        shards
    );
    write_matrix_hex(buf, output);
}

/// Renders the `err` response line (no trailing newline).
pub fn write_err(buf: &mut String, err: &ServeError) {
    use std::fmt::Write;
    let _ = write!(buf, "err {} {}", err.code(), err);
}

/// Renders the `stats` response line (no trailing newline). The six
/// ingestion fields (records ingested, slots sealed, late drops,
/// refreshes applied / rolled back, generation age) and the three
/// replica fields (replicas, failovers, promotions) trail the original
/// serving counters so existing positional consumers keep working.
pub fn write_stats(buf: &mut String, s: &StatsSnapshot) {
    use std::fmt::Write;
    let _ = write!(
        buf,
        "stats {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        s.requests,
        s.completed,
        s.batches,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.generation,
        s.shards,
        s.worker_restarts,
        s.breaker_open,
        s.degraded_responses,
        s.retries,
        s.records_ingested,
        s.slots_sealed,
        s.late_records_dropped,
        s.refreshes_applied,
        s.refreshes_rolled_back,
        s.generation_age,
        s.replicas,
        s.replica_failovers,
        s.replica_promotions
    );
}

/// Renders one tenant's `tstats` response line (no trailing newline):
/// the tenant id followed by all [`StatsSnapshot::TENANT_FIELDS`]
/// counters in declaration order.
pub fn write_tstats(buf: &mut String, tenant: u64, s: &StatsSnapshot) {
    use std::fmt::Write;
    let _ = write!(buf, "tstats {tenant}");
    for field in s.tenant_fields() {
        let _ = write!(buf, " {field}");
    }
}

/// Parses a `tstats` response line back into `(tenant, snapshot)`.
pub fn parse_tstats_response(line: &str) -> Result<(u64, StatsSnapshot), ServeError> {
    let mut tokens = line.split_whitespace();
    match tokens.next() {
        Some("tstats") => {
            let tenant = parse_usize(tokens.next(), "tenant")? as u64;
            let mut fields = [0u64; StatsSnapshot::TENANT_FIELDS];
            for slot in fields.iter_mut() {
                *slot = parse_usize(tokens.next(), "stats field")? as u64;
            }
            if tokens.next().is_some() {
                return Err(ServeError::Protocol("trailing tokens after stats".into()));
            }
            Ok((tenant, StatsSnapshot::from_tenant_fields(fields)))
        }
        Some("err") => {
            let code = tokens.next().unwrap_or("unknown");
            let rest: Vec<&str> = tokens.collect();
            Err(remote_error(code, &rest.join(" ")))
        }
        other => Err(ServeError::Protocol(format!("unexpected response {other:?}"))),
    }
}

/// A parsed `ok` or `degraded` response.
#[derive(Debug)]
pub struct OkResponse {
    /// The completed matrix.
    pub output: Matrix,
    /// Whether the completion came from the cache.
    pub cache_hit: bool,
    /// True for a `degraded` response: at least one shard's owned
    /// rows are the row-prior `P(Z)` rather than computed values.
    pub degraded: bool,
    /// Model generation that produced it.
    pub generation: u64,
    /// Number of shards K the completion was gathered from.
    pub shards: usize,
}

/// Parses a server response to a `complete` request.
pub fn parse_complete_response(line: &str) -> Result<OkResponse, ServeError> {
    let mut tokens = line.split_whitespace();
    match tokens.next() {
        head @ (Some("ok") | Some("degraded")) => {
            let rows = parse_usize(tokens.next(), "rows")?;
            let cols = parse_usize(tokens.next(), "cols")?;
            let hit = parse_usize(tokens.next(), "hit")?;
            let generation = parse_usize(tokens.next(), "generation")? as u64;
            let shards = parse_usize(tokens.next(), "shards")?;
            let total = checked_elems(rows, cols)?;
            let mut data = Vec::with_capacity(total.min(line.len() / WIRE_ELEM_BYTES + 1));
            for _ in 0..total {
                let tok = tokens
                    .next()
                    .ok_or_else(|| ServeError::Protocol("truncated response".into()))?;
                data.push(parse_f64_hex(tok)?);
            }
            Ok(OkResponse {
                output: Matrix::from_vec(rows, cols, data),
                cache_hit: hit != 0,
                degraded: head == Some("degraded"),
                generation,
                shards,
            })
        }
        Some("err") => {
            let code = tokens.next().unwrap_or("unknown");
            let rest: Vec<&str> = tokens.collect();
            Err(remote_error(code, &rest.join(" ")))
        }
        other => Err(ServeError::Protocol(format!("unexpected response {other:?}"))),
    }
}

/// A parsed `tok` or `tdegraded` response.
#[derive(Debug)]
pub struct TokResponse {
    /// The tenant that served the completion.
    pub tenant: u64,
    /// The tenant's graph-topology generation at serve time; a bump
    /// between two responses means a [`gcwc_graph::GraphDelta`] was
    /// applied in between and row indices may have shifted.
    pub graph_generation: u64,
    /// The legacy response body.
    pub body: OkResponse,
}

/// Parses a server response to a `tcomplete` request.
pub fn parse_tcomplete_response(line: &str) -> Result<TokResponse, ServeError> {
    let mut tokens = line.split_whitespace();
    match tokens.next() {
        head @ (Some("tok") | Some("tdegraded")) => {
            let tenant = parse_usize(tokens.next(), "tenant")? as u64;
            let graph_generation = parse_usize(tokens.next(), "graph generation")? as u64;
            // The tail is exactly the legacy layout; reuse its parser
            // by re-prefixing the matching legacy keyword.
            let keyword = if head == Some("tdegraded") { "degraded" } else { "ok" };
            let rest: Vec<&str> = tokens.collect();
            let body = parse_complete_response(&format!("{keyword} {}", rest.join(" ")))?;
            Ok(TokResponse { tenant, graph_generation, body })
        }
        Some("err") => {
            let code = tokens.next().unwrap_or("unknown");
            let rest: Vec<&str> = tokens.collect();
            Err(remote_error(code, &rest.join(" ")))
        }
        other => Err(ServeError::Protocol(format!("unexpected response {other:?}"))),
    }
}

/// Maps a wire error code back onto a [`ServeError`] (shared by the
/// text response parser and the binary codec in [`crate::wire`]).
pub(crate) fn remote_error(code: &str, message: &str) -> ServeError {
    match code {
        "overloaded" => ServeError::Overloaded,
        "deadline" => ServeError::DeadlineExceeded,
        "shutdown" => ServeError::ShuttingDown,
        "restarting" => ServeError::ShardRestarting,
        "failing_over" => ServeError::ReplicaFailingOver,
        "bad_request" => ServeError::BadRequest(message.to_owned()),
        "quota" => ServeError::QuotaExceeded,
        // `tenant <id> is not registered` — recover the id when the
        // message carries it in the documented position.
        "unknown_tenant" => ServeError::UnknownTenant(
            message.split_whitespace().nth(1).and_then(|t| t.parse().ok()).unwrap_or(0),
        ),
        _ => ServeError::Protocol(format!("{code}: {message}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_roundtrip_is_bit_exact() {
        let m = Matrix::from_vec(2, 2, vec![0.1, -2.5, f64::MIN_POSITIVE, 3.0e300]);
        let mut line = String::from("complete 3 5 2 2");
        write_matrix_hex(&mut line, &m);
        match parse_request(&line).unwrap() {
            Request::Complete { time_of_day, day_of_week, input } => {
                assert_eq!((time_of_day, day_of_week), (3, 5));
                assert_eq!(input, m);
            }
            _ => panic!("expected Complete"),
        }
    }

    #[test]
    fn ok_response_roundtrip() {
        let m = Matrix::from_vec(1, 3, vec![0.25, 0.5, 0.25]);
        let mut line = String::new();
        write_ok(&mut line, &m, true, 7, 2, false);
        assert!(line.starts_with("ok "), "healthy responses keep the ok keyword: {line:?}");
        let r = parse_complete_response(&line).unwrap();
        assert_eq!(r.output, m);
        assert!(r.cache_hit);
        assert!(!r.degraded);
        assert_eq!(r.generation, 7);
        assert_eq!(r.shards, 2);
    }

    #[test]
    fn degraded_response_roundtrip() {
        let m = Matrix::from_vec(1, 3, vec![0.25, 0.5, 0.25]);
        let mut line = String::new();
        write_ok(&mut line, &m, false, 7, 2, true);
        assert!(line.starts_with("degraded "), "got {line:?}");
        let r = parse_complete_response(&line).unwrap();
        assert_eq!(r.output, m);
        assert!(r.degraded);
        // Same layout as ok apart from the keyword.
        let mut ok_line = String::new();
        write_ok(&mut ok_line, &m, false, 7, 2, false);
        assert_eq!(line.strip_prefix("degraded"), ok_line.strip_prefix("ok"));
    }

    #[test]
    fn non_finite_inputs_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let m = Matrix::from_vec(1, 2, vec![0.5, bad]);
            let mut line = String::from("complete 0 0 1 2");
            write_matrix_hex(&mut line, &m);
            let err = parse_request(&line).unwrap_err();
            assert!(
                err.to_string().contains("non-finite"),
                "value {bad} must be rejected, got {err}"
            );
        }
    }

    #[test]
    fn zero_mass_rows_with_negative_entries_are_rejected() {
        // Row sums to exactly zero while carrying negative mass.
        let m = Matrix::from_vec(2, 2, vec![0.5, 0.5, -1.0, 1.0]);
        let mut line = String::from("complete 0 0 2 2");
        write_matrix_hex(&mut line, &m);
        let err = parse_request(&line).unwrap_err();
        assert!(err.to_string().contains("row 1"), "got {err}");
        // Negative entries with non-zero mass still parse (the wire
        // carries raw observations; see complete_roundtrip test).
        let ok = Matrix::from_vec(1, 2, vec![-1.0, 1.5]);
        let mut line = String::from("complete 0 0 1 2");
        write_matrix_hex(&mut line, &ok);
        assert!(parse_request(&line).is_ok());
        // All-zero (missing) rows stay valid — completing them is the
        // entire point of the service.
        let missing = Matrix::zeros(1, 2);
        let mut line = String::from("complete 0 0 1 2");
        write_matrix_hex(&mut line, &missing);
        assert!(parse_request(&line).is_ok());
    }

    #[test]
    fn restarting_error_maps_back() {
        let mut line = String::new();
        write_err(&mut line, &ServeError::ShardRestarting);
        assert!(matches!(parse_complete_response(&line), Err(ServeError::ShardRestarting)));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_request("").is_err());
        assert!(parse_request("nonsense 1 2").is_err());
        assert!(parse_request("complete 1 2 2 2 aa").is_err()); // truncated
        assert!(parse_request("complete 1 2 1 1 zz").is_err()); // bad hex
    }

    #[test]
    fn oversized_and_overflowing_shapes_are_rejected_before_allocation() {
        // Claimed size beyond the wire limit: rejected without data.
        let huge = format!("complete 0 0 {} 1", MAX_WIRE_ELEMS + 1);
        assert!(parse_request(&huge).is_err());
        // rows * cols overflows usize: must error, not wrap or panic.
        let overflow = format!("complete 0 0 {} {}", usize::MAX, 2usize);
        assert!(parse_request(&overflow).is_err());
        // Same guards on the response parser.
        let huge_resp = format!("ok {} 1 0 1 1", MAX_WIRE_ELEMS + 1);
        assert!(parse_complete_response(&huge_resp).is_err());
        // Largest admissible shape with a short line: parser errors on
        // the missing data instead of reserving MAX_WIRE_ELEMS slots.
        let claimed = format!("complete 0 0 {} 1 aa", MAX_WIRE_ELEMS);
        assert!(parse_request(&claimed).is_err());
    }

    #[test]
    fn err_response_maps_back() {
        let mut line = String::new();
        write_err(&mut line, &ServeError::Overloaded);
        assert!(matches!(parse_complete_response(&line), Err(ServeError::Overloaded)));
    }

    #[test]
    fn tcomplete_roundtrip_is_bit_exact() {
        let m = Matrix::from_vec(2, 2, vec![0.1, -2.5, f64::MIN_POSITIVE, 3.0e300]);
        let mut line = String::from("tcomplete 9 3 5 2 2");
        write_matrix_hex(&mut line, &m);
        match parse_request(&line).unwrap() {
            Request::TComplete { tenant, time_of_day, day_of_week, input } => {
                assert_eq!((tenant, time_of_day, day_of_week), (9, 3, 5));
                assert_eq!(input, m);
            }
            _ => panic!("expected TComplete"),
        }
        assert!(matches!(parse_request("tstats 7").unwrap(), Request::TStats { tenant: 7 }));
        assert!(parse_request("tstats").is_err(), "tstats requires a tenant id");
        assert!(parse_request("tstats 7 8").is_err(), "trailing tokens rejected");
    }

    #[test]
    fn tok_response_wraps_the_legacy_tail() {
        let m = Matrix::from_vec(1, 3, vec![0.25, 0.5, 0.25]);
        for degraded in [false, true] {
            let mut line = String::new();
            write_tok(&mut line, 4, 2, &m, true, 7, 2, degraded);
            let expect = if degraded { "tdegraded 4 2 " } else { "tok 4 2 " };
            assert!(line.starts_with(expect), "got {line:?}");
            let r = parse_tcomplete_response(&line).unwrap();
            assert_eq!((r.tenant, r.graph_generation), (4, 2));
            assert_eq!(r.body.output, m);
            assert_eq!(r.body.degraded, degraded);
            assert!(r.body.cache_hit);
            assert_eq!((r.body.generation, r.body.shards), (7, 2));
            // The tail after `tok <tenant> <graph_gen>` is exactly the
            // legacy layout.
            let mut legacy = String::new();
            write_ok(&mut legacy, &m, true, 7, 2, degraded);
            let legacy_tail = legacy.split_once(' ').unwrap().1;
            assert!(line.ends_with(legacy_tail));
        }
    }

    #[test]
    fn tenant_errors_map_back() {
        let mut line = String::new();
        write_err(&mut line, &ServeError::QuotaExceeded);
        assert!(matches!(parse_tcomplete_response(&line), Err(ServeError::QuotaExceeded)));
        line.clear();
        write_err(&mut line, &ServeError::UnknownTenant(12));
        assert!(matches!(parse_tcomplete_response(&line), Err(ServeError::UnknownTenant(12))));
        assert!(matches!(parse_tstats_response(&line), Err(ServeError::UnknownTenant(12))));
    }

    #[test]
    fn tstats_roundtrip() {
        let fields: [u64; StatsSnapshot::TENANT_FIELDS] =
            std::array::from_fn(|i| (i as u64 + 1) * 3);
        let snap = StatsSnapshot::from_tenant_fields(fields);
        let mut line = String::new();
        write_tstats(&mut line, 11, &snap);
        assert_eq!(
            line.split_whitespace().count(),
            2 + StatsSnapshot::TENANT_FIELDS,
            "tstats line carries the keyword, the tenant, and every field"
        );
        let (tenant, parsed) = parse_tstats_response(&line).unwrap();
        assert_eq!(tenant, 11);
        assert_eq!(parsed.tenant_fields(), fields);
    }
}
