//! Multi-tenant serving: one city (graph + model shard set) per
//! tenant, hosted in a single process with **hard isolation**.
//!
//! Every serving structure is keyed by [`TenantId`]: each tenant owns
//! a complete [`Engine`] — its own bounded queue, worker threads,
//! per-shard completion caches, circuit breakers, and counters — so
//! one tenant's open breakers, degraded responses, full queue, or
//! exhausted quota cannot perturb another tenant's responses by
//! construction (there is no shared mutable serving state between
//! tenants; the chaos suite pins this bit-for-bit).
//!
//! Two tenant-scoped facilities live here rather than in the engine:
//!
//! * **Quotas** — an optional [`TokenBucket`] per tenant gates request
//!   admission ([`Tenant::admit`]); a rejected request answers
//!   [`ServeError::QuotaExceeded`] without ever reaching the tenant's
//!   queue, so a tenant hammering its quota cannot even occupy queue
//!   slots. The `serve.tenant.quota` failpoint simulates exhaustion
//!   for quota-bearing tenants.
//! * **Graph generation** — a monotonic counter bumped on every
//!   applied [`gcwc_graph::GraphDelta`]
//!   ([`Tenant::install_topology`]), carried on every tenant-form wire
//!   response so clients detect topology swaps and re-derive any
//!   row-index-dependent state.
//!
//! The tenant with [`TenantId::DEFAULT`] (id 0) serves the legacy
//! tenant-less protocol forms, so a single-tenant deployment is wire-
//! compatible with pre-tenancy builds byte for byte.

use crate::engine::{Engine, EngineConfig, StatsSnapshot};
use crate::registry::{ModelRegistry, TopologyUpdate};
use crate::{failsite, ServeError};
use gcwc_graph::RowView;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Instant;

/// Identifies one tenant (one city / graph) of a serving process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl TenantId {
    /// The tenant serving legacy (tenant-less) wire requests.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Token-bucket quota tuning.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Bucket capacity: the largest admissible burst.
    pub burst: u64,
    /// Sustained refill rate in tokens per second (`0` disables
    /// refill — the bucket is a hard burst budget, which is what the
    /// deterministic tests use).
    pub refill_per_sec: u64,
}

/// A classic token bucket: `burst` capacity, continuous refill at
/// `refill_per_sec`, one token per request.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket with `cfg`'s capacity and refill rate.
    pub fn new(cfg: QuotaConfig) -> Self {
        Self {
            capacity: cfg.burst as f64,
            tokens: cfg.burst as f64,
            refill_per_sec: cfg.refill_per_sec as f64,
            last: Instant::now(),
        }
    }

    /// Takes one token if available; `false` means the quota is
    /// exhausted until refill.
    pub fn try_acquire(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One tenant: its engine (queue, caches, breakers, counters), quota,
/// and graph-topology generation.
pub struct Tenant {
    id: TenantId,
    engine: Arc<Engine>,
    quota: Option<Mutex<TokenBucket>>,
    quota_rejected: AtomicU64,
    graph_generation: AtomicU64,
}

impl Tenant {
    fn new(id: TenantId, engine: Arc<Engine>, quota: Option<QuotaConfig>) -> Self {
        Self {
            id,
            engine,
            quota: quota.map(|q| Mutex::new(TokenBucket::new(q))),
            quota_rejected: AtomicU64::new(0),
            graph_generation: AtomicU64::new(0),
        }
    }

    /// This tenant's id.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The tenant's own engine (and, through it, its model registry).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Admission gate evaluated once per completion request, *before*
    /// the tenant's queue: takes one quota token, or rejects with
    /// [`ServeError::QuotaExceeded`]. Tenants without a quota admit
    /// unconditionally — and also skip the `serve.tenant.quota`
    /// failpoint, so arming it never leaks across tenants that did not
    /// opt into quotas.
    pub fn admit(&self) -> Result<(), ServeError> {
        let Some(bucket) = &self.quota else { return Ok(()) };
        if gcwc_failpoint::triggered(failsite::TENANT_QUOTA) {
            self.quota_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QuotaExceeded);
        }
        let admitted =
            bucket.lock().unwrap_or_else(PoisonError::into_inner).try_acquire(Instant::now());
        if admitted {
            Ok(())
        } else {
            self.quota_rejected.fetch_add(1, Ordering::Relaxed);
            Err(ServeError::QuotaExceeded)
        }
    }

    /// Requests rejected by this tenant's quota so far.
    pub fn quota_rejected(&self) -> u64 {
        self.quota_rejected.load(Ordering::Relaxed)
    }

    /// The tenant's current graph-topology generation (0 until the
    /// first delta is applied).
    pub fn graph_generation(&self) -> u64 {
        self.graph_generation.load(Ordering::Acquire)
    }

    /// Absorbs a repaired topology into the tenant's registry (see
    /// [`ModelRegistry::install_topology`]) and bumps the graph
    /// generation clients observe on tenant-form responses. Returns
    /// `(model_generation, graph_generation)`.
    pub fn install_topology(
        &self,
        updates: Vec<TopologyUpdate>,
        views: Vec<RowView>,
    ) -> (u64, u64) {
        let model_gen = self.engine.registry().install_topology(updates, views);
        let graph_gen = self.graph_generation.fetch_add(1, Ordering::AcqRel) + 1;
        (model_gen, graph_gen)
    }

    /// The tenant's engine counters with the tenant-layer fields
    /// (graph generation, quota rejections) filled in.
    pub fn stats(&self) -> StatsSnapshot {
        let mut s = self.engine.stats();
        s.graph_generation = self.graph_generation();
        s.quota_rejected = self.quota_rejected();
        s
    }
}

/// The tenant table of a multi-tenant serving process.
#[derive(Default)]
pub struct TenantRegistry {
    tenants: RwLock<BTreeMap<u64, Arc<Tenant>>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tenant with its own engine over `models`. The
    /// engine's forward failpoint sites are tagged with the tenant id
    /// (`serve.t<id>.shard<k>.forward`), so chaos schedules can target
    /// exactly one tenant.
    ///
    /// # Panics
    /// Panics if `id` is already registered.
    pub fn register(
        &self,
        id: TenantId,
        models: Arc<ModelRegistry>,
        engine_cfg: EngineConfig,
        quota: Option<QuotaConfig>,
    ) -> Arc<Tenant> {
        let cfg = EngineConfig { tenant_site: Some(id.0), ..engine_cfg };
        self.adopt(id, Arc::new(Engine::new(models, cfg)), quota)
    }

    /// Registers an already-running engine as tenant `id` (the
    /// single-tenant compatibility path: [`crate::Server::start`]
    /// adopts its engine as [`TenantId::DEFAULT`], keeping the legacy
    /// untagged failpoint site names).
    ///
    /// # Panics
    /// Panics if `id` is already registered.
    pub fn adopt(
        &self,
        id: TenantId,
        engine: Arc<Engine>,
        quota: Option<QuotaConfig>,
    ) -> Arc<Tenant> {
        let tenant = Arc::new(Tenant::new(id, engine, quota));
        let mut tenants = self.tenants.write().unwrap();
        let prev = tenants.insert(id.0, Arc::clone(&tenant));
        assert!(prev.is_none(), "tenant {id} registered twice");
        tenant
    }

    /// Looks a tenant up by id.
    pub fn get(&self, id: TenantId) -> Option<Arc<Tenant>> {
        self.tenants.read().unwrap().get(&id.0).cloned()
    }

    /// The tenant serving legacy (tenant-less) requests, if any.
    pub fn default_tenant(&self) -> Option<Arc<Tenant>> {
        self.get(TenantId::DEFAULT)
    }

    /// Registered tenant ids, ascending.
    pub fn ids(&self) -> Vec<TenantId> {
        self.tenants.read().unwrap().keys().map(|&id| TenantId(id)).collect()
    }

    /// All registered tenants, ascending by id.
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.tenants.read().unwrap().values().cloned().collect()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().unwrap().len()
    }

    /// True when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.read().unwrap().is_empty()
    }

    /// Gracefully shuts every tenant's engine down (each drains its
    /// own queue; tenants are independent, so order is irrelevant).
    pub fn shutdown(&self) {
        for tenant in self.tenants() {
            tenant.engine().shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_bucket_burst_and_refill() {
        let mut b = TokenBucket::new(QuotaConfig { burst: 2, refill_per_sec: 0 });
        let t0 = Instant::now();
        assert!(b.try_acquire(t0));
        assert!(b.try_acquire(t0));
        assert!(!b.try_acquire(t0), "burst of 2 admits exactly 2");
        // No refill configured: still empty arbitrarily later.
        assert!(!b.try_acquire(t0 + Duration::from_secs(3600)));

        let mut b = TokenBucket::new(QuotaConfig { burst: 1, refill_per_sec: 10 });
        let t0 = Instant::now();
        assert!(b.try_acquire(t0));
        assert!(!b.try_acquire(t0));
        // 100 ms at 10 tokens/s refills the single token.
        assert!(b.try_acquire(t0 + Duration::from_millis(100)));
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let mut b = TokenBucket::new(QuotaConfig { burst: 2, refill_per_sec: 1000 });
        let t0 = Instant::now();
        // A long idle stretch refills to capacity, not beyond.
        let later = t0 + Duration::from_secs(60);
        assert!(b.try_acquire(later));
        assert!(b.try_acquire(later));
        assert!(!b.try_acquire(later), "capacity caps the burst after idling");
    }
}
