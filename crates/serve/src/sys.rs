//! Thin epoll shim: the handful of Linux syscalls the reactor needs,
//! declared directly against the C library (std already links it), so
//! the crate stays dependency-free in the workspace's vendored-deps
//! spirit — no `libc` or `mio` crate, just the raw ABI.
//!
//! Everything here is **level-triggered**: a readiness the reactor
//! skips (a failpoint-dropped tick, a partial drain) is re-delivered
//! by the next `epoll_wait`, which is what makes skipping safe.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};

// Linux x86_64/aarch64 ABI constants (uapi/linux/eventpoll.h,
// asm-generic/fcntl.h, asm-generic/resource.h).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const RLIMIT_NOFILE: c_int = 7;

/// `struct epoll_event` — packed on x86_64 (the kernel ABI), which is
/// also correct (if over-aligned-down) on aarch64.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

/// One decoded readiness event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or peer half-closed — reads will observe EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error/hangup condition; the connection should be torn down
    /// after any final read drains.
    pub hangup: bool,
}

/// A level-triggered epoll instance.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest | EPOLLRDHUP, data: token };
        let event = if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { &mut ev };
        if unsafe { epoll_ctl(self.epfd, op, fd, event) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest (`readable`/`writable`).
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest(readable, writable), token)
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest(readable, writable), token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until readiness (or `timeout_ms >= 0` elapses) and fills
    /// `events`. Interrupted waits return an empty set.
    pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        const CAP: usize = 1024;
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAP];
        let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as c_int, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for ev in raw.iter().take(n as usize) {
            let bits = ev.events;
            events.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

fn interest(readable: bool, writable: bool) -> u32 {
    (if readable { EPOLLIN } else { 0 }) | (if writable { EPOLLOUT } else { 0 })
}

/// An `eventfd`-based wakeup: any thread calls [`Waker::wake`], the
/// reactor sees the fd readable and [`Waker::drain`]s it.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd (`EFD_CLOEXEC | EFD_NONBLOCK`).
    pub fn new() -> io::Result<Self> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    /// The fd to register with a [`Poller`].
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the eventfd readable. A full counter (`EAGAIN`) already
    /// guarantees a pending wakeup, so errors are ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consumes pending wakeups so the fd goes quiet until the next
    /// [`Waker::wake`].
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// Raises `RLIMIT_NOFILE` to at least `want` file descriptors (root
/// may raise the hard limit too) and returns the resulting soft
/// limit. Used by the connection-scaling bench and the 10k-connection
/// test; failure is not fatal — callers scale to what they got.
pub fn raise_nofile(want: u64) -> u64 {
    let mut lim = RLimit { rlim_cur: 0, rlim_max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.rlim_cur >= want {
        return lim.rlim_cur;
    }
    let hard = lim.rlim_max.max(want);
    let attempt = RLimit { rlim_cur: want.min(hard), rlim_max: hard };
    if unsafe { setrlimit(RLIMIT_NOFILE, &attempt) } == 0 {
        return attempt.rlim_cur;
    }
    // Could not raise the hard limit (not root): settle for the soft
    // limit capped at the existing hard limit.
    let attempt = RLimit { rlim_cur: want.min(lim.rlim_max), rlim_max: lim.rlim_max };
    if unsafe { setrlimit(RLIMIT_NOFILE, &attempt) } == 0 {
        return attempt.rlim_cur;
    }
    lim.rlim_cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_poller() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), 42, true, false).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a zero-timeout wait returns empty.
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
        waker.wake();
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);
        // Drained, the fd goes quiet again (level-triggered).
        waker.drain();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut peer = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (sock, _) = listener.accept().unwrap();
        sock.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(sock.as_raw_fd(), 7, true, false).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no data yet");
        peer.write_all(b"x").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Adding write interest reports writable immediately (the
        // send buffer is empty).
        poller.modify(sock.as_raw_fd(), 7, true, true).unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));
        poller.delete(sock.as_raw_fd()).unwrap();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "deregistered fd reports nothing");
    }

    #[test]
    fn raise_nofile_reports_a_usable_limit() {
        let got = raise_nofile(1024);
        assert!(got >= 256, "even unprivileged limits exceed this: {got}");
    }
}
