//! A bounded MPSC/MPMC queue built on [`std::sync::Mutex`] +
//! [`std::sync::Condvar`].
//!
//! The backing [`VecDeque`] is allocated once at construction, so
//! steady-state push/pop performs no heap allocation. Closing the
//! queue wakes every waiter: producers fail fast, consumers drain the
//! remaining items and then observe `None` — which is what gives the
//! engine its graceful-shutdown semantics.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused, carrying the item back to the caller so its
/// buffers are not lost.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue was closed; no further items are accepted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded blocking queue; see the module docs.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking push; fails with the item when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits while the queue is full; fails with the
    /// item once the queue is closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock().unwrap();
        while g.items.len() >= self.capacity && !g.closed {
            g = self.not_full.wait(g).unwrap();
        }
        if g.closed {
            return Err(PushError::Closed(item));
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop: waits for an item; returns `None` only once the
    /// queue is closed **and** fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap();
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        let item = g.items.pop_front();
        drop(g);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: producers fail fast, consumers drain then stop.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap();
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        match q.try_push("b") {
            Err(PushError::Closed("b")) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(7).unwrap();
        assert_eq!(h.join().unwrap(), Some(7));
    }

    #[test]
    fn blocking_push_wakes_on_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.pop(), Some(1));
        assert!(h.join().unwrap().is_ok());
        assert_eq!(q.pop(), Some(2));
    }
}
