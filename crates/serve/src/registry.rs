//! Model registry: loads and validates checkpoints into warm models
//! and atomically hot-swaps the served snapshot.
//!
//! The served unit is a **shard set**: one model per edge partition
//! (see `gcwc_graph::PartitionSet`), each with the [`RowView`] mapping
//! its local rows back to the global graph. A single-shard registry
//! (the common K = 1 case, built by [`ModelRegistry::new`]) carries
//! one model under an identity view and behaves exactly like the
//! pre-sharding registry.
//!
//! A `factory` closure per shard builds an untrained model of that
//! shard's architecture (it captures the local graph and config);
//! [`ModelRegistry::load_shard`] runs the factory, restores the
//! checkpoint — the versioned header is validated against the model's
//! architecture token, so a wrong-architecture or corrupt file is
//! rejected *before* it is exposed — and then swaps a new
//! [`ModelSnapshot`] in behind an [`RwLock`]. Unchanged shards are
//! shared by `Arc` between generations, so swapping shard `k` leaves
//! every other shard's identity (and its cache entries, which are
//! keyed by per-shard generation) intact. In-flight batches keep
//! serving the old snapshot via their [`Arc`] until they finish.

use crate::replica::Replica;
use crate::ServeError;
use gcwc::{AGcwcModel, GcwcModel, InferRequest, InferWorkspace, OutputKind};
use gcwc_graph::{PartitionSet, RowView};
use gcwc_linalg::Matrix;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Either completion model behind one dispatching surface.
// One instance lives behind each Arc<ModelShard>; the variant size
// gap never multiplies, so boxing would only add a pointer chase.
#[allow(clippy::large_enum_variant)]
pub enum AnyModel {
    /// Basic GCWC (context-free).
    Gcwc(GcwcModel),
    /// Context-aware A-GCWC.
    AGcwc(AGcwcModel),
}

impl AnyModel {
    /// Number of edges `n` the model covers (local `n` for a shard).
    pub fn num_edges(&self) -> usize {
        match self {
            AnyModel::Gcwc(m) => m.num_edges(),
            AnyModel::AGcwc(m) => m.num_edges(),
        }
    }

    /// Number of histogram buckets `m`.
    pub fn num_buckets(&self) -> usize {
        match self {
            AnyModel::Gcwc(m) => m.num_buckets(),
            AnyModel::AGcwc(m) => m.num_buckets(),
        }
    }

    /// Output head kind.
    pub fn output_kind(&self) -> OutputKind {
        match self {
            AnyModel::Gcwc(m) => m.output_kind(),
            AnyModel::AGcwc(m) => m.output_kind(),
        }
    }

    /// Output columns (`m` for HIST, 1 for AVG).
    pub fn output_cols(&self) -> usize {
        match self {
            AnyModel::Gcwc(m) => m.output_cols(),
            AnyModel::AGcwc(m) => m.output_cols(),
        }
    }

    /// Architecture token written into / validated against checkpoints.
    pub fn arch_string(&self) -> String {
        match self {
            AnyModel::Gcwc(m) => m.arch_string(),
            AnyModel::AGcwc(m) => m.arch_string(),
        }
    }

    /// Restores parameters from a checkpoint (header validated).
    pub fn load(&mut self, path: &Path) -> Result<(), gcwc_nn::PersistError> {
        match self {
            AnyModel::Gcwc(m) => m.load(path),
            AnyModel::AGcwc(m) => m.load(path),
        }
    }

    /// Tape-free batched inference (see `gcwc::infer`): `count`
    /// requests as one coalesced forward pass, bit-identical per
    /// request to single-request evaluation.
    pub fn infer_into<'r, F>(
        &self,
        ws: &mut InferWorkspace,
        count: usize,
        req: F,
        outs: &mut [Matrix],
    ) where
        F: Fn(usize) -> InferRequest<'r>,
    {
        match self {
            AnyModel::Gcwc(m) => m.infer_into(ws, count, req, outs),
            AnyModel::AGcwc(m) => m.infer_into(ws, count, req, outs),
        }
    }
}

/// One shard of the served shard set: a warm model plus the generation
/// at which it was last swapped in.
pub struct ModelShard {
    /// The warm model (parameters loaded, ready to infer).
    pub model: AnyModel,
    /// The global generation counter's value when this shard was
    /// (re)installed. Cache keys embed it, so hot-swapping one shard
    /// invalidates exactly that shard's cached completions.
    pub generation: u64,
    /// The checkpoint this shard was loaded from, if any.
    pub source: Option<PathBuf>,
}

/// One immutable generation of the served shard set. Each shard is
/// backed by a replica group (N = 1 unless the registry was built with
/// one of the `*_replicated` constructors).
pub struct ModelSnapshot {
    groups: Vec<Vec<Replica>>,
    views: Arc<Vec<RowView>>,
    /// Global monotonic generation (0 = factory-fresh, untrained).
    /// Bumped on every shard swap.
    pub generation: u64,
    n: usize,
    m: usize,
    out_cols: usize,
}

impl ModelSnapshot {
    /// Number of shards K.
    pub fn num_shards(&self) -> usize {
        self.groups.len()
    }

    /// Shard `k`'s primary replica (slot 0) — the whole group on an
    /// unreplicated registry. Replica-aware callers use
    /// [`ModelSnapshot::group`] and route per request.
    pub fn shard(&self, k: usize) -> &ModelShard {
        &self.groups[k][0].shard
    }

    /// Shard `k`'s full replica group.
    pub fn group(&self, k: usize) -> &[Replica] {
        &self.groups[k]
    }

    /// Replicas per shard (N). Uniform across shards.
    pub fn replication(&self) -> usize {
        self.groups[0].len()
    }

    /// Shard `k`'s local→global row view.
    pub fn view(&self, k: usize) -> &RowView {
        &self.views[k]
    }

    /// Global number of edges `n` (sum of owned rows across shards).
    pub fn num_edges(&self) -> usize {
        self.n
    }

    /// Number of histogram buckets `m`.
    pub fn num_buckets(&self) -> usize {
        self.m
    }

    /// Output columns of the head.
    pub fn output_cols(&self) -> usize {
        self.out_cols
    }

    /// The single model of a single-shard snapshot (the K = 1 serving
    /// path, where the shard's rows are the global rows).
    ///
    /// # Panics
    /// Panics on a multi-shard snapshot.
    pub fn model(&self) -> &AnyModel {
        assert_eq!(self.groups.len(), 1, "model() is single-shard only; use shard(k)");
        &self.groups[0][0].shard.model
    }
}

/// Factory closure producing an untrained model of one shard's
/// architecture.
pub type ModelFactory = Box<dyn Fn() -> AnyModel + Send + Sync>;

/// One shard's replacement under a topology change (see
/// [`ModelRegistry::install_topology`]): the repaired model plus the
/// factory matching its new local architecture.
pub struct TopologyUpdate {
    /// Which shard the delta repaired.
    pub shard: usize,
    /// The model rebuilt (and retrained) on the repaired local graph.
    pub model: AnyModel,
    /// Factory for the repaired architecture, replacing the stale one
    /// so later [`ModelRegistry::load_shard`] calls build the right
    /// local shape.
    pub factory: ModelFactory,
}

/// Registry holding the current [`ModelSnapshot`] behind an [`RwLock`]
/// for lock-cheap reads and atomic hot swaps.
///
/// Lock order (deadlock freedom): `factories` → `views` → `current`.
pub struct ModelRegistry {
    factories: RwLock<Vec<ModelFactory>>,
    views: RwLock<Arc<Vec<RowView>>>,
    current: RwLock<Arc<ModelSnapshot>>,
    generation: AtomicU64,
    /// Next replica incarnation id. Initial groups take `k * N + slot`
    /// shard-major; promotions draw fresh ordinals from here.
    next_ordinal: AtomicU64,
    num_shards: usize,
    replication: usize,
}

impl ModelRegistry {
    /// Creates a single-shard registry (K = 1) serving a factory-fresh
    /// (untrained) model as generation 0 under an identity view.
    pub fn new(factory: ModelFactory) -> Self {
        Self::new_replicated(factory, 1)
    }

    /// [`ModelRegistry::new`] with an N-replica group behind the
    /// single shard. N = 1 is exactly `new`.
    pub fn new_replicated(factory: ModelFactory, replication: usize) -> Self {
        let model = factory();
        let views = vec![RowView::identity(model.num_edges())];
        Self::from_parts(vec![factory], views, vec![model], replication)
    }

    /// Creates a sharded registry: `factories[k]` builds shard `k`'s
    /// untrained model over `partition.partition(k)`'s local graph.
    pub fn sharded(factories: Vec<ModelFactory>, partition: &PartitionSet) -> Self {
        Self::sharded_replicated(factories, partition, 1)
    }

    /// [`ModelRegistry::sharded`] with an N-replica group behind every
    /// shard. N = 1 is exactly `sharded`.
    pub fn sharded_replicated(
        factories: Vec<ModelFactory>,
        partition: &PartitionSet,
        replication: usize,
    ) -> Self {
        assert_eq!(
            factories.len(),
            partition.num_partitions(),
            "one factory per partition required"
        );
        let views: Vec<RowView> = partition.partitions().iter().map(|p| p.view().clone()).collect();
        let models: Vec<AnyModel> = factories.iter().map(|f| f()).collect();
        Self::from_parts(factories, views, models, replication)
    }

    fn from_parts(
        factories: Vec<ModelFactory>,
        views: Vec<RowView>,
        models: Vec<AnyModel>,
        replication: usize,
    ) -> Self {
        assert!(!models.is_empty(), "a registry needs at least one shard");
        assert!(replication >= 1, "a replica group needs at least one slot");
        let n: usize = views.iter().map(RowView::num_owned).sum();
        let m = models[0].num_buckets();
        let out_cols = models[0].output_cols();
        for (k, (model, view)) in models.iter().zip(&views).enumerate() {
            assert_eq!(
                model.num_edges(),
                view.num_local(),
                "shard {k} model covers {} edges but its view has {} local rows",
                model.num_edges(),
                view.num_local()
            );
            assert_eq!(model.num_buckets(), m, "shard {k} bucket count differs");
            assert_eq!(model.output_cols(), out_cols, "shard {k} head differs");
        }
        let views = Arc::new(views);
        let num_shards = factories.len();
        // Slot 0 of each group takes the pre-built model; extra slots
        // are independently built from the shard's factory. Initial
        // ordinals are shard-major: shard k's slots are k*N .. k*N+N.
        let groups: Vec<Vec<Replica>> = models
            .into_iter()
            .enumerate()
            .map(|(k, model)| {
                let mut group = Vec::with_capacity(replication);
                group.push(Replica {
                    shard: Arc::new(ModelShard { model, generation: 0, source: None }),
                    ordinal: (k * replication) as u64,
                });
                for slot in 1..replication {
                    group.push(Replica {
                        shard: Arc::new(ModelShard {
                            model: (factories[k])(),
                            generation: 0,
                            source: None,
                        }),
                        ordinal: (k * replication + slot) as u64,
                    });
                }
                group
            })
            .collect();
        let snapshot = Arc::new(ModelSnapshot {
            groups,
            views: Arc::clone(&views),
            generation: 0,
            n,
            m,
            out_cols,
        });
        Self {
            factories: RwLock::new(factories),
            views: RwLock::new(views),
            current: RwLock::new(snapshot),
            generation: AtomicU64::new(0),
            next_ordinal: AtomicU64::new((num_shards * replication) as u64),
            num_shards,
            replication,
        }
    }

    /// The currently served snapshot. Cheap; callers hold the `Arc`
    /// for the duration of a batch so hot swaps never disrupt them.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        Arc::clone(&self.current.read().unwrap())
    }

    /// Number of shards K.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Replicas per shard (N).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Current global generation number.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Loads `path` into shard `k` — one **independently loaded** model
    /// per replica slot — and atomically swaps a new snapshot in; every
    /// other shard is shared unchanged. All slots of the group share
    /// the single new generation (replica responses must be
    /// bit-identical, so their cache entries are interchangeable) and
    /// keep their ordinals (a reload is the same incarnations with new
    /// parameters, not a membership change — routing is undisturbed).
    /// On any error the previous snapshot keeps serving. Returns the
    /// new generation.
    pub fn load_shard(&self, k: usize, path: &Path) -> Result<u64, ServeError> {
        assert!(k < self.num_shards, "shard {k} out of range");
        // Failpoint: an injected load failure (disk error, torn
        // checkpoint) must leave the previous snapshot serving.
        if gcwc_failpoint::triggered(crate::failsite::REGISTRY_LOAD) {
            return Err(ServeError::Io(std::io::Error::other(format!(
                "failpoint {}: injected checkpoint load failure",
                crate::failsite::REGISTRY_LOAD
            ))));
        }
        let mut models = Vec::with_capacity(self.replication);
        {
            let factories = self.factories.read().unwrap();
            for _ in 0..self.replication {
                let mut model = (factories[k])();
                model.load(path)?;
                models.push(model);
            }
        }
        Ok(self.swap_shard_group(k, models, Some(path.to_path_buf())))
    }

    /// Swaps an already-built model (e.g. trained in-process) into
    /// shard `k`. On a replicated registry every slot of the group
    /// shares the one installed model (models are immutable during
    /// inference, so sharing is indistinguishable from independent
    /// copies — and bit-identical by construction). Returns the new
    /// generation number.
    pub fn install_shard(&self, k: usize, model: AnyModel) -> u64 {
        assert!(k < self.num_shards, "shard {k} out of range");
        assert_eq!(
            model.num_edges(),
            self.views.read().unwrap()[k].num_local(),
            "installed model does not match shard {k}'s view"
        );
        self.swap_shard_group(k, vec![model], None)
    }

    /// Loads `path` into the single shard of a K = 1 registry.
    ///
    /// # Panics
    /// Panics on a sharded registry — load each shard with
    /// [`ModelRegistry::load_shard`].
    pub fn load(&self, path: &Path) -> Result<u64, ServeError> {
        assert_eq!(self.num_shards, 1, "load() is single-shard only; use load_shard");
        self.load_shard(0, path)
    }

    /// Swaps an already-built model into the single shard of a K = 1
    /// registry. Returns the new generation number.
    ///
    /// # Panics
    /// Panics on a sharded registry — use
    /// [`ModelRegistry::install_shard`].
    pub fn install(&self, model: AnyModel) -> u64 {
        assert_eq!(self.num_shards, 1, "install() is single-shard only; use install_shard");
        self.install_shard(0, model)
    }

    /// Swaps a complete shard set in as **one** atomic snapshot
    /// replacement under a single generation bump — the hot-swap path
    /// of an incremental refresh, where shard-by-shard
    /// [`ModelRegistry::install_shard`] calls would expose mixed
    /// generations to in-flight requests (and a crash between them
    /// would strand a half-swapped set). Every shard's generation
    /// changes, so all cached completions of the previous set miss.
    /// Returns the new generation.
    pub fn install_set(&self, models: Vec<AnyModel>) -> u64 {
        assert_eq!(models.len(), self.num_shards, "install_set needs one model per shard");
        let views = Arc::clone(&self.views.read().unwrap());
        for (k, model) in models.iter().enumerate() {
            assert_eq!(
                model.num_edges(),
                views[k].num_local(),
                "installed model does not match shard {k}'s view"
            );
        }
        // Same injection point as the per-shard swap: a `panic` here
        // dies before the generation bump, leaving the previous
        // snapshot serving untouched.
        if gcwc_failpoint::triggered(crate::failsite::REGISTRY_INSTALL) {
            panic!("failpoint {}: injected install failure", crate::failsite::REGISTRY_INSTALL);
        }
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let mut current = self.current.write().unwrap();
        let groups: Vec<Vec<Replica>> = models
            .into_iter()
            .zip(&current.groups)
            .map(|(model, old_group)| {
                let shard = Arc::new(ModelShard { model, generation, source: None });
                old_group
                    .iter()
                    .map(|r| Replica { shard: Arc::clone(&shard), ordinal: r.ordinal })
                    .collect()
            })
            .collect();
        *current = Arc::new(ModelSnapshot {
            groups,
            views,
            generation,
            n: current.n,
            m: current.m,
            out_cols: current.out_cols,
        });
        generation
    }

    /// Absorbs a graph-topology change (an applied
    /// [`gcwc_graph::GraphDelta`]) into the served shard set as **one**
    /// atomic snapshot swap: every repaired shard gets its rebuilt
    /// model (and a fresh generation, invalidating exactly its cached
    /// completions), while untouched shards keep their `Arc`s *and*
    /// their generations — their cache entries stay valid across the
    /// swap. The row views are replaced wholesale (`views[k]` must be
    /// byte-identical to the old view for every unrepaired shard `k`,
    /// which [`gcwc_graph::DeltaRepair`] guarantees by construction).
    /// Returns the new model generation.
    pub fn install_topology(&self, updates: Vec<TopologyUpdate>, views: Vec<RowView>) -> u64 {
        assert_eq!(views.len(), self.num_shards, "install_topology needs one view per shard");
        let mut factories = self.factories.write().unwrap();
        let mut cur_views = self.views.write().unwrap();
        {
            let current = self.current.read().unwrap();
            let mut seen = vec![false; self.num_shards];
            for u in &updates {
                assert!(u.shard < self.num_shards, "shard {} out of range", u.shard);
                assert!(!seen[u.shard], "duplicate update for shard {}", u.shard);
                seen[u.shard] = true;
                assert_eq!(
                    u.model.num_edges(),
                    views[u.shard].num_local(),
                    "repaired model does not match shard {}'s new view",
                    u.shard
                );
                assert_eq!(u.model.num_buckets(), current.m, "shard {} bucket count", u.shard);
                assert_eq!(u.model.output_cols(), current.out_cols, "shard {} head", u.shard);
            }
            for k in 0..self.num_shards {
                if !seen[k] {
                    assert_eq!(
                        current.groups[k][0].shard.model.num_edges(),
                        views[k].num_local(),
                        "unrepaired shard {k}'s view changed; it must carry an update"
                    );
                }
            }
        }
        // Same injection point as the full-set swap: a `panic` here
        // dies before the generation bump, leaving the previous
        // snapshot (and the previous topology) serving untouched.
        if gcwc_failpoint::triggered(crate::failsite::REGISTRY_INSTALL) {
            panic!("failpoint {}: injected install failure", crate::failsite::REGISTRY_INSTALL);
        }
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let views = Arc::new(views);
        let n: usize = views.iter().map(RowView::num_owned).sum();
        let mut current = self.current.write().unwrap();
        let mut groups = current.groups.clone();
        for u in updates {
            let shard = Arc::new(ModelShard { model: u.model, generation, source: None });
            for r in &mut groups[u.shard] {
                r.shard = Arc::clone(&shard);
            }
            factories[u.shard] = u.factory;
        }
        *cur_views = Arc::clone(&views);
        *current = Arc::new(ModelSnapshot {
            groups,
            views,
            generation,
            n,
            m: current.m,
            out_cols: current.out_cols,
        });
        generation
    }

    /// Replaces shard `k`'s group with `models` under one generation
    /// bump, preserving every slot's ordinal. One model fans out to
    /// all slots via a shared `Arc`; `replication` models load one per
    /// slot (independently loaded replicas).
    fn swap_shard_group(&self, k: usize, models: Vec<AnyModel>, source: Option<PathBuf>) -> u64 {
        // Failpoint: `panic` here simulates dying mid-install,
        // `delay(ms)` a slow swap racing in-flight batches (which keep
        // serving their snapshot `Arc` either way).
        if gcwc_failpoint::triggered(crate::failsite::REGISTRY_INSTALL) {
            panic!("failpoint {}: injected install failure", crate::failsite::REGISTRY_INSTALL);
        }
        assert!(
            models.len() == 1 || models.len() == self.replication,
            "swap needs one shared model or one per slot"
        );
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let views = Arc::clone(&self.views.read().unwrap());
        let mut current = self.current.write().unwrap();
        let mut groups = current.groups.clone();
        if models.len() == 1 {
            let shard = Arc::new(ModelShard {
                model: models.into_iter().next().unwrap(),
                generation,
                source,
            });
            for r in &mut groups[k] {
                r.shard = Arc::clone(&shard);
            }
        } else {
            for (r, model) in groups[k].iter_mut().zip(models) {
                r.shard = Arc::new(ModelShard { model, generation, source: source.clone() });
            }
        }
        *current = Arc::new(ModelSnapshot {
            groups,
            views,
            generation,
            n: current.n,
            m: current.m,
            out_cols: current.out_cols,
        });
        generation
    }

    /// Warm-standby promotion: rebuilds replica `slot` of shard `k`
    /// under a **fresh ordinal** and atomically swaps the group. The
    /// replacement is reloaded from the shard's checkpoint `source`
    /// when it has one (a new generation — independently loaded, so
    /// its caches re-fill), otherwise cloned from healthy `donor`'s
    /// slot (keeping the donor's shard `Arc` *and* generation, so the
    /// promoted replica serves the donor's cache entries bit-exactly).
    /// Fails without touching the snapshot when the
    /// `serve.replica.promote` failpoint triggers or no source/donor
    /// is available. Returns the new global generation.
    pub fn promote_replica(
        &self,
        k: usize,
        slot: usize,
        donor: Option<usize>,
    ) -> Result<u64, ServeError> {
        assert!(k < self.num_shards, "shard {k} out of range");
        assert!(slot < self.replication, "slot {slot} out of range");
        if gcwc_failpoint::triggered(crate::failsite::REPLICA_PROMOTE) {
            return Err(ServeError::Io(std::io::Error::other(format!(
                "failpoint {}: injected promotion failure",
                crate::failsite::REPLICA_PROMOTE
            ))));
        }
        let source = self.current.read().unwrap().groups[k][slot].shard.source.clone();
        // Build the replacement before taking the write lock: a slow
        // checkpoint reload must not stall snapshot readers.
        let built = match (&source, donor) {
            (Some(path), _) => {
                let mut model = (self.factories.read().unwrap()[k])();
                model.load(path)?;
                Some(model)
            }
            (None, Some(d)) => {
                assert!(d < self.replication && d != slot, "invalid donor slot {d}");
                None
            }
            (None, None) => {
                return Err(ServeError::Io(std::io::Error::other(
                    "replica has no checkpoint source and no donor to share",
                )))
            }
        };
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let ordinal = self.next_ordinal.fetch_add(1, Ordering::AcqRel);
        let views = Arc::clone(&self.views.read().unwrap());
        let mut current = self.current.write().unwrap();
        let shard = match built {
            Some(model) => Arc::new(ModelShard { model, generation, source }),
            None => Arc::clone(&current.groups[k][donor.unwrap()].shard),
        };
        let mut groups = current.groups.clone();
        groups[k][slot] = Replica { shard, ordinal };
        *current = Arc::new(ModelSnapshot {
            groups,
            views,
            generation,
            n: current.n,
            m: current.m,
            out_cols: current.out_cols,
        });
        Ok(generation)
    }
}
