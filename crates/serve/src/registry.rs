//! Model registry: loads and validates checkpoints into warm models
//! and atomically hot-swaps the served snapshot.
//!
//! A `factory` closure builds an untrained model of the target
//! architecture (it captures the road-network graph and config);
//! [`ModelRegistry::load`] runs the factory, restores the checkpoint —
//! the versioned header is validated against the model's architecture
//! token, so a wrong-architecture or corrupt file is rejected *before*
//! it is exposed — and then swaps the new [`ModelSnapshot`] in behind
//! an [`RwLock`]. In-flight batches keep serving the old snapshot via
//! their [`Arc`] until they finish.

use crate::ServeError;
use gcwc::{AGcwcModel, GcwcModel, InferRequest, InferWorkspace, OutputKind};
use gcwc_linalg::Matrix;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Either completion model behind one dispatching surface.
// One instance lives behind each Arc<ModelSnapshot>; the variant size
// gap never multiplies, so boxing would only add a pointer chase.
#[allow(clippy::large_enum_variant)]
pub enum AnyModel {
    /// Basic GCWC (context-free).
    Gcwc(GcwcModel),
    /// Context-aware A-GCWC.
    AGcwc(AGcwcModel),
}

impl AnyModel {
    /// Number of edges `n` in the served graph.
    pub fn num_edges(&self) -> usize {
        match self {
            AnyModel::Gcwc(m) => m.num_edges(),
            AnyModel::AGcwc(m) => m.num_edges(),
        }
    }

    /// Number of histogram buckets `m`.
    pub fn num_buckets(&self) -> usize {
        match self {
            AnyModel::Gcwc(m) => m.num_buckets(),
            AnyModel::AGcwc(m) => m.num_buckets(),
        }
    }

    /// Output head kind.
    pub fn output_kind(&self) -> OutputKind {
        match self {
            AnyModel::Gcwc(m) => m.output_kind(),
            AnyModel::AGcwc(m) => m.output_kind(),
        }
    }

    /// Output columns (`m` for HIST, 1 for AVG).
    pub fn output_cols(&self) -> usize {
        match self {
            AnyModel::Gcwc(m) => m.output_cols(),
            AnyModel::AGcwc(m) => m.output_cols(),
        }
    }

    /// Architecture token written into / validated against checkpoints.
    pub fn arch_string(&self) -> String {
        match self {
            AnyModel::Gcwc(m) => m.arch_string(),
            AnyModel::AGcwc(m) => m.arch_string(),
        }
    }

    /// Restores parameters from a checkpoint (header validated).
    pub fn load(&mut self, path: &Path) -> Result<(), gcwc_nn::PersistError> {
        match self {
            AnyModel::Gcwc(m) => m.load(path),
            AnyModel::AGcwc(m) => m.load(path),
        }
    }

    /// Tape-free batched inference (see `gcwc::infer`): `count`
    /// requests as one coalesced forward pass, bit-identical per
    /// request to single-request evaluation.
    pub fn infer_into<'r, F>(
        &self,
        ws: &mut InferWorkspace,
        count: usize,
        req: F,
        outs: &mut [Matrix],
    ) where
        F: Fn(usize) -> InferRequest<'r>,
    {
        match self {
            AnyModel::Gcwc(m) => m.infer_into(ws, count, req, outs),
            AnyModel::AGcwc(m) => m.infer_into(ws, count, req, outs),
        }
    }
}

/// One immutable generation of the served model.
pub struct ModelSnapshot {
    /// The warm model (parameters loaded, ready to infer).
    pub model: AnyModel,
    /// Monotonic generation counter (0 = factory-fresh, untrained).
    pub generation: u64,
    /// The checkpoint this generation was loaded from, if any.
    pub source: Option<PathBuf>,
}

/// Factory closure producing an untrained model of the served
/// architecture.
pub type ModelFactory = Box<dyn Fn() -> AnyModel + Send + Sync>;

/// Registry holding the current [`ModelSnapshot`] behind an [`RwLock`]
/// for lock-cheap reads and atomic hot swaps.
pub struct ModelRegistry {
    factory: ModelFactory,
    current: RwLock<Arc<ModelSnapshot>>,
    generation: AtomicU64,
}

impl ModelRegistry {
    /// Creates a registry serving a factory-fresh (untrained) model as
    /// generation 0.
    pub fn new(factory: ModelFactory) -> Self {
        let model = factory();
        let snapshot = Arc::new(ModelSnapshot { model, generation: 0, source: None });
        Self { factory, current: RwLock::new(snapshot), generation: AtomicU64::new(0) }
    }

    /// The currently served snapshot. Cheap; callers hold the `Arc`
    /// for the duration of a batch so hot swaps never disrupt them.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        Arc::clone(&self.current.read().unwrap())
    }

    /// Current generation number.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Loads `path` into a fresh model and atomically swaps it in.
    /// On any error the previous snapshot keeps serving. Returns the
    /// new generation number.
    pub fn load(&self, path: &Path) -> Result<u64, ServeError> {
        let mut model = (self.factory)();
        model.load(path)?;
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let snapshot =
            Arc::new(ModelSnapshot { model, generation, source: Some(path.to_path_buf()) });
        *self.current.write().unwrap() = snapshot;
        Ok(generation)
    }

    /// Swaps in an already-built model (e.g. trained in-process).
    /// Returns the new generation number.
    pub fn install(&self, model: AnyModel) -> u64 {
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let snapshot = Arc::new(ModelSnapshot { model, generation, source: None });
        *self.current.write().unwrap() = snapshot;
        generation
    }
}
