//! Completion cache keyed by `(model generation, time slot, day of
//! week, coverage signature)` with LRU eviction.
//!
//! Two requests against the same model generation with the same
//! context and the **same observed input** (compared bit-for-bit via
//! an FNV-1a hash over the `f64` bit patterns) produce the same
//! completion, so the second can be served straight from the cache.
//! The generation component makes every entry computed by a previous
//! model unreachable after a hot-swap — stale completions age out of
//! the LRU instead of being served as hits. Entries live in a preallocated slab linked
//! into an intrusive LRU list; eviction reuses the victim's matrix
//! buffer, so a warm cache performs no allocation on insert.

use gcwc_linalg::Matrix;
use std::collections::HashMap;

/// Identity of a cacheable completion request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Generation of the model snapshot the completion is valid for.
    pub generation: u64,
    /// Time-of-day interval index.
    pub time_of_day: usize,
    /// Day-of-week index.
    pub day_of_week: usize,
    /// FNV-1a hash over the input matrix's shape and `f64` bits.
    pub signature: u64,
}

impl CacheKey {
    /// Builds the key for a request: the serving model generation,
    /// context indices, and the exact bit-level signature of the
    /// observed input matrix.
    pub fn for_input(
        generation: u64,
        time_of_day: usize,
        day_of_week: usize,
        input: &Matrix,
    ) -> Self {
        Self { generation, time_of_day, day_of_week, signature: input_signature(input) }
    }
}

/// FNV-1a over the matrix shape and the bit patterns of its entries.
pub fn input_signature(input: &Matrix) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(input.rows() as u64);
    mix(input.cols() as u64);
    for &v in input.as_slice() {
        mix(v.to_bits());
    }
    h
}

const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    value: Matrix,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU cache of completed weight matrices.
pub struct CompletionCache {
    map: HashMap<CacheKey, usize>,
    entries: Vec<Entry>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CompletionCache {
    /// Creates a cache holding at most `capacity` completions
    /// (`capacity == 0` disables caching entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.saturating_mul(2)),
            entries: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a completion, bumping the entry to most-recently-used.
    /// Updates the hit/miss counters.
    pub fn get(&mut self, key: &CacheKey) -> Option<&Matrix> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                Some(&self.entries[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a completion, evicting the
    /// least-recently-used entry when full. The evicted entry's matrix
    /// buffer is reused, so warm inserts do not allocate.
    pub fn insert(&mut self, key: CacheKey, value: &Matrix) {
        self.insert_rows(key, value, value.rows());
    }

    /// Like [`CompletionCache::insert`] but caches only the first
    /// `rows` rows of `value` — the sharded engine stores each shard's
    /// *owned* row block (the local prefix) without materialising a
    /// separate matrix.
    pub fn insert_rows(&mut self, key: CacheKey, value: &Matrix, rows: usize) {
        if self.capacity == 0 {
            return;
        }
        debug_assert!(rows <= value.rows(), "row prefix exceeds the value");
        if let Some(&idx) = self.map.get(&key) {
            copy_rows_into(&mut self.entries[idx].value, value, rows);
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        let idx = if self.entries.len() < self.capacity {
            let stored = prefix_rows(value, rows);
            self.entries.push(Entry { key, value: stored, prev: NIL, next: NIL });
            self.entries.len() - 1
        } else {
            // Evict the LRU tail, reusing its slot and matrix buffer.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "non-empty cache must have a tail");
            self.unlink(victim);
            let old_key = self.entries[victim].key;
            self.map.remove(&old_key);
            self.evictions += 1;
            copy_rows_into(&mut self.entries[victim].value, value, rows);
            self.entries[victim].key = key;
            victim
        };
        self.push_front(idx);
        self.map.insert(key, idx);
    }

    /// `(hits, misses, evictions)` since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Number of cached completions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of completions held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// A matrix holding the first `rows` rows of `src` (row-major, so the
/// prefix rows are a prefix slice).
fn prefix_rows(src: &Matrix, rows: usize) -> Matrix {
    if rows == src.rows() {
        src.clone()
    } else {
        Matrix::from_vec(rows, src.cols(), src.as_slice()[..rows * src.cols()].to_vec())
    }
}

/// Shape-aware prefix copy: reuses the destination buffer when shapes
/// agree.
fn copy_rows_into(dst: &mut Matrix, src: &Matrix, rows: usize) {
    if dst.shape() == (rows, src.cols()) {
        dst.as_mut_slice().copy_from_slice(&src.as_slice()[..rows * src.cols()]);
    } else {
        *dst = prefix_rows(src, rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(seed: f64) -> Matrix {
        Matrix::from_vec(2, 2, vec![seed, seed + 1.0, seed + 2.0, seed + 3.0])
    }

    fn key(t: usize) -> CacheKey {
        CacheKey { generation: 0, time_of_day: t, day_of_week: 0, signature: t as u64 }
    }

    #[test]
    fn hit_returns_inserted_value() {
        let mut c = CompletionCache::new(4);
        c.insert(key(1), &mat(1.0));
        assert_eq!(c.get(&key(1)), Some(&mat(1.0)));
        assert_eq!(c.stats(), (1, 0, 0));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = CompletionCache::new(2);
        c.insert(key(1), &mat(1.0));
        c.insert(key(2), &mat(2.0));
        assert!(c.get(&key(1)).is_some()); // 1 becomes MRU
        c.insert(key(3), &mat(3.0)); // evicts 2
        assert!(c.get(&key(2)).is_none());
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.stats().2, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = CompletionCache::new(0);
        c.insert(key(1), &mat(1.0));
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn signature_is_bit_sensitive() {
        let a = mat(1.0);
        let mut b = mat(1.0);
        assert_eq!(input_signature(&a), input_signature(&b));
        b.as_mut_slice()[3] += 1e-12;
        assert_ne!(input_signature(&a), input_signature(&b));
    }

    #[test]
    fn generations_do_not_collide() {
        let mut c = CompletionCache::new(4);
        let old = CacheKey { generation: 1, ..key(1) };
        let new = CacheKey { generation: 2, ..key(1) };
        c.insert(old, &mat(1.0));
        assert!(c.get(&new).is_none(), "old-generation entry must not hit");
        c.insert(new, &mat(9.0));
        assert_eq!(c.get(&new), Some(&mat(9.0)));
    }

    #[test]
    fn insert_rows_stores_owned_prefix() {
        let mut c = CompletionCache::new(2);
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        c.insert_rows(key(1), &m, 2);
        let got = c.get(&key(1)).unwrap();
        assert_eq!(got.shape(), (2, 2));
        assert_eq!(got.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        // Refresh through the warm (buffer-reusing) path.
        let m2 = Matrix::from_vec(3, 2, vec![9.0, 8.0, 7.0, 6.0, 5.0, 4.0]);
        c.insert_rows(key(1), &m2, 2);
        assert_eq!(c.get(&key(1)).unwrap().as_slice(), &[9.0, 8.0, 7.0, 6.0]);
    }

    #[test]
    fn refresh_existing_key_updates_value() {
        let mut c = CompletionCache::new(2);
        c.insert(key(1), &mat(1.0));
        c.insert(key(1), &mat(9.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key(1)), Some(&mat(9.0)));
    }
}
