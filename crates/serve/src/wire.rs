//! Length-prefixed binary wire protocol.
//!
//! Every frame starts with a fixed 20-byte header followed by an
//! opcode-specific payload. All integers are little-endian; matrix
//! entries travel as raw little-endian `f64` bit patterns, so — like
//! the text protocol's `{:016x}` encoding — a served completion is
//! **bit-exact** across the wire, but encode/decode is a memcpy
//! instead of a format/parse (16 bytes + a hex parse per entry become
//! 8 bytes flat).
//!
//! ```text
//! frame header (20 bytes)
//! ┌─────────┬─────────┬─────────┬──────────┬──────────────┬──────────────┐
//! │ 0..4    │ 4       │ 5       │ 6..8     │ 8..16        │ 16..20       │
//! │ magic   │ version │ opcode  │ reserved │ request id   │ payload len  │
//! │ "GCWB"  │ 0x01    │ u8      │ 0x0000   │ u64 LE       │ u32 LE       │
//! └─────────┴─────────┴─────────┴──────────┴──────────────┴──────────────┘
//!
//! complete request payload          complete response payload
//! ┌───────────────┬─────────┐       ┌──────────┬──────────┬──────────┐
//! │ 0..4  time    │ u32 LE  │       │ 0        │ hit      │ u8 0|1   │
//! │ 4..8  day     │ u32 LE  │       │ 1        │ degraded │ u8 0|1   │
//! │ 8..12 rows    │ u32 LE  │       │ 2..4     │ reserved │ 0x0000   │
//! │ 12..16 cols   │ u32 LE  │       │ 4..8     │ shards   │ u32 LE   │
//! │ 16..  entries │ f64 LE… │       │ 8..16    │ gen      │ u64 LE   │
//! └───────────────┴─────────┘       │ 16..20   │ rows     │ u32 LE   │
//!                                   │ 20..24   │ cols     │ u32 LE   │
//!                                   │ 24..     │ entries  │ f64 LE…  │
//!                                   └──────────┴──────────┴──────────┘
//! ```
//!
//! `stats`/`ping`/`quit` requests and `pong`/`bye` responses carry an
//! empty payload; the `stats` response is 23 `u64`s in
//! [`StatsSnapshot`] field order; the `err` response is a 1-byte code
//! length, the ASCII error code, then a UTF-8 message.
//!
//! **Tenant forms.** The `tcomplete` request (0x05) is a `u64 LE`
//! tenant id followed by the exact legacy `complete` payload; its
//! response (0x85) is a `u64 LE` tenant id and the tenant's `u64 LE`
//! **graph generation** (bumped on every applied topology delta, so
//! clients detect swaps) followed by the exact legacy response
//! payload. `tstats` (0x06) carries the `u64 LE` tenant id; its
//! response (0x86) is the tenant id plus all
//! [`StatsSnapshot::TENANT_FIELDS`] `u64`s in declaration order
//! (unlike the legacy 23-field form, this includes the two
//! tenant-layer counters). Legacy tenant-less frames address the
//! default tenant and stay byte-identical to pre-tenancy builds.
//!
//! Request ids are chosen by the client and echoed verbatim, which is
//! what makes **pipelining** work: many requests may be in flight on
//! one connection and responses may arrive in any order.

use crate::engine::StatsSnapshot;
use crate::protocol::{self, MAX_WIRE_ELEMS};
use crate::ServeError;
use gcwc_linalg::Matrix;

/// Frame magic: `GCWB` (GCW binary).
pub const MAGIC: [u8; 4] = *b"GCWB";
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 20;
/// Largest admissible payload: the biggest wire matrix plus the
/// tenant-complete-response head (the largest fixed head: tenant id,
/// graph generation, then the legacy 24-byte head). Frames declaring
/// more are refused before any buffering, which bounds per-connection
/// memory (slowloris cap).
pub const MAX_FRAME_PAYLOAD: usize = 40 + MAX_WIRE_ELEMS * 8;

/// Frame opcodes. Requests have the high bit clear, responses set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Completion request.
    Complete = 0x01,
    /// Engine-counter request.
    Stats = 0x02,
    /// Liveness probe.
    Ping = 0x03,
    /// Close the connection (after in-flight responses drain).
    Quit = 0x04,
    /// Tenant-scoped completion request (tenant id + legacy payload).
    TComplete = 0x05,
    /// Tenant-scoped counter request (tenant id payload).
    TStats = 0x06,
    /// Completion response (exact or degraded; see payload flags).
    RespComplete = 0x81,
    /// Engine-counter response.
    RespStats = 0x82,
    /// Probe response.
    Pong = 0x83,
    /// Connection-close acknowledgement.
    Bye = 0x84,
    /// Tenant-scoped completion response (tenant id + graph
    /// generation + legacy payload).
    RespTComplete = 0x85,
    /// Tenant-scoped counter response (tenant id + all snapshot
    /// fields).
    RespTStats = 0x86,
    /// Typed error response.
    RespErr = 0xEE,
}

impl Opcode {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0x01 => Opcode::Complete,
            0x02 => Opcode::Stats,
            0x03 => Opcode::Ping,
            0x04 => Opcode::Quit,
            0x05 => Opcode::TComplete,
            0x06 => Opcode::TStats,
            0x81 => Opcode::RespComplete,
            0x82 => Opcode::RespStats,
            0x83 => Opcode::Pong,
            0x84 => Opcode::Bye,
            0x85 => Opcode::RespTComplete,
            0x86 => Opcode::RespTStats,
            0xEE => Opcode::RespErr,
            _ => return None,
        })
    }
}

/// A decoded frame header.
#[derive(Clone, Copy, Debug)]
pub struct FrameHeader {
    /// The frame opcode.
    pub opcode: Opcode,
    /// Client-chosen id echoed on the response.
    pub request_id: u64,
    /// Bytes of payload following the header.
    pub payload_len: usize,
}

/// Everything that can be wrong with a binary frame. Header-level
/// errors ([`WireError::is_fatal`]) poison the byte stream — the
/// framing can no longer be trusted, so the connection is closed after
/// a best-effort error frame. Payload-level errors are scoped to one
/// request id and the session continues.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized {
        /// Length the header declared.
        declared: usize,
    },
    /// Payload shorter than its fixed head, or its length disagrees
    /// with the declared matrix shape.
    Truncated {
        /// Which structure was cut short.
        what: &'static str,
    },
    /// `rows * cols` overflows or exceeds `MAX_WIRE_ELEMS`.
    BadShape {
        /// Declared row count.
        rows: usize,
        /// Declared column count.
        cols: usize,
    },
    /// A matrix entry decodes to NaN or ±Inf.
    NonFinite {
        /// Flat index of the offending entry.
        index: usize,
    },
    /// A row's entries cancel to zero total mass while carrying
    /// negative entries (indistinguishable from missing by mass, but
    /// not all-missing — normalisation would divide by zero).
    ZeroMassNegativeRow {
        /// The offending row.
        row: usize,
    },
}

impl WireError {
    /// True when the byte stream can no longer be framed and the
    /// connection must close.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            WireError::BadMagic(_)
                | WireError::BadVersion(_)
                | WireError::BadOpcode(_)
                | WireError::Oversized { .. }
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadOpcode(o) => write!(f, "unknown opcode {o:#04x}"),
            WireError::Oversized { declared } => {
                write!(f, "declared payload {declared} exceeds limit {MAX_FRAME_PAYLOAD}")
            }
            WireError::Truncated { what } => write!(f, "truncated {what}"),
            WireError::BadShape { rows, cols } => {
                write!(f, "matrix shape {rows}x{cols} exceeds the wire limit of {MAX_WIRE_ELEMS}")
            }
            WireError::NonFinite { index } => write!(f, "non-finite matrix entry at {index}"),
            WireError::ZeroMassNegativeRow { row } => {
                write!(f, "row {row} has zero total mass but negative entries")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Protocol(e.to_string())
    }
}

fn u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
}

fn u64_at(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

/// Decodes a frame header from the front of `buf`. `Ok(None)` means
/// more bytes are needed (a partial header is not an error — frames
/// may arrive one byte at a time).
pub fn decode_header(buf: &[u8]) -> Result<Option<FrameHeader>, WireError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if buf[..4] != MAGIC {
        return Err(WireError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
    }
    if buf[4] != VERSION {
        return Err(WireError::BadVersion(buf[4]));
    }
    let opcode = Opcode::from_u8(buf[5]).ok_or(WireError::BadOpcode(buf[5]))?;
    let payload_len = u32_at(buf, 16) as usize;
    if payload_len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversized { declared: payload_len });
    }
    Ok(Some(FrameHeader { opcode, request_id: u64_at(buf, 8), payload_len }))
}

/// Appends a frame header to `buf`.
pub fn encode_header(buf: &mut Vec<u8>, opcode: Opcode, request_id: u64, payload_len: usize) {
    debug_assert!(payload_len <= MAX_FRAME_PAYLOAD);
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(opcode as u8);
    buf.extend_from_slice(&[0, 0]);
    buf.extend_from_slice(&request_id.to_le_bytes());
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Appends an empty-payload frame (ping/pong/quit/bye/stats request).
pub fn encode_empty(buf: &mut Vec<u8>, opcode: Opcode, request_id: u64) {
    encode_header(buf, opcode, request_id, 0);
}

fn extend_matrix_le(buf: &mut Vec<u8>, m: &Matrix) {
    for &v in m.as_slice() {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Appends a `complete` request frame.
pub fn encode_complete_request(
    buf: &mut Vec<u8>,
    request_id: u64,
    time_of_day: usize,
    day_of_week: usize,
    input: &Matrix,
) {
    let payload = 16 + input.as_slice().len() * 8;
    encode_header(buf, Opcode::Complete, request_id, payload);
    buf.extend_from_slice(&(time_of_day as u32).to_le_bytes());
    buf.extend_from_slice(&(day_of_week as u32).to_le_bytes());
    buf.extend_from_slice(&(input.rows() as u32).to_le_bytes());
    buf.extend_from_slice(&(input.cols() as u32).to_le_bytes());
    extend_matrix_le(buf, input);
}

/// A `complete` request payload, borrowed from the receive buffer:
/// shape-validated, entries still raw bytes (see
/// [`fill_matrix`]).
#[derive(Debug)]
pub struct CompleteRequest<'a> {
    /// Time-of-day interval index.
    pub time_of_day: usize,
    /// Day-of-week index.
    pub day_of_week: usize,
    /// Declared row count.
    pub rows: usize,
    /// Declared column count.
    pub cols: usize,
    /// `rows * cols` little-endian `f64`s.
    pub data: &'a [u8],
}

/// Decodes and shape-validates a `complete` request payload. The
/// element count is overflow-checked against `MAX_WIRE_ELEMS` and the
/// payload length must match the declared shape exactly, so a short
/// frame can never claim a large matrix.
pub fn decode_complete_request(payload: &[u8]) -> Result<CompleteRequest<'_>, WireError> {
    if payload.len() < 16 {
        return Err(WireError::Truncated { what: "complete request head" });
    }
    let rows = u32_at(payload, 8) as usize;
    let cols = u32_at(payload, 12) as usize;
    let total = rows
        .checked_mul(cols)
        .filter(|&t| t <= MAX_WIRE_ELEMS)
        .ok_or(WireError::BadShape { rows, cols })?;
    let data = &payload[16..];
    if data.len() != total * 8 {
        return Err(WireError::Truncated { what: "complete request matrix" });
    }
    Ok(CompleteRequest {
        time_of_day: u32_at(payload, 0) as usize,
        day_of_week: u32_at(payload, 4) as usize,
        rows,
        cols,
        data,
    })
}

/// Appends a `tcomplete` request frame: the tenant id, then the exact
/// legacy payload.
pub fn encode_tcomplete_request(
    buf: &mut Vec<u8>,
    request_id: u64,
    tenant: u64,
    time_of_day: usize,
    day_of_week: usize,
    input: &Matrix,
) {
    let payload = 24 + input.as_slice().len() * 8;
    encode_header(buf, Opcode::TComplete, request_id, payload);
    buf.extend_from_slice(&tenant.to_le_bytes());
    buf.extend_from_slice(&(time_of_day as u32).to_le_bytes());
    buf.extend_from_slice(&(day_of_week as u32).to_le_bytes());
    buf.extend_from_slice(&(input.rows() as u32).to_le_bytes());
    buf.extend_from_slice(&(input.cols() as u32).to_le_bytes());
    extend_matrix_le(buf, input);
}

/// Decodes a `tcomplete` request payload: the tenant id, then the
/// legacy payload validated by [`decode_complete_request`].
pub fn decode_tcomplete_request(payload: &[u8]) -> Result<(u64, CompleteRequest<'_>), WireError> {
    if payload.len() < 8 {
        return Err(WireError::Truncated { what: "tcomplete request head" });
    }
    Ok((u64_at(payload, 0), decode_complete_request(&payload[8..])?))
}

/// Appends a `tstats` request frame (payload: the tenant id).
pub fn encode_tstats_request(buf: &mut Vec<u8>, request_id: u64, tenant: u64) {
    encode_header(buf, Opcode::TStats, request_id, 8);
    buf.extend_from_slice(&tenant.to_le_bytes());
}

/// Decodes a `tstats` request payload into the tenant id.
pub fn decode_tstats_request(payload: &[u8]) -> Result<u64, WireError> {
    if payload.len() != 8 {
        return Err(WireError::Truncated { what: "tstats request" });
    }
    Ok(u64_at(payload, 0))
}

/// Copies a validated request's entries into `out` (which must already
/// have the declared shape), enforcing the same input hardening as the
/// text protocol: non-finite entries and zero-mass-with-negative rows
/// are rejected with typed errors.
pub fn fill_matrix(req: &CompleteRequest<'_>, out: &mut Matrix) -> Result<(), WireError> {
    debug_assert_eq!(out.shape(), (req.rows, req.cols));
    let dst = out.as_mut_slice();
    for (i, chunk) in req.data.chunks_exact(8).enumerate() {
        let v = f64::from_bits(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        if !v.is_finite() {
            return Err(WireError::NonFinite { index: i });
        }
        dst[i] = v;
    }
    for r in 0..req.rows {
        let row = &dst[r * req.cols..(r + 1) * req.cols];
        if row.iter().sum::<f64>() == 0.0 && row.iter().any(|&v| v < 0.0) {
            return Err(WireError::ZeroMassNegativeRow { row: r });
        }
    }
    Ok(())
}

/// Appends a `complete` response frame.
#[allow(clippy::too_many_arguments)]
pub fn encode_complete_ok(
    buf: &mut Vec<u8>,
    request_id: u64,
    output: &Matrix,
    cache_hit: bool,
    degraded: bool,
    generation: u64,
    shards: usize,
) {
    let payload = 24 + output.as_slice().len() * 8;
    encode_header(buf, Opcode::RespComplete, request_id, payload);
    buf.push(u8::from(cache_hit));
    buf.push(u8::from(degraded));
    buf.extend_from_slice(&[0, 0]);
    buf.extend_from_slice(&(shards as u32).to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
    buf.extend_from_slice(&(output.rows() as u32).to_le_bytes());
    buf.extend_from_slice(&(output.cols() as u32).to_le_bytes());
    extend_matrix_le(buf, output);
}

/// Decodes a `complete` response payload. Unlike request decoding
/// this materialises the matrix (the client owns the result).
pub fn decode_complete_ok(payload: &[u8]) -> Result<protocol::OkResponse, WireError> {
    if payload.len() < 24 {
        return Err(WireError::Truncated { what: "complete response head" });
    }
    let rows = u32_at(payload, 16) as usize;
    let cols = u32_at(payload, 20) as usize;
    let total = rows
        .checked_mul(cols)
        .filter(|&t| t <= MAX_WIRE_ELEMS)
        .ok_or(WireError::BadShape { rows, cols })?;
    let data = &payload[24..];
    if data.len() != total * 8 {
        return Err(WireError::Truncated { what: "complete response matrix" });
    }
    let mut entries = Vec::with_capacity(total);
    for chunk in data.chunks_exact(8) {
        entries.push(f64::from_bits(u64::from_le_bytes(chunk.try_into().expect("8 bytes"))));
    }
    Ok(protocol::OkResponse {
        output: Matrix::from_vec(rows, cols, entries),
        cache_hit: payload[0] != 0,
        degraded: payload[1] != 0,
        generation: u64_at(payload, 8),
        shards: u32_at(payload, 4) as usize,
    })
}

/// Appends a `tcomplete` response frame: the tenant id and its graph
/// generation, then the exact legacy response payload.
#[allow(clippy::too_many_arguments)]
pub fn encode_tcomplete_ok(
    buf: &mut Vec<u8>,
    request_id: u64,
    tenant: u64,
    graph_generation: u64,
    output: &Matrix,
    cache_hit: bool,
    degraded: bool,
    generation: u64,
    shards: usize,
) {
    let payload = 40 + output.as_slice().len() * 8;
    encode_header(buf, Opcode::RespTComplete, request_id, payload);
    buf.extend_from_slice(&tenant.to_le_bytes());
    buf.extend_from_slice(&graph_generation.to_le_bytes());
    buf.push(u8::from(cache_hit));
    buf.push(u8::from(degraded));
    buf.extend_from_slice(&[0, 0]);
    buf.extend_from_slice(&(shards as u32).to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
    buf.extend_from_slice(&(output.rows() as u32).to_le_bytes());
    buf.extend_from_slice(&(output.cols() as u32).to_le_bytes());
    extend_matrix_le(buf, output);
}

/// Decodes a `tcomplete` response payload.
pub fn decode_tcomplete_ok(payload: &[u8]) -> Result<protocol::TokResponse, WireError> {
    if payload.len() < 16 {
        return Err(WireError::Truncated { what: "tcomplete response head" });
    }
    Ok(protocol::TokResponse {
        tenant: u64_at(payload, 0),
        graph_generation: u64_at(payload, 8),
        body: decode_complete_ok(&payload[16..])?,
    })
}

/// Appends an `err` response frame: code length, ASCII code, message.
pub fn encode_err(buf: &mut Vec<u8>, request_id: u64, err: &ServeError) {
    let code = err.code().as_bytes();
    let message = err.to_string();
    let msg = message.as_bytes();
    encode_header(buf, Opcode::RespErr, request_id, 1 + code.len() + msg.len());
    buf.push(code.len() as u8);
    buf.extend_from_slice(code);
    buf.extend_from_slice(msg);
}

/// Decodes an `err` response payload back into the typed error the
/// server sent (same mapping as the text protocol).
pub fn decode_err(payload: &[u8]) -> Result<ServeError, WireError> {
    let code_len = *payload.first().ok_or(WireError::Truncated { what: "err response" })? as usize;
    if payload.len() < 1 + code_len {
        return Err(WireError::Truncated { what: "err response code" });
    }
    let code = std::str::from_utf8(&payload[1..1 + code_len])
        .map_err(|_| WireError::Truncated { what: "err response code" })?;
    let message = String::from_utf8_lossy(&payload[1 + code_len..]);
    Ok(protocol::remote_error(code, &message))
}

/// Field order of the `stats` response payload (23 `u64`s; the three
/// replica fields trail the historical 20 so positional consumers of
/// the prefix keep working).
fn stats_fields(s: &StatsSnapshot) -> [u64; 23] {
    [
        s.requests,
        s.completed,
        s.batches,
        s.rejected,
        s.expired,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.generation,
        s.shards,
        s.worker_restarts,
        s.breaker_open,
        s.degraded_responses,
        s.retries,
        s.records_ingested,
        s.slots_sealed,
        s.late_records_dropped,
        s.refreshes_applied,
        s.refreshes_rolled_back,
        s.generation_age,
        s.replicas,
        s.replica_failovers,
        s.replica_promotions,
    ]
}

/// Appends a `stats` response frame.
pub fn encode_stats(buf: &mut Vec<u8>, request_id: u64, s: &StatsSnapshot) {
    let fields = stats_fields(s);
    encode_header(buf, Opcode::RespStats, request_id, fields.len() * 8);
    for v in fields {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes a `stats` response payload. The legacy frame predates the
/// tenant layer, so `graph_generation` and `quota_rejected` decode as
/// zero (use the `tstats` form to observe them).
pub fn decode_stats(payload: &[u8]) -> Result<StatsSnapshot, WireError> {
    if payload.len() != 23 * 8 {
        return Err(WireError::Truncated { what: "stats response" });
    }
    let v = |i: usize| u64_at(payload, i * 8);
    Ok(StatsSnapshot {
        requests: v(0),
        completed: v(1),
        batches: v(2),
        rejected: v(3),
        expired: v(4),
        cache_hits: v(5),
        cache_misses: v(6),
        cache_evictions: v(7),
        generation: v(8),
        shards: v(9),
        worker_restarts: v(10),
        breaker_open: v(11),
        degraded_responses: v(12),
        retries: v(13),
        records_ingested: v(14),
        slots_sealed: v(15),
        late_records_dropped: v(16),
        refreshes_applied: v(17),
        refreshes_rolled_back: v(18),
        generation_age: v(19),
        graph_generation: 0,
        quota_rejected: 0,
        replicas: v(20),
        replica_failovers: v(21),
        replica_promotions: v(22),
    })
}

/// Appends a `tstats` response frame: the tenant id, then all
/// [`StatsSnapshot::TENANT_FIELDS`] counters in declaration order.
pub fn encode_tstats(buf: &mut Vec<u8>, request_id: u64, tenant: u64, s: &StatsSnapshot) {
    let fields = s.tenant_fields();
    encode_header(buf, Opcode::RespTStats, request_id, 8 + fields.len() * 8);
    buf.extend_from_slice(&tenant.to_le_bytes());
    for v in fields {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes a `tstats` response payload into `(tenant, snapshot)`.
pub fn decode_tstats(payload: &[u8]) -> Result<(u64, StatsSnapshot), WireError> {
    if payload.len() != 8 + StatsSnapshot::TENANT_FIELDS * 8 {
        return Err(WireError::Truncated { what: "tstats response" });
    }
    let mut fields = [0u64; StatsSnapshot::TENANT_FIELDS];
    for (i, slot) in fields.iter_mut().enumerate() {
        *slot = u64_at(payload, 8 + i * 8);
    }
    Ok((u64_at(payload, 0), StatsSnapshot::from_tenant_fields(fields)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_request_roundtrip_is_bit_exact() {
        let m = Matrix::from_vec(2, 2, vec![0.1, -2.5, f64::MIN_POSITIVE, 3.0e300]);
        let mut buf = Vec::new();
        encode_complete_request(&mut buf, 99, 3, 5, &m);
        let header = decode_header(&buf).unwrap().unwrap();
        assert_eq!(header.opcode, Opcode::Complete);
        assert_eq!(header.request_id, 99);
        assert_eq!(buf.len(), HEADER_LEN + header.payload_len);
        let req = decode_complete_request(&buf[HEADER_LEN..]).unwrap();
        assert_eq!((req.time_of_day, req.day_of_week), (3, 5));
        let mut out = Matrix::zeros(2, 2);
        fill_matrix(&req, &mut out).unwrap();
        assert_eq!(out, m);
    }

    #[test]
    fn complete_response_roundtrip() {
        let m = Matrix::from_vec(1, 3, vec![0.25, 0.5, 0.25]);
        let mut buf = Vec::new();
        encode_complete_ok(&mut buf, 7, &m, true, false, 11, 2);
        let header = decode_header(&buf).unwrap().unwrap();
        assert_eq!(header.opcode, Opcode::RespComplete);
        assert_eq!(header.request_id, 7);
        let r = decode_complete_ok(&buf[HEADER_LEN..]).unwrap();
        assert_eq!(r.output, m);
        assert!(r.cache_hit);
        assert!(!r.degraded);
        assert_eq!(r.generation, 11);
        assert_eq!(r.shards, 2);
    }

    #[test]
    fn partial_headers_ask_for_more_bytes() {
        let mut buf = Vec::new();
        encode_empty(&mut buf, Opcode::Ping, 1);
        for cut in 0..HEADER_LEN {
            assert!(decode_header(&buf[..cut]).unwrap().is_none(), "cut={cut}");
        }
        assert!(decode_header(&buf).unwrap().is_some());
    }

    #[test]
    fn garbage_magic_and_version_are_fatal() {
        let mut buf = Vec::new();
        encode_empty(&mut buf, Opcode::Ping, 1);
        let mut bad = buf.clone();
        bad[0] = b'X';
        let err = decode_header(&bad).unwrap_err();
        assert!(matches!(err, WireError::BadMagic(_)));
        assert!(err.is_fatal());
        let mut bad = buf.clone();
        bad[4] = 9;
        let err = decode_header(&bad).unwrap_err();
        assert!(matches!(err, WireError::BadVersion(9)));
        assert!(err.is_fatal());
        let mut bad = buf;
        bad[5] = 0x7f;
        assert!(matches!(decode_header(&bad).unwrap_err(), WireError::BadOpcode(0x7f)));
    }

    #[test]
    fn oversized_declared_length_is_refused_before_buffering() {
        let mut buf = Vec::new();
        encode_header(&mut buf, Opcode::Complete, 1, 0);
        buf[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_header(&buf).unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }));
        assert!(err.is_fatal());
    }

    #[test]
    fn oversized_and_overflowing_shapes_are_rejected() {
        // Shape beyond the wire limit, payload length deliberately
        // tiny: the shape check fires without reserving anything.
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&((MAX_WIRE_ELEMS + 1) as u32).to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            decode_complete_request(&payload).unwrap_err(),
            WireError::BadShape { .. }
        ));
        // Admissible shape but a short payload: truncation error, not
        // a large reservation.
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&(MAX_WIRE_ELEMS as u32).to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode_complete_request(&payload).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn non_finite_and_zero_mass_rows_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let m = Matrix::from_vec(1, 2, vec![0.5, bad]);
            let mut buf = Vec::new();
            encode_complete_request(&mut buf, 1, 0, 0, &m);
            let req = decode_complete_request(&buf[HEADER_LEN..]).unwrap();
            let mut out = Matrix::zeros(1, 2);
            assert!(matches!(
                fill_matrix(&req, &mut out).unwrap_err(),
                WireError::NonFinite { index: 1 }
            ));
        }
        let m = Matrix::from_vec(2, 2, vec![0.5, 0.5, -1.0, 1.0]);
        let mut buf = Vec::new();
        encode_complete_request(&mut buf, 1, 0, 0, &m);
        let req = decode_complete_request(&buf[HEADER_LEN..]).unwrap();
        let mut out = Matrix::zeros(2, 2);
        assert!(matches!(
            fill_matrix(&req, &mut out).unwrap_err(),
            WireError::ZeroMassNegativeRow { row: 1 }
        ));
        // All-zero (missing) rows stay valid — completing them is the
        // entire point of the service.
        let missing = Matrix::zeros(1, 2);
        let mut buf = Vec::new();
        encode_complete_request(&mut buf, 1, 0, 0, &missing);
        let req = decode_complete_request(&buf[HEADER_LEN..]).unwrap();
        let mut out = Matrix::zeros(1, 2);
        assert!(fill_matrix(&req, &mut out).is_ok());
    }

    #[test]
    fn err_frames_map_back_to_typed_errors() {
        for (err, want) in [
            (ServeError::Overloaded, "overloaded"),
            (ServeError::DeadlineExceeded, "deadline"),
            (ServeError::ShardRestarting, "restarting"),
        ] {
            let mut buf = Vec::new();
            encode_err(&mut buf, 5, &err);
            let header = decode_header(&buf).unwrap().unwrap();
            assert_eq!(header.opcode, Opcode::RespErr);
            let back = decode_err(&buf[HEADER_LEN..]).unwrap();
            assert_eq!(back.code(), want);
        }
    }

    #[test]
    fn stats_roundtrip() {
        let s = StatsSnapshot {
            requests: 1,
            completed: 2,
            batches: 3,
            rejected: 4,
            expired: 5,
            cache_hits: 6,
            cache_misses: 7,
            cache_evictions: 8,
            generation: 9,
            shards: 10,
            worker_restarts: 11,
            breaker_open: 12,
            degraded_responses: 13,
            retries: 14,
            records_ingested: 15,
            slots_sealed: 16,
            late_records_dropped: 17,
            refreshes_applied: 18,
            refreshes_rolled_back: 19,
            generation_age: 20,
            // The legacy frame does not carry the tenant-layer fields;
            // they must decode back as zero.
            graph_generation: 0,
            quota_rejected: 0,
            replicas: 21,
            replica_failovers: 22,
            replica_promotions: 23,
        };
        let mut buf = Vec::new();
        encode_stats(&mut buf, 3, &s);
        let back = decode_stats(&buf[HEADER_LEN..]).unwrap();
        assert_eq!(format!("{s:?}"), format!("{back:?}"));
    }

    #[test]
    fn stats_payload_length_is_enforced() {
        let mut buf = Vec::new();
        encode_stats(&mut buf, 1, &StatsSnapshot::default());
        assert_eq!(buf.len(), HEADER_LEN + 23 * 8);
        assert!(decode_stats(&buf[HEADER_LEN..buf.len() - 8]).is_err());
    }

    #[test]
    fn tcomplete_request_roundtrip_is_bit_exact() {
        let m = Matrix::from_vec(2, 2, vec![0.1, -2.5, f64::MIN_POSITIVE, 3.0e300]);
        let mut buf = Vec::new();
        encode_tcomplete_request(&mut buf, 99, 7, 3, 5, &m);
        let header = decode_header(&buf).unwrap().unwrap();
        assert_eq!(header.opcode, Opcode::TComplete);
        assert_eq!(buf.len(), HEADER_LEN + header.payload_len);
        let (tenant, req) = decode_tcomplete_request(&buf[HEADER_LEN..]).unwrap();
        assert_eq!(tenant, 7);
        assert_eq!((req.time_of_day, req.day_of_week), (3, 5));
        let mut out = Matrix::zeros(2, 2);
        fill_matrix(&req, &mut out).unwrap();
        assert_eq!(out, m);
        // The tail past the tenant id is byte-identical to the legacy
        // encoding of the same request.
        let mut legacy = Vec::new();
        encode_complete_request(&mut legacy, 99, 3, 5, &m);
        assert_eq!(&buf[HEADER_LEN + 8..], &legacy[HEADER_LEN..]);
    }

    #[test]
    fn tcomplete_response_roundtrip() {
        let m = Matrix::from_vec(1, 3, vec![0.25, 0.5, 0.25]);
        let mut buf = Vec::new();
        encode_tcomplete_ok(&mut buf, 7, 4, 2, &m, true, false, 11, 2);
        let header = decode_header(&buf).unwrap().unwrap();
        assert_eq!(header.opcode, Opcode::RespTComplete);
        let r = decode_tcomplete_ok(&buf[HEADER_LEN..]).unwrap();
        assert_eq!((r.tenant, r.graph_generation), (4, 2));
        assert_eq!(r.body.output, m);
        assert!(r.body.cache_hit && !r.body.degraded);
        assert_eq!((r.body.generation, r.body.shards), (11, 2));
        // The tail past tenant id + graph generation is byte-identical
        // to the legacy response encoding.
        let mut legacy = Vec::new();
        encode_complete_ok(&mut legacy, 7, &m, true, false, 11, 2);
        assert_eq!(&buf[HEADER_LEN + 16..], &legacy[HEADER_LEN..]);
    }

    #[test]
    fn tstats_roundtrip_and_length_enforcement() {
        let mut buf = Vec::new();
        encode_tstats_request(&mut buf, 2, 9);
        let header = decode_header(&buf).unwrap().unwrap();
        assert_eq!(header.opcode, Opcode::TStats);
        assert_eq!(decode_tstats_request(&buf[HEADER_LEN..]).unwrap(), 9);

        let fields: [u64; StatsSnapshot::TENANT_FIELDS] =
            std::array::from_fn(|i| (i as u64).wrapping_mul(0x9e37_79b9) + 1);
        let s = StatsSnapshot::from_tenant_fields(fields);
        let mut buf = Vec::new();
        encode_tstats(&mut buf, 3, 9, &s);
        assert_eq!(buf.len(), HEADER_LEN + 8 + StatsSnapshot::TENANT_FIELDS * 8);
        let (tenant, back) = decode_tstats(&buf[HEADER_LEN..]).unwrap();
        assert_eq!(tenant, 9);
        assert_eq!(back.tenant_fields(), fields);
        assert!(decode_tstats(&buf[HEADER_LEN..buf.len() - 8]).is_err());
    }
}
