//! # gcwc-serve
//!
//! Batched, cached inference server for stochastic weight completion.
//!
//! The served unit is a **shard set** — one trained GCWC / A-GCWC
//! checkpoint per edge partition (K = 1, the common case, is a single
//! model over the whole graph) — loaded into a warm [`ModelRegistry`]
//! with per-shard atomic hot swaps. Completion requests carry the
//! global weight matrix and flow through a bounded queue into worker
//! threads that coalesce up to `max_batch` requests into **one**
//! pooled, tape-free forward pass per shard, scattering each shard's
//! owned rows back into the global response. Because every batched
//! kernel computes each request's column block independently (see
//! `gcwc::infer`), the responses are bit-identical to running each
//! request alone — and K = 1 serving is bit-identical to the
//! pre-sharding pipeline. A keyed LRU [`CompletionCache`] per shard
//! short-circuits repeated `(time, day, coverage)` requests entirely;
//! keys embed the shard's own generation, so hot-swapping one shard
//! invalidates exactly that shard's entries.
//!
//! The crate is dependency-free (std plus a thin epoll shim declared
//! straight against the C library — see [`sys`]): the TCP front end is
//! a single reactor thread multiplexing every connection, speaking a
//! length-prefixed binary protocol ([`wire`]) with request pipelining,
//! plus an optional newline-delimited text debug port ([`protocol`]).
//! In-process callers use [`Client`] directly — that path performs
//! zero heap allocations per request once warm.
//!
//! ```text
//! checkpoint ─▶ ModelRegistry ─▶ snapshot
//!                                   │
//! Client ─▶ BoundedQueue ─▶ worker ─┼▶ CompletionCache ──▶ response
//!   ▲                               └▶ batched infer ─┘
//!   ├───── epoll reactor ── binary frames (pipelined, bit-exact)
//!   └───── epoll reactor ── text debug port (newline-delimited)
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod health;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod replica;
pub mod server;
pub mod sys;
pub mod tenant;
pub mod wire;

pub use cache::{CacheKey, CompletionCache};
pub use engine::{
    Client, Completion, CompletionHook, Engine, EngineConfig, IngestStats, RetryPolicy,
    StatsSnapshot, SubmitError,
};
pub use health::{Admission, BreakerConfig, ShardHealth};
pub use queue::BoundedQueue;
pub use registry::{AnyModel, ModelRegistry, ModelShard, ModelSnapshot, TopologyUpdate};
pub use replica::Replica;
pub use server::{BinClient, Server, ServerConfig, TcpClient};
pub use tenant::{QuotaConfig, Tenant, TenantId, TenantRegistry, TokenBucket};

use gcwc_linalg::Matrix;

/// Failpoint site names this crate evaluates (see `gcwc_failpoint`;
/// sites are inert unless the `failpoints` feature is enabled *and*
/// the site is armed).
pub mod failsite {
    /// Worker dequeue loop. `err`/`panic` kill the worker between
    /// dequeue and service (the supervisor restarts it and in-flight
    /// jobs answer `ShardRestarting`); `delay(ms)` stalls it.
    pub const WORKER_LOOP: &str = "serve.worker.loop";
    /// Accept loop: a triggered site drops the fresh connection.
    pub const ACCEPT: &str = "serve.server.accept";
    /// Text-connection read path: a triggered site closes the
    /// connection.
    pub const READ: &str = "serve.server.read";
    /// Connection write path: a triggered site closes the connection.
    pub const WRITE: &str = "serve.server.write";
    /// Reactor event-loop tick: a triggered (or panicking) site skips
    /// one batch of readiness events. Level-triggered epoll
    /// re-delivers them, so a skipped tick delays work but never
    /// loses it.
    pub const REACTOR_TICK: &str = "serve.reactor.tick";
    /// Binary-connection read path: a triggered site tears the
    /// connection down mid-session (peer-reset injection).
    pub const CONN_READ: &str = "serve.conn.read";
    /// Checkpoint load into a shard: `err` fails the load (the old
    /// snapshot keeps serving).
    pub const REGISTRY_LOAD: &str = "serve.registry.load";
    /// In-process model install into a shard (panic/delay site).
    pub const REGISTRY_INSTALL: &str = "serve.registry.install";
    /// Warm-standby promotion of a replica slot: `err` fails the
    /// promotion (the tripped replica stays open and the group keeps
    /// serving on its survivors; the next breaker trip retries).
    pub const REPLICA_PROMOTE: &str = "serve.replica.promote";

    /// Per-tenant quota admission: a triggered site rejects the
    /// request with [`crate::ServeError::QuotaExceeded`] as if the
    /// tenant's token bucket were empty. Only evaluated for tenants
    /// that carry a quota, so arming it never touches quota-free
    /// tenants (isolation holds under chaos).
    pub const TENANT_QUOTA: &str = "serve.tenant.quota";

    /// Per-shard batched forward: `err` fails the attempt, `panic`
    /// unwinds into the containment `catch_unwind` — either way the
    /// shard's circuit breaker records a failure and the batch
    /// degrades that shard's rows.
    pub fn shard_forward(k: usize) -> String {
        format!("serve.shard{k}.forward")
    }

    /// Tenant-tagged variant of [`shard_forward`]: engines created for
    /// a [`crate::TenantId`] evaluate `serve.t<id>.shard<k>.forward`
    /// instead, so a chaos schedule can open one tenant's breakers
    /// without touching any other tenant's forwards.
    pub fn tenant_shard_forward(tenant: u64, k: usize) -> String {
        format!("serve.t{tenant}.shard{k}.forward")
    }

    /// Per-replica batched forward, keyed by the replica's **ordinal**
    /// (its monotonic incarnation id, not its slot index): `err` fails
    /// the attempt, `panic` unwinds into the containment
    /// `catch_unwind` — either way that replica's breaker records a
    /// failure and the batch fails over to the next routable replica
    /// of the group. A promotion assigns the slot a fresh ordinal, so
    /// a persistently armed kill site never follows the successor.
    pub fn replica_forward(ordinal: u64) -> String {
        format!("serve.replica{ordinal}.forward")
    }

    /// Tenant-tagged variant of [`replica_forward`]
    /// (`serve.t<id>.replica<ordinal>.forward`), mirroring
    /// [`tenant_shard_forward`] so chaos schedules can kill one
    /// tenant's replicas without touching any other tenant's groups.
    pub fn tenant_replica_forward(tenant: u64, ordinal: u64) -> String {
        format!("serve.t{tenant}.replica{ordinal}.forward")
    }
}

/// Everything that can go wrong while serving a completion request.
#[derive(Debug)]
pub enum ServeError {
    /// The request queue is full (backpressure) — retry later.
    Overloaded,
    /// The request's deadline passed before a worker served it.
    DeadlineExceeded,
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The worker serving this request died and was restarted; the
    /// request was not served. Safe to retry (the forward pass never
    /// produced a response).
    ShardRestarting,
    /// Every replica of a shard's group failed this batch, but a
    /// warm-standby promotion succeeded — the request was not served,
    /// and an immediate retry lands on the freshly promoted replica.
    ReplicaFailingOver,
    /// The request is malformed (wrong shape, out-of-range context…).
    BadRequest(String),
    /// The tenant's request quota is exhausted (token bucket empty) —
    /// back off and retry after the refill interval.
    QuotaExceeded,
    /// The request names a tenant this server does not host.
    UnknownTenant(u64),
    /// Loading or validating a checkpoint failed.
    Checkpoint(gcwc_nn::PersistError),
    /// Socket-level failure on the TCP front end.
    Io(std::io::Error),
    /// The peer sent a line the wire protocol cannot parse.
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "request queue full"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::ShardRestarting => write!(f, "worker restarting; retry"),
            ServeError::ReplicaFailingOver => write!(f, "replica failing over; retry"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::QuotaExceeded => write!(f, "per-tenant quota exhausted"),
            ServeError::UnknownTenant(id) => write!(f, "tenant {id} is not registered"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<gcwc_nn::PersistError> for ServeError {
    fn from(e: gcwc_nn::PersistError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// The wire error code of a [`ServeError`] (stable tokens for the text
/// protocol's `err <code> <message>` responses).
impl ServeError {
    /// Short machine-readable code used on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded => "overloaded",
            ServeError::DeadlineExceeded => "deadline",
            ServeError::ShuttingDown => "shutdown",
            ServeError::ShardRestarting => "restarting",
            ServeError::ReplicaFailingOver => "failing_over",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::QuotaExceeded => "quota",
            ServeError::UnknownTenant(_) => "unknown_tenant",
            ServeError::Checkpoint(_) => "checkpoint",
            ServeError::Io(_) => "io",
            ServeError::Protocol(_) => "protocol",
        }
    }
}

/// Derives the per-edge coverage flags A-GCWC's row context expects
/// from an observed weight matrix: `1.0` for rows with any observed
/// mass, `0.0` for all-zero (missing) rows. Reuses `flags`' capacity.
pub fn derive_row_flags(input: &Matrix, flags: &mut Vec<f64>) {
    flags.clear();
    for i in 0..input.rows() {
        flags.push(if input.row_is_zero(i) { 0.0 } else { 1.0 });
    }
}
